#!/usr/bin/env python3
"""Scenario: measuring the paper's scaling claim on your machine.

Sweeps network sizes, runs all three algorithms to the same target ε on
the same placements, and fits log-log slopes — the measured analogue of
the paper's asymptotic table:

    randomized     Õ(n²)        (slope → ≈ 2)
    geographic     Õ(n^1.5)     (slope → ≈ 1.5)
    hierarchical   n^(1+o(1))   (slope → ≈ 1)

The sweep's (algorithm, n, trial) grid cells fan across the simulation
engine's worker pool; per-cell seed spawning makes the numbers identical
at any worker count, so parallelism is free accuracy-wise.

Run:  python examples/scaling_study.py            (quick: up to n=512)
      python examples/scaling_study.py --full     (up to n=1024)
"""

import os
import sys

import numpy as np

from repro.experiments import (
    ExperimentConfig,
    fit_loglog_slope,
    format_table,
    run_scaling_sweep,
)


def main() -> None:
    full = "--full" in sys.argv
    sizes = (128, 256, 512, 1024) if full else (128, 256, 512)
    if full:
        print(
            "note: n=1024 crosses a hierarchy-structure jump; the "
            "hierarchical runs there take minutes (see DESIGN.md, D9)\n"
        )
    config = ExperimentConfig(sizes=sizes, epsilon=0.2, trials=2)
    workers = max(1, min(4, os.cpu_count() or 1))
    print(
        f"Sweeping n ∈ {sizes}, ε = {config.epsilon}, "
        f"{config.trials} trials per point, {workers} workers ...\n"
    )
    sweep = run_scaling_sweep(config, workers=workers)

    rows = []
    for n in sizes:
        row = [n]
        for name in config.algorithms:
            point = next(p for p in sweep[name] if p.n == n)
            row.append(int(point.transmissions_mean))
        rows.append(row)
    print(
        format_table(
            ["n", *config.algorithms],
            rows,
            title="mean transmissions to ε",
        )
    )

    print()
    slope_rows = []
    for name in config.algorithms:
        points = sweep[name]
        slope = fit_loglog_slope(
            np.array([p.n for p in points], dtype=float),
            np.array([p.transmissions_mean for p in points]),
        )
        claimed = {"randomized": 2.0, "geographic": 1.5, "hierarchical": 1.0}[name]
        slope_rows.append([name, f"{slope:.2f}", claimed])
    print(
        format_table(
            ["algorithm", "measured slope", "paper exponent"],
            slope_rows,
            title="fitted log-log slopes (finite-n measurements vs asymptotic claim)",
        )
    )
    print(
        "\nNote: finite-n slopes carry polylog corrections; the ordering of "
        "slopes is the reproduction target (see EXPERIMENTS.md, E7)."
    )


if __name__ == "__main__":
    main()
