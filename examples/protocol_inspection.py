#!/usr/bin/env python3
"""Scenario: watching the Section 4 state machine actually run.

Runs the *asynchronous* executor — the paper's literal per-node protocol
with ``local.state``/``global.state``/counters, Poisson clocks, greedy
routed `Far` exchanges and flooded activations — at small ``n``, and
inspects the machinery: the hierarchy and its Levels, per-depth time
budgets, exchange/busy-abort counts, and the final states.

Run:  python examples/protocol_inspection.py
"""

import numpy as np

from repro import AsyncHierarchicalProtocol, HierarchyTree, RandomGeometricGraph
from repro.experiments import format_table
from repro.workloads import linear_gradient_field


def main() -> None:
    n = 128
    epsilon = 0.25
    rng = np.random.default_rng(11)

    graph = RandomGeometricGraph.sample_connected(n, rng, radius_constant=2.5)
    tree = HierarchyTree.build(graph.positions, leaf_threshold=16.0)
    field = linear_gradient_field(graph.positions, rng)

    print("hierarchy structure:")
    print(
        format_table(
            ["depth", "squares", "E#", "min #", "mean #", "max #", "empty"],
            [
                [
                    r["depth"],
                    r["squares"],
                    r["expected"],
                    r["min"],
                    r["mean"],
                    r["max"],
                    r["empty"],
                ]
                for r in tree.occupancy_report()
            ],
        )
    )
    levels = {}
    for sensor in range(n):
        levels[tree.node_level(sensor)] = levels.get(tree.node_level(sensor), 0) + 1
    print(f"\nsensor Levels (paper §4.1): { {k: levels[k] for k in sorted(levels)} }")
    print(f"root supernode s(□): sensor {tree.root.supernode}")

    protocol = AsyncHierarchicalProtocol(graph, tree=tree)
    result = protocol.run(field, epsilon, np.random.default_rng(3))

    print(
        f"\nper-depth time budgets (own-clock ticks): {protocol._time_budgets}"
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ["clock ticks", result.ticks],
                ["Far exchanges applied", protocol.far_exchanges],
                ["busy handshake aborts (D8)", protocol.busy_aborts],
                ["routing failures", protocol.routing_failures],
                ["transmissions (total)", result.total_transmissions],
                ["  … Near", result.transmissions.get("near", 0)],
                ["  … Far routing", result.transmissions.get("far", 0)],
                ["  … activation control", result.transmissions.get("activation", 0)],
                ["final relative error", result.error],
                ["converged", result.converged],
            ],
            title="async protocol run",
        )
    )

    active = sum(state.local_on for state in protocol.states)
    print(
        f"\nsensors still in local.state=on at stop: {active} "
        "(the root round winds activity down as counters expire)"
    )


if __name__ == "__main__":
    main()
