#!/usr/bin/env python3
"""Tutorial sweep: path averaging through the engine, persisted to a store.

The companion script of ``docs/quickstart.md``.  It runs a small
path-averaging vs geographic scaling sweep through the full engine stack
— grid cells with deterministic per-cell seeds, the strided batched tick
path, and a resumable on-disk result store — then renders the result
table and the fitted log-log cost slopes.

Run:  python examples/quickstart_sweep.py [store_dir] [sizes]

e.g.  python examples/quickstart_sweep.py /tmp/pa-store 64,96,128

Run it twice with the same arguments: the second run resumes from the
store and recomputes nothing.
"""

import sys
import tempfile

import numpy as np

from repro.engine import ResultStore
from repro.experiments import (
    ExperimentConfig,
    fit_loglog_slope,
    format_table,
    run_scaling_sweep,
)

CHECK_STRIDE = 4  # strided error checks ride the vectorized tick_block paths


def main() -> None:
    store_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-quickstart-"
    )
    sizes = (
        tuple(int(s) for s in sys.argv[2].split(","))
        if len(sys.argv) > 2
        else (64, 96, 128)
    )

    config = ExperimentConfig(
        sizes=sizes,
        epsilon=0.25,
        trials=2,
        field="gradient",
        algorithms=("geographic", "path-averaging"),
        topology="rgg",  # swap for any repro.graphs.generators.TOPOLOGIES name
    )
    store = ResultStore(store_dir, config, CHECK_STRIDE)
    already = len(store.load_records())
    total = len(sizes) * config.trials * len(config.algorithms)
    print(f"store: {store.directory}")
    print(f"  {already}/{total} cells already on disk (resume skips them)\n")

    sweep = run_scaling_sweep(
        config, workers=2, check_stride=CHECK_STRIDE, store=store
    )

    rows = []
    for n in sizes:
        row = [n]
        for name in config.algorithms:
            point = next(p for p in sweep[name] if p.n == n)
            row.append(int(point.transmissions_mean))
        rows.append(row)
    print(
        format_table(
            ["n", *config.algorithms],
            rows,
            title=(
                f"mean transmissions to eps={config.epsilon} "
                f"({config.trials} trials, '{config.topology}' topology)"
            ),
        )
    )

    print()
    slope_rows = []
    for name in config.algorithms:
        points = sweep[name]
        slope = fit_loglog_slope(
            np.array([p.n for p in points], dtype=float),
            np.array([p.transmissions_mean for p in points]),
        )
        slope_rows.append([name, slope])
    print(format_table(["protocol", "fitted log-log slope"], slope_rows))
    print(
        "\nPath averaging mixes a whole routed walk per operation, so its "
        "cost grows\nnear-linearly while geographic gossip trends toward "
        "n^1.5 (run larger sizes\nto watch the gap widen)."
    )


if __name__ == "__main__":
    main()
