#!/usr/bin/env python3
"""Quickstart: average a sensor field three ways and compare costs.

Builds one geometric random graph, initialises a random measurement field,
and runs the paper's three contenders to the same accuracy target:

* randomized gossip   (Boyd et al. 2005)      — Õ(n²) transmissions
* geographic gossip   (Dimakis et al. 2006)   — Õ(n^1.5)
* hierarchical affine (Narayanan, this paper) — n^(1+o(1))

Run:  python examples/quickstart.py [n]
"""

import sys
import time

import numpy as np

from repro import (
    GeographicGossip,
    HierarchicalGossip,
    RandomGeometricGraph,
    RandomizedGossip,
)
from repro.experiments import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    epsilon = 0.15
    rng = np.random.default_rng(2007)

    print(f"Sampling a connected G(n={n}, r=sqrt(2·log n/n)) ...")
    graph = RandomGeometricGraph.sample_connected(n, rng)
    print(
        f"  radius={graph.radius:.4f}, edges={graph.edge_count()}, "
        f"mean degree={graph.degrees().mean():.1f}"
    )
    values = rng.normal(size=n)
    print(f"Averaging a random field to ε = {epsilon} (ℓ₂, relative)\n")

    algorithms = [
        ("randomized (Boyd et al.)", RandomizedGossip(graph.neighbors)),
        ("geographic (Dimakis et al.)", GeographicGossip(graph)),
        ("hierarchical affine (paper)", HierarchicalGossip(graph)),
    ]
    rows = []
    for name, algorithm in algorithms:
        started = time.perf_counter()
        result = algorithm.run(values, epsilon, np.random.default_rng(7))
        elapsed = time.perf_counter() - started
        rows.append(
            [
                name,
                result.total_transmissions,
                result.error,
                result.converged,
                f"{elapsed:.2f}s",
            ]
        )
    print(
        format_table(
            ["algorithm", "transmissions", "final error", "converged", "wall"],
            rows,
            title=f"transmissions to ε={epsilon} at n={n}",
        )
    )
    best = min(rows, key=lambda row: row[1])
    print(f"\nCheapest at this size: {best[0]}")
    print(
        "(Rankings flip with n — see benchmarks/bench_e07_scaling.py for "
        "the full scaling story.)"
    )


if __name__ == "__main__":
    main()
