#!/usr/bin/env python3
"""Scenario: a tour of the substrates under the gossip algorithms.

Everything the paper takes as given, exercised directly through the
public API: geometric random graph construction and its connectivity
threshold, greedy geographic routing hop counts, flooding costs, and the
rejection sampler that makes geographic gossip's targets uniform.

Run:  python examples/substrate_tour.py
"""

import numpy as np

from repro import (
    GreedyRouter,
    RandomGeometricGraph,
    RejectionSampler,
    TransmissionCounter,
    connectivity_radius,
)
from repro.experiments import format_table
from repro.graphs import connectivity_probability, is_connected
from repro.routing import flood


def main() -> None:
    rng = np.random.default_rng(2006)
    n = 512

    # --- connectivity threshold (Gupta–Kumar regime) ---------------------
    print("connectivity of G(n, c·sqrt(log n / n)) at n = 200:")
    rows = []
    for constant in (0.4, 0.8, 1.2, 2.0):
        radius = connectivity_radius(200, constant)
        probability = connectivity_probability(200, radius, trials=20, rng=rng)
        rows.append([constant, f"{radius:.3f}", probability])
    print(format_table(["c", "radius", "P(connected)"], rows))

    # --- the working graph ------------------------------------------------
    graph = RandomGeometricGraph.sample_connected(n, rng)
    print(
        f"\nworking graph: n={n}, r={graph.radius:.4f}, "
        f"{graph.edge_count()} edges, connected={is_connected(graph.neighbors)}"
    )

    # --- greedy geographic routing ----------------------------------------
    router = GreedyRouter(graph)
    counter = TransmissionCounter()
    hops, failures = [], 0
    for _ in range(300):
        source, target = rng.integers(n, size=2)
        result = router.route_to_node(int(source), int(target), counter)
        hops.append(result.hops)
        failures += not result.delivered
    print(
        f"\ngreedy routing over 300 random pairs: "
        f"mean {np.mean(hops):.1f} hops, max {max(hops)}, "
        f"failures {failures} "
        f"(paper charges O(sqrt(n/log n)) ≈ {0.52 / graph.radius:.1f} per route)"
    )

    # --- flooding a square --------------------------------------------------
    members = np.nonzero(
        (graph.positions[:, 0] < 0.25) & (graph.positions[:, 1] < 0.25)
    )[0]
    flood_counter = TransmissionCounter()
    reached = flood(
        graph.neighbors, int(members[0]), members.tolist(), flood_counter
    )
    print(
        f"\nflooding the bottom-left quarter-square: {len(members)} members, "
        f"{len(reached)} reached, {flood_counter.total} transmissions (O(m))"
    )

    # --- rejection sampling --------------------------------------------------
    print("\nrejection sampling for uniform node targets (Dimakis et al.):")
    rows = []
    for quantile in (0.9, 0.5, 0.25):
        sampler = RejectionSampler(graph.positions, reference_quantile=quantile)
        rows.append(
            [
                quantile,
                f"{sampler.total_variation_from_uniform():.4f}",
                f"{sampler.expected_proposals():.2f}",
            ]
        )
    raw = RejectionSampler(graph.positions, reference_quantile=1.0)
    uniform = np.full(n, 1.0 / n)
    tv_raw = 0.5 * np.abs(raw.areas - uniform).sum()
    print(
        format_table(
            ["ref. quantile", "TV from uniform", "E[proposals]"],
            rows,
            title=f"(no rejection at all: TV = {tv_raw:.4f})",
        )
    )


if __name__ == "__main__":
    main()
