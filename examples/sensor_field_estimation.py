#!/usr/bin/env python3
"""Scenario: estimating the mean of a pollutant plume with a sensor net.

The motivating application of the gossip-averaging literature: ``n``
cheap wireless sensors are scattered over a field; a localised emission
creates a plume that only a handful of sensors observe strongly.  The
network must agree on the *field-wide mean* concentration — without any
base station — while spending as few radio transmissions as possible
(battery = transmissions).

This example runs the paper's hierarchical affine protocol on a plume
field, then inspects where the transmissions went (Near gossip vs routed
Far exchanges vs activation control traffic) and how the error fell as a
function of cost.

Run:  python examples/sensor_field_estimation.py
"""

import numpy as np

from repro import HierarchicalGossip, RandomGeometricGraph
from repro.experiments import format_table
from repro.metrics import consensus_value
from repro.viz import render_field
from repro.workloads import gaussian_plume_field


def main() -> None:
    n = 1024
    epsilon = 0.1
    rng = np.random.default_rng(42)

    graph = RandomGeometricGraph.sample_connected(n, rng)
    concentrations = gaussian_plume_field(graph.positions, rng, width=0.12)
    true_mean = consensus_value(concentrations)
    strongly_hit = int((concentrations > 0.5).sum())
    print(
        f"{n} sensors; plume hits {strongly_hit} of them strongly; "
        f"true mean concentration = {true_mean:.5f}\n"
    )
    print("the plume as the sensors see it:")
    print(render_field(graph.positions, concentrations))
    print()

    algorithm = HierarchicalGossip(graph)
    tree = algorithm.tree
    print(
        f"Hierarchy: {tree.levels} levels, subdivision factors {tree.factors}, "
        f"{len(tree.leaves())} leaf squares\n"
    )

    result = algorithm.run(concentrations, epsilon, np.random.default_rng(7))

    print(
        format_table(
            ["category", "transmissions", "share"],
            [
                [cat, count, f"{100 * count / result.total_transmissions:.1f}%"]
                for cat, count in sorted(result.transmissions.items())
                if cat != "total"
            ]
            + [["total", result.total_transmissions, "100%"]],
            title="where the energy went",
        )
    )

    sample = result.values[:: max(1, n // 5)][:5]
    print(
        f"\nConverged: {result.converged} "
        f"(final relative error {result.error:.4f}, target {epsilon})"
    )
    print(f"Every sensor now holds ≈ {result.values.mean():.5f}")
    print(f"Five sensors sampled: {np.array2string(sample, precision=5)}")
    print(f"True mean                 {true_mean:.5f}")

    print("\nerror vs transmissions (top-level exchange trace):")
    tx, err = result.trace.as_arrays()
    keep = np.linspace(0, len(tx) - 1, min(8, len(tx))).astype(int)
    print(
        format_table(
            ["transmissions", "relative error"],
            [[int(tx[i]), float(err[i])] for i in keep],
        )
    )


if __name__ == "__main__":
    main()
