#!/usr/bin/env python3
"""Generate the Markdown API reference for the docs site.

Stdlib-only introspection: walks the ``repro`` package tree, renders one
Markdown page per top-level subpackage (module docstrings, public
signatures, docstrings) into ``docs/api/``, and writes ``docs/api/index.md``.
The CI docs job runs this before ``mkdocs build --strict``.

The generator doubles as the documentation linter: every public symbol
of the **strict packages** (``repro.gossip``, ``repro.engine``,
``repro.dynamics``, ``repro.routing``, ``repro.metrics``,
``repro.workloads``, ``repro.observability``) must carry a docstring,
or the build fails — the
acceptance bar "every gossip/ and engine/ public symbol has a docstring
rendered in the API reference" is enforced here (and re-checked by
``tests/test_docs.py``).

Run:  PYTHONPATH=src python docs/gen_api_ref.py [--out docs/api]
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

#: Top-level subpackages rendered, in docs order.
PACKAGES = [
    "repro.gossip",
    "repro.engine",
    "repro.dynamics",
    "repro.routing",
    "repro.graphs",
    "repro.experiments",
    "repro.hierarchy",
    "repro.analysis",
    "repro.metrics",
    "repro.workloads",
    "repro.observability",
    "repro.clocks",
    "repro.geometry",
    "repro.viz",
]

#: Packages whose public symbols MUST all be documented (build-failing).
STRICT_PACKAGES = (
    "repro.gossip",
    "repro.engine",
    "repro.dynamics",
    "repro.routing",
    "repro.metrics",
    "repro.workloads",
    "repro.observability",
)


def iter_modules(package_name: str):
    """Yield the package module and every submodule, depth-first by name."""
    package = importlib.import_module(package_name)
    yield package
    if not hasattr(package, "__path__"):
        return
    for info in sorted(
        pkgutil.walk_packages(package.__path__, prefix=package_name + "."),
        key=lambda info: info.name,
    ):
        yield importlib.import_module(info.name)


def public_symbols(module) -> list[str]:
    """The module's public API: ``__all__`` if declared, else public attrs."""
    if hasattr(module, "__all__"):
        return list(module.__all__)
    return sorted(
        name
        for name, obj in vars(module).items()
        if not name.startswith("_")
        and getattr(obj, "__module__", None) == module.__name__
    )


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _first_line(doc: str | None) -> str:
    return (doc or "").strip().splitlines()[0] if (doc or "").strip() else ""


def render_symbol(module, name: str, missing: list[str]) -> list[str]:
    """Markdown section for one public symbol; records missing docstrings."""
    obj = getattr(module, name, None)
    qualified = f"{module.__name__}.{name}"
    lines: list[str] = []
    if inspect.isclass(obj):
        lines.append(f"### `{name}{_signature(obj)}`\n")
        doc = inspect.getdoc(obj)
        if doc:
            lines.append(doc + "\n")
        else:
            missing.append(qualified)
        for method_name, raw in sorted(vars(obj).items()):
            # vars() yields raw descriptors: classmethod/staticmethod and
            # property objects are not callable, so test the descriptor
            # kinds explicitly and introspect through getattr.
            if method_name.startswith("_"):
                continue
            if not (
                inspect.isfunction(raw)
                or isinstance(raw, (classmethod, staticmethod, property))
            ):
                continue
            if isinstance(raw, property):
                lines.append(f"#### `{name}.{method_name}` *(property)*\n")
                method_doc = inspect.getdoc(raw)
            else:
                bound = getattr(obj, method_name)
                lines.append(
                    f"#### `{name}.{method_name}{_signature(bound)}`\n"
                )
                method_doc = inspect.getdoc(bound)
            if method_doc:
                lines.append(method_doc + "\n")
    elif inspect.isfunction(obj):
        lines.append(f"### `{name}{_signature(obj)}`\n")
        doc = inspect.getdoc(obj)
        if doc:
            lines.append(doc + "\n")
        else:
            missing.append(qualified)
    else:
        lines.append(f"### `{name}`\n")
        kind = type(obj).__name__
        lines.append(f"*constant / data* (`{kind}`)\n")
    return lines


def render_package(package_name: str, missing: list[str]) -> str:
    """One Markdown page covering a package and all its submodules."""
    lines = [f"# `{package_name}`\n"]
    for module in iter_modules(package_name):
        strict = package_name in STRICT_PACKAGES
        doc = inspect.getdoc(module)
        if module.__name__ != package_name:
            lines.append(f"## `{module.__name__}`\n")
        if doc:
            lines.append(doc + "\n")
        elif strict:
            missing.append(module.__name__)
        symbol_missing = missing if strict else []
        for name in public_symbols(module):
            if module.__name__ == package_name and hasattr(module, "__path__"):
                continue  # package __init__ re-exports live on their module page
            lines.extend(render_symbol(module, name, symbol_missing))
    return "\n".join(lines) + "\n"


def generate(out_dir: Path) -> list[str]:
    """Write every API page; returns the missing-docstring list."""
    out_dir.mkdir(parents=True, exist_ok=True)
    missing: list[str] = []
    index = [
        "# API reference\n",
        "Auto-generated from source docstrings by `docs/gen_api_ref.py`.\n",
    ]
    for package_name in PACKAGES:
        page = render_package(package_name, missing)
        slug = package_name.replace(".", "-") + ".md"
        (out_dir / slug).write_text(page, encoding="utf-8")
        summary = _first_line(
            inspect.getdoc(importlib.import_module(package_name))
        )
        index.append(f"- [`{package_name}`]({slug}) — {summary}")
    (out_dir / "index.md").write_text(
        "\n".join(index) + "\n", encoding="utf-8"
    )
    return missing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "api"),
        help="output directory (default: docs/api)",
    )
    args = parser.parse_args(argv)
    missing = generate(Path(args.out))
    if missing:
        print(
            "undocumented public symbols in strict packages "
            f"({', '.join(STRICT_PACKAGES)}):",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
        return 1
    print(f"API reference written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
