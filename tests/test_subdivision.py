"""Unit tests for repro.hierarchy.subdivision."""

import math

import pytest

from repro.hierarchy import (
    nearest_even_square,
    paper_leaf_threshold,
    practical_leaf_threshold,
    subdivision_factors,
)


class TestNearestEvenSquare:
    def test_exact_even_squares(self):
        for j in (1, 2, 3, 5, 10):
            assert nearest_even_square((2 * j) ** 2) == (2 * j) ** 2

    def test_paper_example_n_4096(self):
        # sqrt(4096) = 64 = 8², 8 even: n₁ = 64.
        assert nearest_even_square(math.sqrt(4096)) == 64

    def test_n_1024(self):
        # sqrt(1024) = 32; candidates 16 and 36; 36 is closer.
        assert nearest_even_square(32) == 36

    def test_minimum_is_four(self):
        assert nearest_even_square(1) == 4
        assert nearest_even_square(0.5) == 4

    def test_tie_breaks_to_smaller(self):
        # 4 and 16 are equidistant from 10.
        assert nearest_even_square(10) == 4

    def test_always_even_square(self):
        for target in (3, 7, 20, 55, 120, 333, 1000):
            value = nearest_even_square(target)
            root = math.isqrt(value)
            assert root * root == value
            assert root % 2 == 0

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            nearest_even_square(0)
        with pytest.raises(ValueError):
            nearest_even_square(math.inf)


class TestSubdivisionFactors:
    def test_respects_threshold(self):
        factors = subdivision_factors(4096, leaf_threshold=32.0)
        expected = 4096.0
        for factor in factors:
            assert expected > 32.0
            expected /= factor
        assert expected <= 32.0

    def test_known_decomposition_4096(self):
        # 4096 -> 64 squares of E#=64 -> 4 of E#=16 (threshold 32).
        assert subdivision_factors(4096, 32.0) == [64, 4]

    def test_no_subdivision_below_threshold(self):
        assert subdivision_factors(20, leaf_threshold=32.0) == []

    def test_factors_are_even_squares(self):
        for factor in subdivision_factors(100_000, 16.0):
            root = math.isqrt(factor)
            assert root * root == factor and root % 2 == 0

    def test_never_subdivides_below_one_sensor(self):
        factors = subdivision_factors(1000, leaf_threshold=1.0)
        expected = 1000.0
        for factor in factors:
            expected /= factor
        assert expected >= 1.0

    def test_depth_grows_like_log_log_n(self):
        # ℓ ~ log log n: depth increases very slowly with n.
        depth_small = len(subdivision_factors(256, 8.0))
        depth_large = len(subdivision_factors(1_000_000, 8.0))
        assert 1 <= depth_small <= depth_large <= depth_small + 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            subdivision_factors(0, 8.0)
        with pytest.raises(ValueError):
            subdivision_factors(100, 0.5)


class TestThresholds:
    def test_paper_threshold_value(self):
        assert paper_leaf_threshold(4096) == pytest.approx(math.log(4096) ** 8)

    def test_paper_threshold_never_subdivides_at_simulable_n(self):
        # (log n)^8 > n for all simulable n: single-level hierarchy.
        for n in (100, 10_000, 1_000_000):
            assert subdivision_factors(n, paper_leaf_threshold(n)) == []

    def test_practical_threshold_subdivides(self):
        n = 4096
        assert len(subdivision_factors(n, practical_leaf_threshold(n))) >= 1

    def test_practical_threshold_floor(self):
        assert practical_leaf_threshold(4, constant=0.001) == 8.0

    def test_threshold_input_validation(self):
        with pytest.raises(ValueError):
            paper_leaf_threshold(1)
        with pytest.raises(ValueError):
            practical_leaf_threshold(100, constant=-1.0)
