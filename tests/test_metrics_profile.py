"""Live-metrics contracts: registry exactness, span profiling, scraping.

The metrics layer's headline guarantee mirrors the event recorder's:
collection is *purely observational*.  A run under an active
:class:`~repro.observability.metrics.MetricsRegistry` and
:class:`~repro.observability.profile.SpanProfiler` is bit-identical in
values, ticks, and transmissions to the same run with both off (neither
ever consumes RNG; the off path is one ``is None`` branch).  This module
asserts that across the golden protocol registry, plus the registry
battery itself (label cardinality, histogram bucket edges, thread-safety
under concurrent increments, the disabled-mode zero-allocation path),
the span profiler, the Prometheus text exposition, the scrape endpoint,
and the live ``serve-sweep --metrics-port`` integration.
"""

from __future__ import annotations

import gc
import json
import re
import threading
import urllib.error
import urllib.request
import weakref
from math import inf

import pytest

from protocol_equivalence import (
    CASES,
    assert_results_identical,
    case_names,
    run_engine,
)
from repro.engine.executor import execute_cell, expand_grid
from repro.engine.queue import LeaseQueue
from repro.engine.service import diff_stores, run_distributed_sweep
from repro.engine.store import ResultStore, atomic_write_text
from repro.experiments import ExperimentConfig
from repro.graphs.rgg import RandomGeometricGraph
from repro.observability import metrics, profile
from repro.observability.metrics import (
    CONTENT_TYPE,
    CollectorSink,
    MetricsRegistry,
)
from repro.observability.profile import SpanProfiler, render_table
from repro.observability.server import MetricsServer
from repro.observability.telemetry import metric_deltas
from repro.routing.cache import CachedGreedyRouter

import numpy as np

STRIDES = (1, 4)

#: One exposition-format line: ``name{labels} value`` or ``name value``.
_SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)


def assert_valid_exposition(text: str) -> dict:
    """Parse Prometheus text exposition 0.0.4; returns ``{series: value}``.

    Every non-comment line must match the sample grammar, every sample
    must follow a ``# TYPE`` for its family, and the text must end with
    a newline — the same checks a scraper's parser would make.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    typed: set[str] = set()
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.rsplit(" ", 1)
            assert kind in {"counter", "gauge", "histogram", "untyped"}
            typed.add(name)
            continue
        if line.startswith("#"):
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        series, _, value = line.rpartition(" ")
        family = series.split("{", 1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", family)
        assert family in typed or base in typed, (
            f"sample {series!r} precedes its # TYPE"
        )
        samples[series] = float(value)
    return samples


class TestRegistryBattery:
    """The registry itself: instruments, labels, rendering, threads."""

    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "X.")
        counter.inc(algorithm="randomized")
        counter.inc(2.5, algorithm="randomized")
        counter.inc(algorithm="geographic", mode="uniform")
        assert counter.value(algorithm="randomized") == 3.5
        assert counter.value(algorithm="geographic", mode="uniform") == 1.0
        assert counter.value() == 0.0
        assert len(counter.labels()) == 2

    def test_label_order_is_not_cardinality(self):
        """Label sets are canonicalised: order never forks a series."""
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "X.")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(b="2", a="1") == 2.0
        assert len(counter.labels()) == 1

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "X.")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        counter.set_total(5)
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.set_total(4)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth", "Depth.")
        gauge.set(7, state="pending")
        gauge.inc(-3, state="pending")
        assert gauge.value(state="pending") == 4.0

    def test_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_x_total") is registry.counter(
            "repro_x_total"
        )
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("repro-dashes")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_x_total").inc(**{"bad-label": "v"})

    def test_histogram_bucket_edges_are_inclusive(self):
        """``le`` semantics: a sample on the bound lands in its bucket."""
        registry = MetricsRegistry()
        hist = registry.histogram("repro_s", "S.", buckets=(0.1, 1.0, 2.5))
        for value in (0.1, 1.0, 2.5):
            hist.observe(value)
        assert hist.bucket_counts() == {0.1: 1, 1.0: 2, 2.5: 3, inf: 3}

    def test_histogram_overflow_and_sums(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_s", "S.", buckets=(0.1, 1.0))
        hist.observe(50.0, worker="w0")
        hist.observe(0.05, worker="w0")
        assert hist.bucket_counts(worker="w0") == {0.1: 1, 1.0: 1, inf: 2}
        assert hist.count(worker="w0") == 2
        assert hist.sum(worker="w0") == pytest.approx(50.05)
        assert hist.count(worker="w1") == 0

    def test_histogram_rejects_unsorted_or_empty_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted and non-empty"):
            registry.histogram("repro_a", "A.", buckets=(1.0, 0.1))
        with pytest.raises(ValueError, match="sorted and non-empty"):
            registry.histogram("repro_b", "B.", buckets=())

    def test_thread_safety_under_concurrent_increments(self):
        """W worker threads × N increments lose nothing: exact totals."""
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total", "Hits.")
        hist = registry.histogram("repro_s", "S.", buckets=(0.5,))
        workers, per_worker = 8, 2500

        def work(worker: int) -> None:
            for _ in range(per_worker):
                counter.inc(worker=str(worker))
                counter.inc()
                hist.observe(0.25)

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == workers * per_worker
        for worker in range(workers):
            assert counter.value(worker=str(worker)) == per_worker
        assert hist.count() == workers * per_worker
        assert hist.sum() == pytest.approx(0.25 * workers * per_worker)

    def test_render_prometheus_is_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_cells_total", "Cells.").inc(
            3, algorithm="geographic"
        )
        registry.gauge("repro_queue_depth", "Depth.").set(5)
        registry.histogram("repro_s", "Secs.", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render_prometheus()
        samples = assert_valid_exposition(text)
        assert samples['repro_cells_total{algorithm="geographic"}'] == 3.0
        assert samples["repro_queue_depth"] == 5.0
        assert samples['repro_s_bucket{le="0.1"}'] == 0.0
        assert samples['repro_s_bucket{le="1"}'] == 1.0
        assert samples['repro_s_bucket{le="+Inf"}'] == 1.0
        assert samples["repro_s_count"] == 1.0
        assert "# HELP repro_queue_depth Depth." in text

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "X.").inc(
            path='a"b\\c\nend'
        )
        text = registry.render_prometheus()
        assert r'path="a\"b\\c\nend"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_snapshot_matches_rendered_scalars(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "X.").inc(2, algorithm="spatial")
        registry.histogram("repro_s", "S.", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap['repro_x_total{algorithm="spatial"}'] == 2.0
        assert snap["repro_s_count"] == 1.0
        assert snap["repro_s_sum"] == 0.5

    def test_metric_deltas_attributes_movement(self):
        before = {"repro_a_total": 3.0, "repro_b_total": 1.0}
        after = {"repro_a_total": 5.0, "repro_b_total": 1.0, "repro_c_total": 4.0}
        assert metric_deltas(after, before) == {
            "metric_repro_a_total": 2.0,
            "metric_repro_c_total": 4.0,
        }


class TestDisabledMode:
    """Metrics off (the default) must cost nothing and allocate nothing."""

    def test_active_is_none_by_default(self):
        assert metrics.active() is None
        assert profile.active() is None

    def test_expose_restores_prior_state(self):
        with metrics.expose() as registry:
            assert metrics.active() is registry
            with metrics.expose() as inner:
                assert metrics.active() is inner
            assert metrics.active() is registry
        assert metrics.active() is None

    def test_enable_disable_round_trip(self):
        registry = metrics.enable()
        try:
            assert metrics.active() is registry
        finally:
            metrics.disable()
        assert metrics.active() is None

    def test_disabled_span_is_one_shared_object(self):
        """The zero-allocation path: every disabled span is the same
        singleton, so the hot loop never constructs anything."""
        spans = {id(profile.span(name)) for name in ("a", "b", "c")}
        assert len(spans) == 1
        with profile.span("anything"):
            pass  # and it is a working (no-op) context manager

    def test_disabled_run_records_nothing(self):
        """An instrumented engine path runs clean with everything off."""
        result = run_engine(CASES["randomized"], seed=11, check_stride=4)
        assert result.converged
        assert metrics.active() is None and profile.active() is None


class TestCollectors:
    """Pull-time collection: the route cache's zero-hot-path-cost path."""

    @staticmethod
    def _graph(n=32, seed=5):
        return RandomGeometricGraph.sample_connected(
            n, np.random.default_rng(seed), radius_constant=3.0
        )

    def test_cache_registers_and_reports_on_scrape(self):
        graph = self._graph()
        with metrics.expose() as registry:
            router = CachedGreedyRouter(graph)
            rng = np.random.default_rng(3)
            for target in rng.integers(graph.n, size=12):
                router.route_stats(int(target))
            snap = registry.snapshot()
            assert snap["repro_route_cache_misses_total"] == router.misses
            assert snap["repro_route_cache_hits_total"] == router.hits
            assert router.misses > 0

    def test_collected_counters_survive_cache_death(self):
        """A garbage-collected cache retires its last report: the
        exported series holds its high-water mark, never rewinds."""
        graph = self._graph()
        with metrics.expose() as registry:
            router = CachedGreedyRouter(graph)
            router.route_stats(graph.n - 1)
            before = registry.snapshot()["repro_route_cache_misses_total"]
            assert before > 0
            del router
            gc.collect()
            after = registry.snapshot()["repro_route_cache_misses_total"]
            assert after == before
            # A second cache's counts stack on the retired base.
            other = CachedGreedyRouter(graph)
            other.route_stats(graph.n - 1)
            stacked = registry.snapshot()["repro_route_cache_misses_total"]
            assert stacked == before + other.misses

    def test_collector_registration_never_extends_lifetime(self):
        graph = self._graph()
        with metrics.expose():
            router = CachedGreedyRouter(graph)
            probe = weakref.ref(router)
            del router
            gc.collect()
            assert probe() is None  # the registry held no strong ref

    def test_sink_sums_same_series(self):
        sink = CollectorSink()
        sink.counter("repro_hits_total", 3, "Hits.")
        sink.counter("repro_hits_total", 4, "Hits.")
        assert sink._counters[("repro_hits_total", ())] == ("Hits.", 7.0)

    def test_no_registration_without_active_registry(self):
        graph = self._graph()
        registry = MetricsRegistry()
        CachedGreedyRouter(graph)  # built with metrics off
        assert registry.snapshot() == {}


class TestSpanProfiler:
    def test_nested_spans_make_dotted_paths(self):
        profiler = SpanProfiler()
        with profiler.span("run"):
            for _ in range(3):
                with profiler.span("window"):
                    pass
            with profiler.span("check"):
                pass
        spans = {row["span"]: row for row in profiler.hotpath_table()}
        assert set(spans) == {"run", "run.window", "run.check"}
        assert spans["run.window"]["count"] == 3
        assert spans["run"]["count"] == 1

    def test_module_span_uses_active_profiler(self):
        with profile.capture() as profiler:
            with profile.span("outer"):
                with profile.span("inner"):
                    pass
        assert {row["span"] for row in profiler.hotpath_table()} == {
            "outer",
            "outer.inner",
        }

    def test_table_rows_carry_the_stats(self):
        profiler = SpanProfiler()
        for seconds in (0.1, 0.2, 0.3, 0.4):
            profiler._push("phase")
            profiler._pop("phase", seconds)
        (row,) = profiler.hotpath_table()
        assert row["count"] == 4
        assert row["total"] == pytest.approx(1.0)
        assert row["mean"] == pytest.approx(0.25)
        assert row["p50"] == pytest.approx(0.2)  # nearest-rank: ceil(2)=0.2
        assert row["p99"] == pytest.approx(0.4)

    def test_rows_sorted_by_total_descending(self):
        profiler = SpanProfiler()
        for name, seconds in (("cold", 0.1), ("hot", 5.0), ("warm", 1.0)):
            profiler._push(name)
            profiler._pop(name, seconds)
        assert [row["span"] for row in profiler.hotpath_table()] == [
            "hot",
            "warm",
            "cold",
        ]

    def test_decimation_bounds_samples_but_not_totals(self):
        from repro.observability.profile import SAMPLE_CAP, _SpanStat

        stat = _SpanStat()
        count = SAMPLE_CAP * 4
        for index in range(count):
            stat.add(float(index))
        assert stat.count == count
        assert stat.total == pytest.approx(count * (count - 1) / 2)
        assert len(stat.samples) < SAMPLE_CAP
        assert stat.stride > 1
        # Percentiles still track the distribution's scale.
        assert stat.percentile(0.99) >= 0.9 * count

    def test_threads_keep_independent_stacks(self):
        profiler = SpanProfiler()
        barrier = threading.Barrier(2)

        def work(name: str) -> None:
            with profiler.span(name):
                barrier.wait(timeout=10)
                with profiler.span("inner"):
                    pass

        threads = [
            threading.Thread(target=work, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = {row["span"] for row in profiler.hotpath_table()}
        assert spans == {"a", "b", "a.inner", "b.inner"}

    def test_render_table_aligns_and_formats(self):
        text = render_table(
            [
                {
                    "span": "run.window",
                    "count": 12,
                    "total": 1.5,
                    "mean": 0.125,
                    "p50": 0.1,
                    "p99": 0.4,
                }
            ]
        )
        lines = text.splitlines()
        assert lines[0].split() == ["span", "count", "total", "mean", "p50", "p99"]
        assert "run.window" in lines[1]
        assert "1.500s" in lines[1]
        assert "125.0ms" in lines[1]
        assert render_table([]) == "(no spans recorded)"


@pytest.mark.parametrize("check_stride", STRIDES)
@pytest.mark.parametrize("name", case_names())
def test_metrics_on_runs_are_bit_identical(name, check_stride):
    """The acceptance contract: registry + profiler never touch RNG, so
    every golden config is bit-identical with both enabled."""
    case = CASES[name]
    plain = run_engine(case, seed=7, check_stride=check_stride)
    with metrics.expose() as registry, profile.capture() as profiler:
        instrumented = run_engine(case, seed=7, check_stride=check_stride)
    assert_results_identical(
        plain, instrumented, f"{name}, stride {check_stride}, metrics on"
    )
    if case.tick_driven and check_stride > 1:
        # The instrumented engine loop ran: its counters must be exact.
        algorithm = case.factory()
        ticks = registry.counter("repro_engine_ticks_total").value(
            algorithm=algorithm.name
        )
        assert ticks == instrumented.ticks
        assert len(profiler) > 0


@pytest.mark.parametrize("name", ["path-averaging-faulted", "randomized-faulted"])
def test_fault_counters_populate_under_churn(name):
    with metrics.expose() as registry:
        run_engine(CASES[name], seed=7, check_stride=4)
        snap = registry.snapshot()
    moved = [series for series in snap if series.startswith("repro_fault_")]
    assert moved, f"no fault series recorded for {name}"


class TestQueueMetrics:
    def _queue(self, tmp_path, clock):
        cells = expand_grid(
            ExperimentConfig(
                sizes=(32,), trials=2, algorithms=("randomized",)
            )
        )
        return LeaseQueue.create(tmp_path / "q", cells, ttl=10.0, clock=clock)

    def test_lease_lifecycle_counters(self, tmp_path):
        clock = FakeClock()
        with metrics.expose() as registry:
            queue = self._queue(tmp_path, clock)
            lease = queue.claim("w0")
            queue.heartbeat(lease)
            clock.now += 2.0
            queue.complete(lease)
            snap = registry.snapshot()
        assert snap['repro_queue_claims_total{owner="w0"}'] == 1.0
        assert snap['repro_queue_heartbeats_total{owner="w0"}'] == 1.0
        assert snap['repro_queue_completions_total{owner="w0"}'] == 1.0
        assert snap["repro_queue_cell_seconds_count"] == 1.0
        assert snap["repro_queue_cell_seconds_sum"] == pytest.approx(2.0)

    def test_reclaim_counter_names_the_winner(self, tmp_path):
        clock = FakeClock()
        with metrics.expose() as registry:
            queue = self._queue(tmp_path, clock)
            assert queue.claim("dead") is not None
            clock.now += 100.0  # way past ttl
            lease = queue.claim("live")
            assert lease is not None
            snap = registry.snapshot()
        assert snap['repro_queue_reclaims_total{owner="live"}'] == 1.0


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestScrapeServer:
    def test_metrics_and_healthz_endpoints(self):
        registry = MetricsRegistry()
        registry.gauge("repro_queue_depth", "Pending cells.").set(5)
        registry.counter("repro_cells_completed_total", "Done.").inc(3)
        with MetricsServer(
            registry, health=lambda: {"queue": {"done": 3}}
        ) as server:
            assert server.port != 0 and server.url is not None
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                text = response.read().decode("utf-8")
            samples = assert_valid_exposition(text)
            assert samples["repro_queue_depth"] == 5.0
            assert samples["repro_cells_completed_total"] == 3.0
            with urllib.request.urlopen(f"{server.url}/healthz") as response:
                assert response.status == 200
                health = json.loads(response.read().decode("utf-8"))
            assert health["status"] == "ok"
            assert health["queue"]["done"] == 3

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(f"{server.url}/nope")
            assert caught.value.code == 404

    def test_stop_is_idempotent_and_start_once(self):
        server = MetricsServer(MetricsRegistry())
        port = server.start()
        with pytest.raises(RuntimeError, match="already started"):
            server.start()
        server.stop()
        server.stop()
        # The port is actually released: a fresh server can bind it.
        rebound = MetricsServer(MetricsRegistry(), port=port)
        assert rebound.start() == port
        rebound.stop()


class TestAtomicWrites:
    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "nested" / "telemetry.json"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text(encoding="utf-8") == "second"
        assert [p.name for p in target.parent.iterdir()] == ["telemetry.json"]


class TestExecutorIntegration:
    CONFIG = ExperimentConfig(
        sizes=(32,), epsilon=0.3, trials=1, algorithms=("geographic",)
    )

    def test_cell_record_is_equal_and_telemetry_enriched(self):
        (cell,) = expand_grid(self.CONFIG)
        plain = execute_cell(self.CONFIG, cell, check_stride=4)
        with metrics.expose() as registry:
            instrumented = execute_cell(self.CONFIG, cell, check_stride=4)
        assert instrumented == plain  # telemetry/timing excluded from ==
        telemetry = instrumented.telemetry
        assert telemetry["metric_repro_cells_executed_total"
                         '{algorithm="geographic"}'] == 1.0
        assert (
            telemetry['metric_repro_engine_ticks_total{algorithm="geographic"}']
            == instrumented.ticks
        )
        assert "metric_repro_route_cache_misses_total" in str(telemetry)
        seconds = registry.snapshot()
        assert seconds['repro_cell_seconds_count{algorithm="geographic"}'] == 1.0
        assert "metric_" not in str(plain.telemetry)


class TestServeSweepMetrics:
    CONFIG = ExperimentConfig(
        sizes=(32, 48),
        epsilon=0.3,
        trials=1,
        radius_constant=3.0,
        algorithms=("randomized", "geographic"),
    )

    def test_live_scrape_during_distributed_sweep(self, tmp_path):
        """The acceptance contract's service half: a live coordinator
        answers /metrics with valid exposition carrying queue, worker,
        and route-cache series — scraped mid-sweep, from on_progress."""
        store = ResultStore(tmp_path / "dist", self.CONFIG, check_stride=4)
        urls: list[str] = []
        scrapes: list[str] = []
        healths: list[dict] = []

        def scrape(stats) -> None:
            base = urls[0]
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
                assert r.headers["Content-Type"] == CONTENT_TYPE
                scrapes.append(r.read().decode("utf-8"))
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
                healths.append(json.loads(r.read().decode("utf-8")))

        records = run_distributed_sweep(
            self.CONFIG,
            store=store,
            queue_dir=tmp_path / "queue",
            workers=2,
            ttl=10.0,
            heartbeat_interval=0.1,
            poll_interval=0.05,
            # Stride 4 exercises the strided engine path, whose
            # geographic cells bank route-cache hits in their records.
            check_stride=4,
            metrics_port=0,
            on_metrics_url=urls.append,
            on_progress=scrape,
        )
        grid = expand_grid(self.CONFIG)
        assert set(records) == {cell.key for cell in grid}
        assert urls and scrapes
        samples = assert_valid_exposition(scrapes[-1])
        assert "repro_queue_depth" in samples
        assert samples["repro_cells_completed_total"] >= 1
        assert "repro_route_cache_hits_total" in samples
        assert any(
            series.startswith("repro_worker_cells_total{") for series in samples
        )
        assert any(
            series.startswith('repro_queue_cells{state="done"}')
            for series in samples
        )
        # Monotone across scrapes: completions never rewind.
        done = [
            assert_valid_exposition(text)["repro_cells_completed_total"]
            for text in scrapes
        ]
        assert done == sorted(done)
        assert healths[-1]["queue"]["done"] >= 1
        # telemetry.json embeds the same registry snapshot; by the final
        # publish every cell has landed, so the record-derived
        # route-cache totals cover the geographic cells too.
        telemetry = json.loads((tmp_path / "queue" / "telemetry.json").read_text())
        assert telemetry["metrics"]["repro_cells_completed_total"] == len(grid)
        assert telemetry["metrics"]["repro_route_cache_hits_total"] > 0

    def test_cli_serve_sweep_prints_metrics_url(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "serve-sweep",
                "--sizes",
                "32",
                "--trials",
                "1",
                "--epsilon",
                "0.3",
                "--algorithms",
                "randomized",
                "--workers",
                "1",
                "--store-dir",
                str(tmp_path / "store"),
                "--queue-dir",
                str(tmp_path / "queue"),
                "--metrics-port",
                "0",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        match = re.search(r"metrics: (http://127\.0\.0\.1:\d+)/metrics", printed)
        assert match, printed

    def test_metrics_endpoint_changes_no_numbers(self, tmp_path):
        """Same config, metrics on vs off: stores are byte-identical."""
        plain = ResultStore(tmp_path / "plain", self.CONFIG)
        for cell in expand_grid(self.CONFIG):
            plain.open().append(execute_cell(self.CONFIG, cell))
        observed = ResultStore(tmp_path / "observed", self.CONFIG)
        run_distributed_sweep(
            self.CONFIG,
            store=observed,
            queue_dir=tmp_path / "queue",
            workers=2,
            ttl=10.0,
            heartbeat_interval=0.1,
            poll_interval=0.05,
            metrics_port=0,
        )
        assert diff_stores(plain.root, observed.root) == []


class TestProfileCommand:
    def test_profile_prints_hotpath_table_and_counters(self, capsys):
        from repro.cli import main

        code = main(
            [
                "profile",
                "--algorithm",
                "geographic",
                "--n",
                "48",
                "--epsilon",
                "0.3",
                "--check-stride",
                "4",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "hotpath table" in printed
        for span in ("build", "run", "run.window", "run.check"):
            assert re.search(rf"^{re.escape(span)}\s", printed, re.M), span
        assert "repro_engine_ticks_total" in printed
        assert "repro_route_cache_misses_total" in printed

    def test_profile_numbers_match_a_plain_run(self, capsys):
        """The command's banner promise: profiling changes no numbers."""
        from repro.cli import main

        args = ["--algorithm", "randomized", "--n", "48", "--epsilon", "0.3"]
        assert main(["profile", *args, "--check-stride", "4"]) == 0
        profiled = capsys.readouterr().out
        assert main(["run", *args, "--check-stride", "4"]) == 0
        plain = capsys.readouterr().out

        def numbers(text: str) -> dict:
            out = {}
            # 'run' prints no ticks row; compare the rows both commands
            # share (the engine result fields).
            for field in ("converged", "final error", "transmissions"):
                match = re.search(rf"{field}\s+\|\s+(\S+)", text)
                assert match, f"{field} row missing"
                out[field] = match.group(1)
            return out

        assert numbers(profiled) == numbers(plain)

    def test_profile_leaves_observability_off_afterwards(self):
        from repro.cli import main

        main(["profile", "--algorithm", "randomized", "--n", "32",
              "--epsilon", "0.3"])
        assert metrics.active() is None
        assert profile.active() is None


class TestReplayWorkers:
    @pytest.fixture()
    def traced_store(self, tmp_path):
        from repro.cli import main

        store = tmp_path / "store"
        code = main(
            [
                "sweep",
                "--sizes",
                "32,48",
                "--trials",
                "2",
                "--epsilon",
                "0.3",
                "--algorithms",
                "randomized,geographic",
                "--store-dir",
                str(store),
                "--trace",
            ]
        )
        assert code == 0
        return store

    def test_parallel_replay_output_matches_serial(self, traced_store, capsys):
        from repro.cli import main

        assert main(["replay", str(traced_store)]) == 0
        serial = capsys.readouterr().out
        assert main(["replay", str(traced_store), "--workers", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial  # line order and summary, byte for byte
        assert "8/8 traces replayed and validated" in parallel

    def test_worker_count_capped_by_trace_count(self, tmp_path, capsys):
        """More workers than traces is fine (the pool is clamped)."""
        from repro.cli import main

        out = tmp_path / "run.jsonl"
        main(
            [
                "trace",
                "--algorithm",
                "randomized",
                "--n",
                "32",
                "--epsilon",
                "0.3",
                "--out",
                str(out),
            ]
        )
        capsys.readouterr()
        assert main(["replay", str(out), "--workers", "8"]) == 0
        assert "1/1 traces replayed and validated" in capsys.readouterr().out
