"""Unit tests for repro.gossip.path_averaging (randomized path averaging)."""

import numpy as np
import pytest

from repro.experiments.seeds import spawn_rng
from repro.gossip.geographic import GeographicGossip
from repro.gossip.path_averaging import PathAveragingGossip
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.rgg import RandomGeometricGraph
from repro.routing.cost import TransmissionCounter


@pytest.fixture(scope="module")
def graph():
    return RandomGeometricGraph.sample_connected(
        64, np.random.default_rng(11), radius_constant=3.0
    )


class TestConstruction:
    def test_rejects_unknown_target_mode(self, graph):
        with pytest.raises(ValueError, match="target mode"):
            PathAveragingGossip(graph, target_mode="teleport")

    def test_modes_accepted(self, graph):
        for mode in ("uniform", "position"):
            assert PathAveragingGossip(graph, target_mode=mode).name == (
                "path-averaging"
            )


class TestTick:
    def test_sum_conserved_over_many_ticks(self, graph):
        for mode in ("uniform", "position"):
            protocol = PathAveragingGossip(graph, target_mode=mode)
            rng = spawn_rng(3, "pa-sum", mode)
            values = rng.normal(size=graph.n)
            before = values.sum()
            counter = TransmissionCounter()
            for _ in range(200):
                protocol.tick(int(rng.integers(graph.n)), values, counter, rng)
            assert values.sum() == pytest.approx(before, abs=1e-9)

    def test_whole_route_adopts_the_route_average(self, graph):
        protocol = PathAveragingGossip(graph)
        values = spawn_rng(5, "pa-field").normal(size=graph.n)
        node = 3
        # Replay the tick's single target draw to predict the route.
        probe = spawn_rng(9, "pa-draw")
        target = int(probe.integers(graph.n - 1))
        if target >= node:
            target += 1
        route = protocol.router.route_to_node(node, target)
        assert route.delivered and route.hops >= 1
        expected = values[np.asarray(route.path)].mean()
        protocol.tick(node, values, TransmissionCounter(), spawn_rng(9, "pa-draw"))
        np.testing.assert_allclose(
            values[np.asarray(route.path)], expected, rtol=0
        )

    def test_charges_two_transmissions_per_hop(self, graph):
        protocol = PathAveragingGossip(graph)
        values = spawn_rng(5, "pa-field").normal(size=graph.n)
        node = 3
        probe = spawn_rng(9, "pa-draw")
        target = int(probe.integers(graph.n - 1))
        if target >= node:
            target += 1
        hops = protocol.router.route_to_node(node, target).hops
        counter = TransmissionCounter()
        protocol.tick(node, values, counter, spawn_rng(9, "pa-draw"))
        assert counter.total == 2 * hops
        assert counter.snapshot()["route"] == 2 * hops

    def test_position_mode_never_fails(self, graph):
        protocol = PathAveragingGossip(graph, target_mode="position")
        rng = spawn_rng(7, "pa-pos")
        values = rng.normal(size=graph.n)
        for _ in range(100):
            protocol.tick(int(rng.integers(graph.n)), values, TransmissionCounter(), rng)
        assert protocol.failed_exchanges == 0


class TestRoutingVoids:
    def test_void_aborts_conserve_sum_on_adversarial_topology(self):
        """Erdős–Rényi edges ignore geometry: greedy routing voids often."""
        graph = erdos_renyi_graph(80, np.random.default_rng(2))
        protocol = PathAveragingGossip(graph)
        rng = spawn_rng(13, "pa-er")
        values = rng.normal(size=graph.n)
        before = values.sum()
        for _ in range(300):
            protocol.tick(int(rng.integers(graph.n)), values, TransmissionCounter(), rng)
        assert protocol.failed_exchanges > 0
        assert values.sum() == pytest.approx(before, abs=1e-9)


class TestOrderOptimality:
    def test_beats_geographic_on_the_same_instance(self, graph):
        """The headline mechanism: one routed walk mixes Θ(√n) values."""
        values = spawn_rng(21, "pa-race").normal(size=graph.n)
        costs = {}
        for cls in (PathAveragingGossip, GeographicGossip):
            protocol = cls(graph)
            result = protocol.run(
                values.copy(), 0.2, spawn_rng(22, "pa-race", cls.name)
            )
            assert result.converged
            costs[cls.name] = result.total_transmissions
        assert costs["path-averaging"] < costs["geographic"]
