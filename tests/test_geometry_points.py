"""Unit tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry import (
    distance_matrix,
    euclidean_distance,
    pairwise_within,
    random_points,
    squared_distances_to,
    torus_distance,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestRandomPoints:
    def test_shape_and_range(self, rng):
        pts = random_points(100, rng)
        assert pts.shape == (100, 2)
        assert pts.min() >= 0.0
        assert pts.max() <= 1.0

    def test_rejects_nonpositive_count(self, rng):
        with pytest.raises(ValueError):
            random_points(0, rng)

    def test_deterministic_given_seed(self):
        a = random_points(10, np.random.default_rng(3))
        b = random_points(10, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_roughly_uniform_quadrants(self, rng):
        pts = random_points(8000, rng)
        in_lower_left = ((pts[:, 0] < 0.5) & (pts[:, 1] < 0.5)).mean()
        assert abs(in_lower_left - 0.25) < 0.02


class TestDistances:
    def test_euclidean_known_value(self):
        assert euclidean_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_euclidean_is_symmetric(self, rng):
        p, q = random_points(2, rng)
        assert euclidean_distance(p, q) == pytest.approx(euclidean_distance(q, p))

    def test_torus_wraps_around(self):
        p = np.array([0.05, 0.5])
        q = np.array([0.95, 0.5])
        assert torus_distance(p, q) == pytest.approx(0.1)

    def test_torus_never_exceeds_euclidean(self, rng):
        for _ in range(50):
            p, q = random_points(2, rng)
            assert torus_distance(p, q) <= euclidean_distance(p, q) + 1e-12

    def test_torus_max_distance(self):
        # Farthest-apart torus points differ by 0.5 in both coordinates.
        p = np.array([0.0, 0.0])
        q = np.array([0.5, 0.5])
        assert torus_distance(p, q) == pytest.approx(np.sqrt(0.5))

    def test_squared_distances_to(self, rng):
        pts = random_points(20, rng)
        target = np.array([0.5, 0.5])
        sq = squared_distances_to(pts, target)
        expected = np.array([euclidean_distance(p, target) ** 2 for p in pts])
        np.testing.assert_allclose(sq, expected)


class TestDistanceMatrix:
    def test_matches_pointwise(self, rng):
        pts = random_points(15, rng)
        mat = distance_matrix(pts)
        for i in range(15):
            for j in range(15):
                assert mat[i, j] == pytest.approx(
                    euclidean_distance(pts[i], pts[j])
                )

    def test_symmetry_and_zero_diagonal(self, rng):
        mat = distance_matrix(random_points(30, rng))
        np.testing.assert_allclose(mat, mat.T)
        np.testing.assert_allclose(np.diag(mat), 0.0)


class TestPairwiseWithin:
    def test_no_self_loops(self, rng):
        mask = pairwise_within(random_points(25, rng), radius=0.5)
        assert not mask.diagonal().any()

    def test_radius_one_connects_everything(self, rng):
        # Diameter of the unit square is sqrt(2) > 1, so use radius sqrt(2).
        mask = pairwise_within(random_points(10, rng), radius=np.sqrt(2.0))
        off_diagonal = mask | np.eye(10, dtype=bool)
        assert off_diagonal.all()

    def test_tiny_radius_connects_nothing(self, rng):
        mask = pairwise_within(random_points(10, rng), radius=1e-9)
        assert not mask.any()
