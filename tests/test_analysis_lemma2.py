"""Unit tests for repro.analysis.lemma2."""

import numpy as np
import pytest

from repro.analysis import (
    lemma2_bound,
    lemma2_empirical_exceedance,
    lemma2_failure_probability,
)


class TestLemma2Bound:
    def test_formula(self):
        n, t, y0, eps, a = 16, 100, 2.0, 0.01, 1.0
        decay = (1 - 1 / (2 * n)) ** (t / 2)
        expected = n ** (a / 2) * (decay * y0 + 8 * np.sqrt(2) * n**1.5 * eps)
        assert lemma2_bound(t, n, y0, eps, a) == pytest.approx(expected)

    def test_noise_floor_remains_at_large_t(self):
        n, eps = 32, 1e-3
        late = lemma2_bound(10_000_000, n, 1.0, eps)
        floor = n**0.5 * 8 * np.sqrt(2) * n**1.5 * eps
        assert late == pytest.approx(floor, rel=1e-6)

    def test_monotone_decreasing_in_t(self):
        values = [lemma2_bound(t, 16, 1.0, 0.01) for t in (0, 10, 100, 1000)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_zero_noise_pure_decay(self):
        n = 16
        b0 = lemma2_bound(0, n, 1.0, 0.0)
        b_late = lemma2_bound(5000, n, 1.0, 0.0)
        assert b0 == pytest.approx(np.sqrt(n))
        assert b_late < 1e-20

    def test_input_validation(self):
        with pytest.raises(ValueError):
            lemma2_bound(-1, 16, 1.0, 0.01)
        with pytest.raises(ValueError):
            lemma2_bound(10, 1, 1.0, 0.01)
        with pytest.raises(ValueError):
            lemma2_bound(10, 16, -1.0, 0.01)


class TestFailureProbability:
    def test_value(self):
        assert lemma2_failure_probability(100, a=1.0) == pytest.approx(0.05)
        assert lemma2_failure_probability(10, a=2.0) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma2_failure_probability(1)


class TestEmpiricalExceedance:
    def test_exceedance_within_budget(self):
        # Lemma 2 promises exceedance ≤ 5/n^a; the bound is loose, so the
        # measured rate should be far below the allowance (often zero).
        rng = np.random.default_rng(19)
        report = lemma2_empirical_exceedance(
            n=16, noise_bound=0.01, ticks=400, trials=40, rng=rng
        )
        assert report["exceedance_rate"] <= report["allowed_rate"]

    def test_report_fields(self):
        rng = np.random.default_rng(23)
        report = lemma2_empirical_exceedance(
            n=8, noise_bound=0.05, ticks=50, trials=5, rng=rng
        )
        assert set(report) == {"exceedance_rate", "allowed_rate", "trials"}
        assert report["trials"] == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma2_empirical_exceedance(
                n=8, noise_bound=0.1, ticks=10, trials=0,
                rng=np.random.default_rng(1),
            )
