"""Unit tests for repro.routing.greedy."""

import numpy as np
import pytest

from repro.graphs import RandomGeometricGraph
from repro.routing import GreedyRouter, TransmissionCounter


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(61)
    return RandomGeometricGraph.sample_connected(400, rng, radius_constant=3.0)


@pytest.fixture(scope="module")
def router(graph):
    return GreedyRouter(graph)


class TestRouteToPosition:
    def test_path_starts_at_source(self, router):
        result = router.route_to_position(0, np.array([0.5, 0.5]))
        assert result.path[0] == 0

    def test_progress_monotone(self, graph, router):
        target = np.array([0.9, 0.1])
        result = router.route_to_position(3, target)
        dists = [
            np.hypot(*(graph.positions[v] - target)) for v in result.path
        ]
        assert all(b < a for a, b in zip(dists, dists[1:]))

    def test_destination_is_local_minimum(self, graph, router):
        target = np.array([0.25, 0.75])
        result = router.route_to_position(7, target)
        dest = result.destination
        dest_dist = np.hypot(*(graph.positions[dest] - target))
        for v in graph.neighbors[dest]:
            neigh_dist = np.hypot(*(graph.positions[int(v)] - target))
            assert neigh_dist >= dest_dist

    def test_hops_counted(self, router):
        counter = TransmissionCounter()
        result = router.route_to_position(
            0, np.array([0.95, 0.95]), counter=counter
        )
        assert counter.total == result.hops
        assert counter.by_category["route"] == result.hops

    def test_route_to_own_position_is_free(self, graph, router):
        counter = TransmissionCounter()
        result = router.route_to_position(
            5, graph.positions[5], counter=counter
        )
        assert result.hops == 0
        assert counter.total == 0

    def test_hop_count_scales_with_distance(self, graph, router):
        # A route across the square should take roughly distance/r hops.
        corner_sw = graph.nearest_node(np.array([0.02, 0.02]))
        result = router.route_to_position(corner_sw, np.array([0.98, 0.98]))
        expected = np.sqrt(2.0) / graph.radius
        assert 0.4 * expected <= result.hops <= 2.5 * expected


class TestRouteToNode:
    def test_delivers_to_target(self, graph, router):
        rng = np.random.default_rng(67)
        delivered = 0
        trials = 50
        for _ in range(trials):
            src, dst = rng.integers(graph.n, size=2)
            result = router.route_to_node(int(src), int(dst))
            if result.delivered:
                assert result.destination == dst
                delivered += 1
        # At radius_constant=3 voids are essentially absent.
        assert delivered >= trials - 1

    def test_self_route(self, router):
        result = router.route_to_node(9, 9)
        assert result.delivered
        assert result.hops == 0

    def test_round_trip_costs_both_ways(self, graph, router):
        counter = TransmissionCounter()
        forward, backward = router.round_trip(0, graph.n - 1, counter=counter)
        assert counter.total == forward.hops + backward.hops
        if forward.delivered and backward.delivered:
            assert backward.destination == 0

    def test_void_detected_on_sparse_graph(self):
        # Hand-built void: target's only approach requires moving away first.
        positions = np.array(
            [
                [0.10, 0.50],  # 0: source
                [0.45, 0.50],  # 1: greedy local minimum (dead end)
                [0.42, 0.80],  # 2: detour node, farther from target than 1
                [0.75, 0.75],  # 3: second detour hop
                [0.90, 0.50],  # 4: target
            ]
        )
        graph = RandomGeometricGraph.build(positions, radius=0.35)
        # The detour path 1-2-3-4 exists, so the graph is connected ...
        assert graph.are_adjacent(1, 2) and graph.are_adjacent(2, 3)
        assert graph.are_adjacent(3, 4)
        # ... but node 1 has no neighbour closer to the target than itself.
        router = GreedyRouter(graph)
        result = router.route_to_node(0, 4)
        assert not result.delivered
        assert result.destination == 1

    def test_expected_hops_formula(self, graph, router):
        assert router.expected_hops(0.5) == pytest.approx(0.5 / graph.radius)
