"""Unit tests for repro.experiments.report."""

import json

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.report import (
    render_markdown,
    save_json,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.experiments.runner import ScalingPoint


@pytest.fixture
def config():
    return ExperimentConfig(
        sizes=(64, 128), epsilon=0.3, trials=2, algorithms=("geographic",)
    )


@pytest.fixture
def sweep():
    return {
        "geographic": [
            ScalingPoint("geographic", 64, 1000.0, 50.0, 1.0, 2),
            ScalingPoint("geographic", 128, 2800.0, 90.0, 1.0, 2),
        ]
    }


class TestSerialization:
    def test_round_trip(self, config, sweep):
        payload = sweep_to_dict(config, sweep)
        restored = sweep_from_dict(payload)
        assert restored.keys() == sweep.keys()
        for original, back in zip(sweep["geographic"], restored["geographic"]):
            assert back.n == original.n
            assert back.transmissions_mean == original.transmissions_mean
            assert back.converged_fraction == original.converged_fraction

    def test_dict_is_json_serialisable(self, config, sweep):
        text = json.dumps(sweep_to_dict(config, sweep))
        assert "geographic" in text

    def test_config_recorded(self, config, sweep):
        payload = sweep_to_dict(config, sweep)
        assert payload["config"]["epsilon"] == 0.3
        assert payload["config"]["sizes"] == [64, 128]

    def test_save_json(self, config, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_json(str(path), config, sweep)
        loaded = json.loads(path.read_text())
        assert loaded["points"]["geographic"][0]["n"] == 64


class TestMarkdown:
    def test_contains_table_and_slope(self, config, sweep):
        text = render_markdown(config, sweep)
        assert "| n | geographic |" in text
        assert "| 64 | 1,000 |" in text
        # slope of 1000->2800 over 64->128 is log2(2.8) ≈ 1.485
        assert "1.485" in text

    def test_missing_points_render_dash(self, config):
        sweep = {"geographic": [ScalingPoint("geographic", 64, 10.0, 0.0, 1.0, 1)]}
        text = render_markdown(config, sweep)
        assert "—" in text
        assert "n/a" in text
