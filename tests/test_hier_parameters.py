"""Unit tests for repro.gossip.hierarchical.parameters."""

import math

import pytest

from repro.gossip.hierarchical import (
    AccuracySchedule,
    ProtocolParameters,
    latency_schedule,
)


class TestAccuracySchedule:
    def test_paper_epsilon_recurrence(self):
        # ε_{r+1} = ε_r / (25 n^{7/2+a})
        schedule = AccuracySchedule(n=1000, epsilon0=0.1, delta0=0.01, a=1.0)
        shrink = 25 * 1000 ** (3.5 + 1.0)
        assert schedule.epsilon(1) == pytest.approx(0.1 / shrink)
        assert schedule.epsilon(2) == pytest.approx(0.1 / shrink**2)

    def test_paper_delta_recurrence(self):
        # δ_{r+1} = δ_r / n^{2 a r}
        schedule = AccuracySchedule(n=100, epsilon0=0.1, delta0=0.01, a=1.0)
        for r in range(4):
            assert schedule.delta(r + 1) == pytest.approx(
                schedule.delta(r) / 100 ** (2.0 * r)
            )

    def test_practical_mode_geometric(self):
        schedule = AccuracySchedule(
            n=100, epsilon0=0.2, delta0=0.01, mode="practical", decay=0.5
        )
        assert schedule.epsilon(0) == 0.2
        assert schedule.epsilon(2) == pytest.approx(0.05)
        assert schedule.delta(3) == 0.01

    def test_epsilon_decreases_with_depth(self):
        for mode in ("paper", "practical"):
            schedule = AccuracySchedule(
                n=64, epsilon0=0.3, delta0=0.1, mode=mode
            )
            assert schedule.epsilon(0) > schedule.epsilon(1) > schedule.epsilon(2)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            AccuracySchedule(n=1, epsilon0=0.1, delta0=0.1)
        with pytest.raises(ValueError):
            AccuracySchedule(n=10, epsilon0=0.0, delta0=0.1)
        with pytest.raises(ValueError):
            AccuracySchedule(n=10, epsilon0=0.1, delta0=1.5)
        with pytest.raises(ValueError):
            AccuracySchedule(n=10, epsilon0=0.1, delta0=0.1, mode="magic")
        with pytest.raises(ValueError):
            AccuracySchedule(n=10, epsilon0=0.1, delta0=0.1, decay=1.0)
        schedule = AccuracySchedule(n=10, epsilon0=0.1, delta0=0.1)
        with pytest.raises(ValueError):
            schedule.epsilon(-1)
        with pytest.raises(ValueError):
            schedule.delta(-1)


class TestLatencySchedule:
    def test_backward_recurrence(self):
        n, factors = 4096, [64, 4]
        schedule = AccuracySchedule(n=n, epsilon0=0.1, delta0=1e-3, a=1.0)
        times = latency_schedule(n, factors, schedule)
        assert len(times) == 3
        # time(r-1) = time(r) * n^a * (log(n_r/ε_r) log(1/δ_r))^16
        for depth in (1, 0):
            eps = schedule.epsilon(depth + 1)
            delta = schedule.delta(depth + 1)
            n_r = factors[depth]
            block = (math.log(n_r / eps) * math.log(1 / delta)) ** 16
            assert times[depth] == pytest.approx(
                times[depth + 1] * n**1.0 * block, rel=1e-9
            )

    def test_latencies_grow_towards_root(self):
        schedule = AccuracySchedule(n=1024, epsilon0=0.1, delta0=1e-2, a=0.5)
        times = latency_schedule(1024, [36, 4], schedule)
        assert times[0] > times[1] > times[2] > 0

    def test_paper_magnitudes_are_astronomical(self):
        # The documented reason simulations use practical schedules (D5).
        schedule = AccuracySchedule(n=1024, epsilon0=0.1, delta0=1e-2, a=1.0)
        times = latency_schedule(1024, [36, 4], schedule)
        assert times[0] > 1e40


class TestProtocolParameters:
    def test_paper_factory(self):
        params = ProtocolParameters.paper(1000, epsilon=0.1, a=1.0)
        assert params.schedule.mode == "paper"
        assert params.far_rate_separation == pytest.approx(1000.0)
        assert params.schedule.delta0 == pytest.approx(1e-3)

    def test_practical_factory(self):
        params = ProtocolParameters.practical(1000, epsilon=0.2, separation=7.0)
        assert params.schedule.mode == "practical"
        assert params.far_rate_separation == 7.0

    def test_affine_gain_is_two_fifths(self):
        params = ProtocolParameters.practical(100, 0.1)
        assert params.affine_gain == pytest.approx(0.4)

    def test_near_ticks_quadratic(self):
        params = ProtocolParameters.practical(1000, 0.1)
        small = params.near_ticks(8, depth=1)
        large = params.near_ticks(16, depth=1)
        # Doubling occupancy should roughly quadruple the ticks.
        assert 3.0 < large / small < 5.5

    def test_near_ticks_trivial_square(self):
        params = ProtocolParameters.practical(1000, 0.1)
        assert params.near_ticks(1, depth=1) == 0

    def test_exchange_count_shape(self):
        params = ProtocolParameters.practical(1000, 0.1)
        assert params.exchange_count(1, 0) == 0
        four = params.exchange_count(4, 0)
        sixteen = params.exchange_count(16, 0)
        assert sixteen > four > 0

    def test_validation(self):
        schedule = AccuracySchedule(n=10, epsilon0=0.1, delta0=0.1)
        with pytest.raises(ValueError):
            ProtocolParameters(schedule=schedule, affine_gain=0.6)
        with pytest.raises(ValueError):
            ProtocolParameters(schedule=schedule, far_rate_separation=0.5)
        with pytest.raises(ValueError):
            ProtocolParameters(schedule=schedule, near_multiplier=0.0)
