"""Unit tests for repro.metrics."""

import numpy as np
import pytest

from repro.metrics import (
    ConvergenceTrace,
    consensus_value,
    deviation_norm,
    max_deviation,
    normalized_error,
    variance,
)


class TestErrorMetrics:
    def test_consensus_value(self):
        assert consensus_value(np.array([1.0, 2.0, 3.0])) == 2.0

    def test_deviation_norm_at_consensus_is_zero(self):
        assert deviation_norm(np.full(5, 3.7)) == 0.0

    def test_deviation_norm_known_value(self):
        # values [0, 2]: mean 1, deviations [-1, 1], norm sqrt(2).
        assert deviation_norm(np.array([0.0, 2.0])) == pytest.approx(np.sqrt(2))

    def test_deviation_norm_explicit_mean(self):
        values = np.array([1.0, 1.0])
        assert deviation_norm(values, mean=0.0) == pytest.approx(np.sqrt(2))

    def test_normalized_error_starts_at_one(self):
        x0 = np.array([4.0, -2.0, 1.0])
        assert normalized_error(x0, x0) == pytest.approx(1.0)

    def test_normalized_error_zero_at_consensus(self):
        x0 = np.array([4.0, -2.0, 1.0])
        consensus = np.full(3, x0.mean())
        assert normalized_error(consensus, x0) == pytest.approx(0.0)

    def test_normalized_error_degenerate_input(self):
        x0 = np.full(4, 2.0)
        assert normalized_error(x0, x0) == 0.0

    def test_normalized_error_detects_mass_leak(self):
        # A protocol that drifted the mean shows positive error forever.
        x0 = np.array([0.0, 2.0])
        leaked = np.array([5.0, 5.0])  # consensus, but on the wrong value
        assert normalized_error(leaked, x0) > 1.0

    def test_variance(self):
        assert variance(np.array([0.0, 2.0])) == pytest.approx(1.0)

    def test_max_deviation(self):
        assert max_deviation(np.array([0.0, 1.0, 10.0])) == pytest.approx(
            10.0 - 11.0 / 3.0
        )


class TestConvergenceTrace:
    def test_records_first_point_always(self):
        trace = ConvergenceTrace()
        assert trace.record(0, 0, 1.0)
        assert len(trace) == 1

    def test_thinning_drops_close_points(self):
        trace = ConvergenceTrace(thinning=0.5)
        trace.record(100, 1, 0.9)
        assert not trace.record(101, 2, 0.8)  # within 50% growth
        assert trace.record(200, 3, 0.7)

    def test_zero_thinning_keeps_everything(self):
        trace = ConvergenceTrace(thinning=0.0)
        for t in range(10):
            assert trace.record(t, t, 1.0 / (t + 1))
        assert len(trace) == 10

    def test_force_record_bypasses_thinning(self):
        trace = ConvergenceTrace(thinning=10.0)
        trace.record(100, 1, 0.9)
        trace.force_record(100, 2, 0.8)
        assert len(trace) == 2

    def test_final_properties(self):
        trace = ConvergenceTrace()
        trace.force_record(10, 1, 0.5)
        trace.force_record(20, 2, 0.25)
        assert trace.final_error == 0.25
        assert trace.final_transmissions == 20

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            _ = ConvergenceTrace().final_error

    def test_transmissions_to_reach(self):
        trace = ConvergenceTrace()
        trace.force_record(10, 1, 0.5)
        trace.force_record(20, 2, 0.25)
        trace.force_record(30, 3, 0.1)
        assert trace.transmissions_to_reach(0.3) == 20
        assert trace.transmissions_to_reach(0.01) is None

    def test_as_arrays(self):
        trace = ConvergenceTrace()
        trace.force_record(1, 1, 0.5)
        trace.force_record(2, 2, 0.4)
        tx, err = trace.as_arrays()
        np.testing.assert_array_equal(tx, [1, 2])
        np.testing.assert_allclose(err, [0.5, 0.4])

    def test_decay_rate_of_perfect_exponential(self):
        trace = ConvergenceTrace(thinning=0.0)
        rate = 0.01
        for t in range(0, 500, 10):
            trace.force_record(t, t, float(np.exp(-rate * t)))
        assert trace.decay_rate_per_transmission() == pytest.approx(rate)

    def test_decay_rate_needs_two_points(self):
        trace = ConvergenceTrace()
        trace.force_record(0, 0, 1.0)
        with pytest.raises(ValueError):
            trace.decay_rate_per_transmission()
