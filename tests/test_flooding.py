"""Unit tests for repro.routing.flooding."""

import numpy as np
import pytest

from repro.graphs import RandomGeometricGraph, grid_graph_adjacency
from repro.routing import TransmissionCounter, flood


class TestFlood:
    def test_reaches_all_members_on_connected_subset(self):
        adj = grid_graph_adjacency(4, 4)
        members = range(16)
        reached = flood(adj, source=0, members=members)
        assert sorted(reached) == list(range(16))

    def test_source_first(self):
        adj = grid_graph_adjacency(3, 3)
        assert flood(adj, source=4, members=range(9))[0] == 4

    def test_respects_member_boundary(self):
        # Members are the left 2 columns of a 3x3 grid; the right column
        # must not be reached even though edges exist.
        adj = grid_graph_adjacency(3, 3)
        members = [0, 1, 3, 4, 6, 7]
        reached = flood(adj, source=0, members=members)
        assert set(reached) <= set(members)
        assert sorted(reached) == members

    def test_unreachable_members_are_skipped(self):
        # Members {0, 8} in a 3x3 grid with only corners as members:
        # no intra-member path, so the far corner is not reached.
        adj = grid_graph_adjacency(3, 3)
        reached = flood(adj, source=0, members=[0, 8])
        assert reached == [0]

    def test_cost_equals_reached_count(self):
        adj = grid_graph_adjacency(4, 4)
        counter = TransmissionCounter()
        reached = flood(adj, source=0, members=range(16), counter=counter)
        assert counter.total == len(reached) == 16
        assert counter.by_category["flood"] == 16

    def test_rejects_external_source(self):
        adj = grid_graph_adjacency(2, 2)
        with pytest.raises(ValueError):
            flood(adj, source=3, members=[0, 1])

    def test_flood_square_of_rgg(self):
        # Flooding the nodes of a subsquare reaches all of them when the
        # square's intra-graph is connected (typical at generous radius).
        rng = np.random.default_rng(71)
        graph = RandomGeometricGraph.sample_connected(300, rng, radius_constant=4.0)
        in_square = np.nonzero(
            (graph.positions[:, 0] < 0.5) & (graph.positions[:, 1] < 0.5)
        )[0]
        source = int(in_square[0])
        reached = flood(graph.neighbors, source, in_square.tolist())
        # Most of the square reachable; all reached nodes are members.
        assert set(reached) <= set(in_square.tolist())
        assert len(reached) >= 0.9 * len(in_square)
