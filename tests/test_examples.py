"""Smoke tests: the example scripts compile and the quickstart runs."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


class TestExamples:
    def test_examples_directory_populated(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3, "the paper repo promises at least 3 examples"
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    @pytest.mark.parametrize(
        "script",
        sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_compiles(self, script):
        py_compile.compile(str(EXAMPLES_DIR / script), doraise=True)

    def test_quickstart_runs_end_to_end(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "128"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "transmissions" in completed.stdout
        assert "Cheapest at this size" in completed.stdout

    def test_quickstart_sweep_runs_and_resumes(self, tmp_path):
        """The docs/quickstart.md tutorial script: sweep, then resume."""
        command = [
            sys.executable,
            str(EXAMPLES_DIR / "quickstart_sweep.py"),
            str(tmp_path),
            "48,64",
        ]
        first = subprocess.run(
            command, capture_output=True, text=True, timeout=300
        )
        assert first.returncode == 0, first.stderr
        assert "path-averaging" in first.stdout
        assert "0/8 cells already on disk" in first.stdout
        second = subprocess.run(
            command, capture_output=True, text=True, timeout=300
        )
        assert second.returncode == 0, second.stderr
        assert "8/8 cells already on disk" in second.stdout
