"""Unit tests for repro.graphs.rgg."""

import math

import numpy as np
import pytest

from repro.geometry import pairwise_within, random_points
from repro.graphs import RandomGeometricGraph, connectivity_radius, is_connected


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestConnectivityRadius:
    def test_formula(self):
        assert connectivity_radius(1000, constant=2.0) == pytest.approx(
            math.sqrt(2.0 * math.log(1000) / 1000)
        )

    def test_decreases_with_n(self):
        assert connectivity_radius(10_000) < connectivity_radius(1_000)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            connectivity_radius(1)
        with pytest.raises(ValueError):
            connectivity_radius(100, constant=0.0)


class TestBuild:
    def test_adjacency_matches_brute_force(self, rng):
        pts = random_points(200, rng)
        radius = 0.11
        graph = RandomGeometricGraph.build(pts, radius)
        expected = pairwise_within(pts, radius)
        for i in range(200):
            np.testing.assert_array_equal(
                graph.neighbors[i], np.nonzero(expected[i])[0]
            )

    def test_matches_networkx(self, rng):
        pts = random_points(150, rng)
        radius = 0.15
        graph = RandomGeometricGraph.build(pts, radius)
        import networkx as nx

        reference = nx.random_geometric_graph(150, radius, pos={
            i: tuple(p) for i, p in enumerate(pts)
        })
        ours = graph.to_networkx()
        assert set(ours.edges()) == {tuple(sorted(e)) for e in reference.edges()}

    def test_rejects_bad_radius(self, rng):
        with pytest.raises(ValueError):
            RandomGeometricGraph.build(random_points(10, rng), 0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            RandomGeometricGraph.build(np.zeros((4, 3)), 0.1)

    def test_neighbor_lists_sorted_and_loopless(self, rng):
        graph = RandomGeometricGraph.sample(300, rng)
        for i, adj in enumerate(graph.neighbors):
            assert (np.diff(adj) > 0).all()  # sorted, no duplicates
            assert i not in adj

    def test_adjacency_symmetric(self, rng):
        graph = RandomGeometricGraph.sample(300, rng)
        for i, adj in enumerate(graph.neighbors):
            for j in adj:
                assert i in graph.neighbors[int(j)]


class TestSampling:
    def test_sample_uses_connectivity_radius(self, rng):
        graph = RandomGeometricGraph.sample(500, rng)
        assert graph.radius == pytest.approx(connectivity_radius(500))

    def test_sample_connected_is_connected(self, rng):
        graph = RandomGeometricGraph.sample_connected(200, rng)
        assert is_connected(graph.neighbors)

    def test_sample_connected_exhausts_attempts(self, rng):
        # A radius this small cannot connect 50 random points.
        with pytest.raises(RuntimeError):
            RandomGeometricGraph.sample_connected(
                50, rng, radius=1e-6, max_attempts=3
            )

    def test_expected_degree_scale(self, rng):
        # Mean degree concentrates near n * pi * r^2 (interior nodes).
        n = 2000
        graph = RandomGeometricGraph.sample(n, rng)
        mean_degree = graph.degrees().mean()
        expected = n * math.pi * graph.radius**2
        # Boundary effects lower the mean; accept a broad band.
        assert 0.6 * expected < mean_degree < 1.05 * expected


class TestQueries:
    def test_degree_and_edge_count_consistent(self, rng):
        graph = RandomGeometricGraph.sample(100, rng)
        assert graph.degrees().sum() == 2 * graph.edge_count()
        assert graph.degree(0) == len(graph.neighbors[0])

    def test_are_adjacent(self, rng):
        graph = RandomGeometricGraph.sample_connected(100, rng)
        node = 0
        for j in graph.neighbors[node]:
            assert graph.are_adjacent(node, int(j))

    def test_nearest_node_matches_brute_force(self, rng):
        graph = RandomGeometricGraph.sample(400, rng)
        for _ in range(25):
            q = rng.random(2)
            found = graph.nearest_node(q)
            dists = np.hypot(
                graph.positions[:, 0] - q[0], graph.positions[:, 1] - q[1]
            )
            assert dists[found] == pytest.approx(dists.min())

    def test_isolated_nodes_empty_at_connectivity_radius(self, rng):
        graph = RandomGeometricGraph.sample_connected(300, rng)
        assert graph.isolated_nodes().size == 0

    def test_isolated_nodes_found_at_tiny_radius(self, rng):
        graph = RandomGeometricGraph.sample(100, rng, radius=1e-6)
        assert graph.isolated_nodes().size > 0

    def test_n_property(self, rng):
        assert RandomGeometricGraph.sample(64, rng).n == 64
