"""Multi-field engine tests beyond the golden-trace battery.

Covers the pieces the shared registry cannot express:

* the NumPy reduction-order hazard the column-0 guarantee rests on;
* the metrics helpers (`field_count`, `primary_field`, `column_errors`);
* end-to-end quantile/histogram workloads against exact NumPy answers;
* the per-column scalar fallback (`MultiFieldFallbackWarning`) for
  protocols that never declared multi-field support;
* regressions for the dynamics layer's (n, k) handling — dead-owner
  tick drops and abort-and-charge mass accounting must treat columns
  independently, never silently broadcast.
"""

import warnings

import numpy as np
import pytest

from protocol_equivalence import (
    _FAULTED_SEED,
    _FAULTED_SPEC,
    _GRAPH,
    initial_field_matrix,
    initial_values,
)
from repro.dynamics import DynamicGossip, DynamicSubstrate
from repro.dynamics.overlay import live_node_error
from repro.engine.batching import (
    MultiFieldFallbackWarning,
    ScalarFallbackWarning,
    multifield_capability,
    run_batched,
    split_streams,
)
from repro.experiments.seeds import spawn_rng
from repro.gossip.base import AsynchronousGossip, check_state_shape
from repro.gossip.path_averaging import PathAveragingGossip
from repro.gossip.randomized import RandomizedGossip
from repro.graphs.rgg import RandomGeometricGraph
from repro.metrics.error import (
    column_errors,
    field_count,
    normalized_error,
    primary_field,
)
from repro.routing.cost import TransmissionCounter
from repro.workloads.fields import (
    FIELD_GENERATORS,
    build_field_matrix,
    ensemble_field,
    histogram_edges,
    histogram_indicator_stack,
    quantile_indicator_stack,
    quantile_thresholds,
)


class TestReductionKernels:
    """The column-0 guarantee rests on exact reduction-order identities."""

    @pytest.mark.parametrize("m", [2, 7, 8, 9, 17, 100, 1000, 10000])
    def test_transposed_contiguous_mean_matches_scalar_kernel(self, m):
        """The multi-field route average must reduce each column with the
        exact kernel the scalar path runs — `mean(axis=0)` on the strided
        block does NOT (NumPy accumulates strided axis reductions in a
        different order than contiguous 1-D pairwise summation)."""
        block = np.random.default_rng(m).normal(size=(m, 5))
        scalar = np.array(
            [np.ascontiguousarray(block[:, j]).mean() for j in range(5)]
        )
        multi = np.ascontiguousarray(block.T).mean(axis=1)
        np.testing.assert_array_equal(multi, scalar)

    def test_path_averaging_route_mean_is_columnwise_exact(self):
        """A long synthetic route averaged under (n, k) state: column 0
        must equal the scalar update bit for bit, other columns likewise."""
        protocol = PathAveragingGossip(_GRAPH, target_mode="uniform")
        path = tuple(range(30))  # longer than NumPy's 8-element unroll
        scalar_columns = []
        matrix = initial_field_matrix(6)
        for j in range(6):
            column = np.ascontiguousarray(matrix[:, j])
            protocol._average_route(path, len(path) - 1, column, TransmissionCounter())
            scalar_columns.append(column)
        protocol._average_route(
            path, len(path) - 1, matrix, TransmissionCounter()
        )
        np.testing.assert_array_equal(matrix, np.column_stack(scalar_columns))


class TestMetricsHelpers:
    def test_field_count(self):
        assert field_count(np.zeros(5)) == 1
        assert field_count(np.zeros((5, 3))) == 3
        with pytest.raises(ValueError):
            field_count(np.zeros((5, 0)))
        with pytest.raises(ValueError):
            field_count(np.zeros((2, 2, 2)))

    def test_primary_field_scalar_state_is_untouched(self):
        values = np.arange(4.0)
        assert primary_field(values) is values

    def test_primary_field_matrix_state_is_contiguous_column0(self):
        matrix = np.random.default_rng(3).normal(size=(10, 4))
        primary = primary_field(matrix)
        np.testing.assert_array_equal(primary, matrix[:, 0])
        assert primary.flags["C_CONTIGUOUS"]

    def test_normalized_error_matrix_reduces_to_primary(self):
        matrix = initial_field_matrix(5)
        shifted = matrix * 0.5
        assert normalized_error(shifted, matrix) == normalized_error(
            np.ascontiguousarray(shifted[:, 0]),
            np.ascontiguousarray(matrix[:, 0]),
        )

    def test_column_errors_column0_matches_scalar_metric(self):
        matrix = initial_field_matrix(5)
        drifted = matrix * np.linspace(0.1, 0.9, 5)
        errors = column_errors(drifted, matrix)
        assert errors.shape == (5,)
        for j in range(5):
            assert errors[j] == normalized_error(
                np.ascontiguousarray(drifted[:, j]),
                np.ascontiguousarray(matrix[:, j]),
            )

    def test_column_errors_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            column_errors(np.zeros((4, 2)), np.zeros((4, 3)))

    def test_normalized_error_rejects_mixed_layouts(self):
        """Comparing one sliced column against the full stored matrix is
        an easy slip with the (n, k) API; flattening silently would
        return a plausible-looking wrong number."""
        matrix = initial_field_matrix(3)
        with pytest.raises(ValueError, match="shapes differ"):
            normalized_error(matrix[:, 1], matrix)
        with pytest.raises(ValueError, match="shapes differ"):
            normalized_error(matrix, np.ascontiguousarray(matrix[:, 0]))

    def test_check_state_shape_rejects_bad_layouts(self):
        assert check_state_shape(np.zeros(6), 6).shape == (6,)
        assert check_state_shape(np.zeros((6, 2)), 6).shape == (6, 2)
        for bad in (np.zeros(5), np.zeros((5, 2)), np.zeros((6, 0)),
                    np.zeros((6, 2, 2))):
            with pytest.raises(ValueError):
                check_state_shape(bad, 6)


class TestWorkloadCorrectness:
    """End-to-end: indicator stacks converge to exact NumPy answers."""

    @pytest.fixture(scope="class")
    def small_instance(self):
        graph = RandomGeometricGraph.sample_connected(
            24, np.random.default_rng(11), radius_constant=3.0
        )
        values = np.random.default_rng(12).normal(size=24)
        return graph, values

    def test_quantile_stack_columns_average_to_exact_cdf(self, small_instance):
        graph, values = small_instance
        k = 6
        stack = quantile_indicator_stack(values, k=k)
        thresholds = quantile_thresholds(values, k - 1)
        result = run_batched(
            RandomizedGossip(graph.neighbors),
            stack,
            0.02,
            np.random.default_rng(77),
            check_stride=4,
        )
        assert result.converged
        for j, threshold in enumerate(thresholds, start=1):
            exact = float((values <= threshold).mean())  # the NumPy answer
            assert np.mean(result.values[:, j]) == pytest.approx(exact, abs=1e-12)
            # Every node's estimate sits near the exact CDF value: the
            # indicator columns have unit initial scale, so eps=0.02 of
            # ||x(0)|| bounds each node's deviation tightly.
            assert np.max(np.abs(result.values[:, j] - exact)) < 0.1

    def test_histogram_stack_columns_average_to_exact_bins(self, small_instance):
        graph, values = small_instance
        k = 5
        stack = histogram_indicator_stack(values, k=k)
        edges = histogram_edges(values, k - 1)
        exact = np.histogram(values, bins=edges)[0] / len(values)
        result = run_batched(
            RandomizedGossip(graph.neighbors),
            stack,
            0.02,
            np.random.default_rng(78),
            check_stride=4,
        )
        assert result.converged
        for j in range(k - 1):
            assert np.mean(result.values[:, j + 1]) == pytest.approx(
                exact[j], abs=1e-12
            )
            assert np.max(np.abs(result.values[:, j + 1] - exact[j])) < 0.1

    def test_histogram_partition_is_numpy_histogram(self, small_instance):
        """The indicator columns partition the sensors exactly as
        numpy.histogram does (every sensor in exactly one bin)."""
        _, values = small_instance
        stack = histogram_indicator_stack(values, k=7)
        counts = stack[:, 1:].sum(axis=0)
        np.testing.assert_array_equal(
            counts, np.histogram(values, bins=histogram_edges(values, 6))[0]
        )
        np.testing.assert_array_equal(stack[:, 1:].sum(axis=1), 1.0)

    def test_quantile_indicators_match_numpy_comparison(self, small_instance):
        _, values = small_instance
        stack = quantile_indicator_stack(values, k=4)
        for j, threshold in enumerate(quantile_thresholds(values, 3), start=1):
            np.testing.assert_array_equal(
                stack[:, j], (values <= threshold).astype(float)
            )

    def test_ensemble_column0_is_the_scalar_generator_draw(self):
        positions = np.random.default_rng(1).random((40, 2))
        for name in FIELD_GENERATORS:
            stacked = ensemble_field(
                positions, np.random.default_rng(5), base=name, k=3
            )
            scalar = FIELD_GENERATORS[name](positions, np.random.default_rng(5))
            np.testing.assert_array_equal(stacked[:, 0], scalar, err_msg=name)

    def test_build_field_matrix_validation(self):
        positions = np.random.default_rng(1).random((8, 2))
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError, match="workload"):
            build_field_matrix("no-such", "random", positions, rng, 4)
        with pytest.raises(ValueError, match="field"):
            build_field_matrix("ensemble", "no-such", positions, rng, 4)
        with pytest.raises(ValueError):
            build_field_matrix("ensemble", "random", positions, rng, 0)

    def test_constant_field_degenerates_gracefully(self):
        constant = np.full(10, 3.0)
        stack = quantile_indicator_stack(constant, k=4)
        assert stack.shape == (10, 4)
        np.testing.assert_array_equal(stack[:, 1:], 1.0)  # all ≤ the value
        hist = histogram_indicator_stack(constant, k=4)
        np.testing.assert_array_equal(hist[:, -1], 1.0)  # closed last bin


class UnauditedGossip(AsynchronousGossip):
    """A scalar-era protocol: never declared multi-field support."""

    name = "unaudited"

    def __init__(self, neighbors):
        super().__init__(len(neighbors))
        self.neighbors = neighbors

    def tick(self, node, values, counter, rng):
        adjacency = self.neighbors[node]
        if adjacency.size == 0:
            return
        partner = int(adjacency[rng.integers(adjacency.size)])
        average = 0.5 * (values[node] + values[partner])
        values[node] = average
        values[partner] = average
        counter.charge(2, "near")


class TestMultiFieldFallback:
    def test_capability_classification(self):
        assert multifield_capability(RandomizedGossip) == "native"
        assert multifield_capability(UnauditedGossip) == "per-column"
        # DynamicGossip propagates the wrapped protocol's capability as
        # an instance attribute — both directions.
        substrate = DynamicSubstrate(_GRAPH, _FAULTED_SPEC, seed=_FAULTED_SEED)
        native = DynamicGossip(RandomizedGossip(substrate.neighbors), substrate)
        assert multifield_capability(native) == "native"
        substrate2 = DynamicSubstrate(_GRAPH, _FAULTED_SPEC, seed=_FAULTED_SEED)
        unaudited = DynamicGossip(UnauditedGossip(substrate2.neighbors), substrate2)
        assert multifield_capability(unaudited) == "per-column"

    def test_fallback_warns_with_actionable_message(self):
        """The message must name the attribute to set, the docs page with
        the audit checklist, and the registry-wide capability reporter."""
        with pytest.warns(MultiFieldFallbackWarning) as captured:
            run_batched(
                UnauditedGossip(_GRAPH.neighbors),
                initial_field_matrix(3),
                0.25,
                spawn_rng(7, "fallback"),
            )
        message = str(captured[0].message)
        assert "supports_multifield" in message
        assert "docs/workloads.md" in message
        assert "multifield_support" in message
        assert "scalar passes" in message

    def test_fallback_column0_is_bit_identical_to_scalar_run(self):
        scalar = run_batched(
            UnauditedGossip(_GRAPH.neighbors),
            initial_values(),
            0.25,
            spawn_rng(7, "fallback"),
        )
        with pytest.warns(MultiFieldFallbackWarning):
            multi = run_batched(
                UnauditedGossip(_GRAPH.neighbors),
                initial_field_matrix(3),
                0.25,
                spawn_rng(7, "fallback"),
            )
        np.testing.assert_array_equal(multi.values[:, 0], scalar.values)
        assert multi.error == scalar.error
        assert multi.converged
        # Serial semantics: the ticks and transmissions accumulate the
        # per-column passes — the cost the native path amortizes away.
        assert multi.ticks > scalar.ticks
        assert multi.column_errors is not None and len(multi.column_errors) == 3
        assert all(err <= 0.25 for err in multi.column_errors)

    def test_fallback_column0_bit_identical_at_stride_gt_one(self):
        """Regression: the fallback must spawn secondary-column streams
        *after* column 0's run — a strided run spawns its own children
        from the caller's rng, and pre-spawning would shift their seed
        indices away from a plain scalar run's."""
        scalar = run_batched(
            UnauditedGossip(_GRAPH.neighbors),
            initial_values(),
            0.25,
            spawn_rng(7, "fallback"),
            check_stride=4,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ScalarFallbackWarning)
            with pytest.warns(MultiFieldFallbackWarning):
                multi = run_batched(
                    UnauditedGossip(_GRAPH.neighbors),
                    initial_field_matrix(3),
                    0.25,
                    spawn_rng(7, "fallback"),
                    check_stride=4,
                )
        np.testing.assert_array_equal(multi.values[:, 0], scalar.values)

    def test_legacy_run_entry_rejects_matrix_on_unaudited_protocols(self):
        """The public run() loop has no fallback machinery, so it must
        refuse matrix state outright for protocols without multi-field
        support — before this engine existed that was a shape error, and
        silently admitting the matrix would let scalar assumptions mix
        unrelated columns."""
        with pytest.raises(TypeError, match="supports_multifield"):
            UnauditedGossip(_GRAPH.neighbors).run(
                initial_field_matrix(3), 0.25, spawn_rng(7, "legacy")
            )
        # Scalar state through the same entry still runs.
        result = UnauditedGossip(_GRAPH.neighbors).run(
            initial_values(), 0.25, spawn_rng(7, "legacy")
        )
        assert result.converged

    def test_stateful_wrapper_without_support_is_rejected(self):
        """A DynamicGossip wrapping a non-multifield inner cannot take
        the per-column fallback: its epoch clock and loss streams advance
        across runs, so columns 1..k-1 would replay a spent fault
        timeline.  The engine must refuse, not silently corrupt."""
        substrate = DynamicSubstrate(_GRAPH, _FAULTED_SPEC, seed=_FAULTED_SEED)
        wrapper = DynamicGossip(UnauditedGossip(substrate.neighbors), substrate)
        with pytest.raises(TypeError, match="multifield_fallback_safe"):
            run_batched(
                wrapper,
                initial_field_matrix(3),
                0.25,
                spawn_rng(7, "fallback"),
            )
        # Scalar state on the same wrapper still runs fine.
        result = run_batched(
            wrapper, initial_values(), 0.25, spawn_rng(7, "fallback")
        )
        assert result.error < 1.0

    def test_native_protocols_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", MultiFieldFallbackWarning)
            run_batched(
                RandomizedGossip(_GRAPH.neighbors),
                initial_field_matrix(3),
                0.25,
                spawn_rng(7, "fallback"),
            )


class TestHierarchicalPerColumn:
    """The hierarchical executor's multi-field story: per-column by design.

    Its adaptive round structure (settle checks, exchange counts, `Far`
    retries with β possibly > 1) is an oracle over one field — riding
    secondary columns through it unchecked made them *diverge* (final
    error above the initial deviation) while the run reported converged.
    The protocol therefore refuses matrix state at its own `run` entry,
    and the engine routes it through the per-column fallback, where every
    column gets its own adaptive execution and genuinely converges.
    """

    def _matrix(self, k=3):
        return initial_field_matrix(k)

    def test_run_entry_rejects_matrix_state(self):
        from repro.gossip.hierarchical.rounds import HierarchicalGossip

        with pytest.raises(TypeError, match="per-column"):
            HierarchicalGossip(_GRAPH).run(
                self._matrix(), 0.25, spawn_rng(7, "hier")
            )

    def test_engine_fallback_converges_every_column(self):
        """The regression that motivated the capability flip: secondary
        columns must END at or below ε, not above their initial error."""
        from repro.gossip.hierarchical.rounds import HierarchicalGossip

        with pytest.warns(MultiFieldFallbackWarning):
            result = run_batched(
                HierarchicalGossip(_GRAPH),
                self._matrix(),
                0.25,
                spawn_rng(7, "hier"),
            )
        assert result.converged
        assert result.column_errors is not None
        assert all(error <= 0.25 for error in result.column_errors)

    def test_by_design_warning_never_advises_declaring_support(self):
        """hierarchical's fallback warning must say this is by design —
        advising the user to flip supports_multifield would reintroduce
        the secondary-column divergence."""
        from repro.gossip.hierarchical.rounds import HierarchicalGossip

        with pytest.warns(MultiFieldFallbackWarning) as captured:
            run_batched(
                HierarchicalGossip(_GRAPH),
                self._matrix(),
                0.25,
                spawn_rng(7, "hier"),
            )
        message = str(captured[0].message)
        assert "by design" in message
        assert "oracle over one field" in message
        assert "declare supports_multifield = True" not in message

    def test_engine_fallback_column0_matches_scalar_run(self):
        from repro.gossip.hierarchical.rounds import HierarchicalGossip

        scalar = HierarchicalGossip(_GRAPH).run(
            initial_values(), 0.25, spawn_rng(7, "hier")
        )
        with pytest.warns(MultiFieldFallbackWarning):
            multi = run_batched(
                HierarchicalGossip(_GRAPH),
                self._matrix(),
                0.25,
                spawn_rng(7, "hier"),
            )
        np.testing.assert_array_equal(multi.values[:, 0], scalar.values)
        assert multi.error == scalar.error


class TestMultiFieldSweep:
    def test_serial_and_parallel_multifield_sweeps_identical(self):
        """Worker-count invariance survives (n, k) cells — field_errors
        cross process boundaries intact."""
        from repro.engine.executor import run_sweep_records
        from repro.experiments import ExperimentConfig

        config = ExperimentConfig(
            sizes=(24, 32),
            epsilon=0.3,
            trials=1,
            algorithms=("randomized", "geographic"),
            root_seed=17,
            fields=4,
            workload="histogram",
        )
        serial = run_sweep_records(config)
        parallel = run_sweep_records(config, workers=2)
        assert serial == parallel
        for record in serial.values():
            assert record.field_errors is not None
            assert len(record.field_errors) == 4
            assert record.field_errors[0] == record.error


class TestFaultedMultiFieldRegressions:
    """The dynamics layer must treat (n, k) columns independently."""

    def _faulted(self, k):
        substrate = DynamicSubstrate(_GRAPH, _FAULTED_SPEC, seed=_FAULTED_SEED)
        protocol = DynamicGossip(
            PathAveragingGossip(substrate, target_mode="uniform"), substrate
        )
        return substrate, protocol

    def test_dead_owner_drops_and_aborts_conserve_every_column(self):
        """Churn masking plus abort-and-charge under loss: the sum over
        *all* nodes (live + frozen) must be invariant per column."""
        substrate, protocol = self._faulted(5)
        initial = initial_field_matrix(5)
        values = initial.copy()
        counter = TransmissionCounter()
        owner_rng, protocol_rng = split_streams(np.random.default_rng([3, 9]))
        for _ in range(12):
            owners = owner_rng.integers(protocol.n, size=200)
            protocol.tick_block(owners, values, counter, protocol_rng)
        assert protocol.wasted_ticks > 0  # churn actually dropped owners
        assert protocol.aborted_routes > 0  # loss actually severed routes
        np.testing.assert_allclose(
            values.sum(axis=0), initial.sum(axis=0), rtol=0, atol=1e-9
        )

    def test_live_node_error_reduces_matrix_to_primary_field(self):
        values = initial_field_matrix(4)
        drifted = values * 0.25
        live = np.ones(len(values), dtype=bool)
        live[::3] = False
        matrix_error = live_node_error(drifted, values, live)
        scalar_error = live_node_error(
            np.ascontiguousarray(drifted[:, 0]),
            np.ascontiguousarray(values[:, 0]),
            live,
        )
        assert matrix_error == scalar_error

    def test_faulted_fault_metrics_accept_matrix_state(self):
        _, protocol = self._faulted(4)
        initial = initial_field_matrix(4)
        result = run_batched(
            protocol, initial, 0.3, spawn_rng(5, "faulted-multi")
        )
        metrics = protocol.fault_metrics(result.values, result.initial_values)
        assert 0.0 <= metrics["live_fraction"] <= 1.0
        assert np.isfinite(metrics["live_node_error"])


class TestFallbackTelemetry:
    """Per-column fallback cells annotate their k-fold counter inflation.

    ``_run_per_column`` runs k nested engine passes on *one* protocol
    instance, so cumulative counters (route-cache hits/misses) come out
    k-fold inflated relative to a single run.  Rather than resetting
    state mid-cell, the record carries ``multifield_fallback_runs`` so a
    reader can normalise — this test pins that contract.
    """

    def test_fallback_cells_annotate_run_count(self):
        from repro.engine.executor import run_sweep_records
        from repro.experiments import ExperimentConfig

        fields = 3
        config = ExperimentConfig(
            sizes=(24,),
            trials=1,
            epsilon=0.3,
            algorithms=("hierarchical", "randomized"),
            fields=fields,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            records = run_sweep_records(config)
        fallback = records[("hierarchical", 24, 0)]
        assert fallback.telemetry["multifield_fallback"] == 1.0
        assert fallback.telemetry["multifield_fallback_runs"] == float(fields)
        native = records[("randomized", 24, 0)]
        assert native.telemetry["multifield_fallback"] == 0.0
        assert "multifield_fallback_runs" not in native.telemetry
