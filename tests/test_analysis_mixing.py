"""Unit tests for repro.analysis.mixing."""

import numpy as np
import pytest

from repro.analysis import (
    averaging_time_bound,
    gossip_averaging_matrix,
    random_walk_matrix,
    second_eigenvalue,
    spectral_gap,
)
from repro.graphs import (
    RandomGeometricGraph,
    complete_graph_adjacency,
    grid_graph_adjacency,
    ring_graph_adjacency,
)


class TestRandomWalkMatrix:
    def test_rows_stochastic(self):
        matrix = random_walk_matrix(ring_graph_adjacency(10))
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_isolated_node_self_loop(self):
        neighbors = [np.array([], dtype=np.int64)]
        matrix = random_walk_matrix(neighbors)
        assert matrix[0, 0] == 1.0

    def test_ring_walk_values(self):
        matrix = random_walk_matrix(ring_graph_adjacency(6))
        assert matrix[0, 1] == pytest.approx(0.5)
        assert matrix[0, 5] == pytest.approx(0.5)
        assert matrix[0, 0] == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            random_walk_matrix([])


class TestGossipAveragingMatrix:
    def test_symmetric_doubly_stochastic(self):
        matrix = gossip_averaging_matrix(ring_graph_adjacency(8))
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)
        np.testing.assert_allclose(matrix.sum(axis=0), 1.0)

    def test_preserves_consensus(self):
        matrix = gossip_averaging_matrix(grid_graph_adjacency(3, 3))
        ones = np.ones(9)
        np.testing.assert_allclose(matrix @ ones, ones)

    def test_complete_graph_eigenvalue(self):
        # Boyd et al.: on K_n, λ₂(W̄) = 1 − 1/(n−1)·(…) — in this exact
        # construction λ₂ = 1 − 1/(n−1) for the natural uniform choice.
        n = 12
        lam = second_eigenvalue(gossip_averaging_matrix(complete_graph_adjacency(n)))
        assert lam == pytest.approx(1.0 - 1.0 / (n - 1), rel=1e-9)


class TestSpectralGap:
    def test_complete_beats_ring(self):
        n = 24
        assert spectral_gap(complete_graph_adjacency(n)) > spectral_gap(
            ring_graph_adjacency(n)
        )

    def test_rgg_gap_scales_like_radius_squared(self):
        # 1 − λ₂(W̄) = Θ(r²): doubling the radius should grow the gap
        # by roughly 4x (within broad tolerance).
        rng = np.random.default_rng(43)
        graph_small = RandomGeometricGraph.sample_connected(
            200, rng, radius=0.12
        )
        graph_large = RandomGeometricGraph.build(
            graph_small.positions, radius=0.24
        )
        ratio = spectral_gap(graph_large.neighbors) / spectral_gap(
            graph_small.neighbors
        )
        assert 1.8 < ratio < 9.0

    def test_disconnected_graph_zero_gap(self):
        neighbors = [
            np.array([1]), np.array([0]), np.array([3]), np.array([2]),
        ]
        assert spectral_gap(neighbors) == pytest.approx(0.0, abs=1e-12)


class TestAveragingTimeBound:
    def test_matches_measured_randomized_gossip(self):
        # Boyd: T_ave(ε) ≤ 3 log(1/ε)/log(1/λ₂); measured ticks should be
        # the same order (the bound can be loose by a small factor).
        from repro.gossip import RandomizedGossip

        rng = np.random.default_rng(47)
        graph = RandomGeometricGraph.sample_connected(128, rng, radius_constant=2.5)
        epsilon = 0.05
        bound = averaging_time_bound(graph.neighbors, epsilon)
        x0 = np.random.default_rng(53).normal(size=graph.n)
        result = RandomizedGossip(graph.neighbors).run(
            x0, epsilon, np.random.default_rng(59)
        )
        assert result.converged
        assert result.ticks < 3.0 * bound
        assert result.ticks > bound / 30.0

    def test_monotone_in_epsilon(self):
        adjacency = grid_graph_adjacency(4, 4)
        assert averaging_time_bound(adjacency, 0.01) > averaging_time_bound(
            adjacency, 0.1
        )

    def test_disconnected_graph_infinite(self):
        neighbors = [
            np.array([1]), np.array([0]), np.array([3]), np.array([2]),
        ]
        assert averaging_time_bound(neighbors, 0.1) == np.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            averaging_time_bound(ring_graph_adjacency(5), 1.5)
