"""Shared golden-trace equivalence harness for gossip protocols.

Every protocol that runs under :func:`repro.engine.batching.run_batched`
owes the engine two contracts:

1. **Stride-1 bit-identity** — ``run_batched(check_stride=1)`` must equal
   the legacy scalar loop bit for bit (values, transmissions, ticks,
   error, and every trace point).
2. **Block-size invariance** — at any ``check_stride``, results are a
   pure function of ``(seed, stride)``: the internal ``block_size`` used
   to chunk owner sampling must never leak into the numbers.

Since the multi-field engine, a third contract joins them:

3. **Column-0 bit-identity** — an ``(n, k)`` multi-field run's first
   column must equal the legacy scalar run bit for bit (values, ticks,
   transmissions, error, and every trace point), at stride 1 and at any
   stride; equivalently, column 0 is invariant to ``k`` (k=1 vs k=8
   agree).  All stopping decisions read the primary field only, and all
   protocol randomness is value-independent, so the scalar run replays
   inside every multi-field run.

This module factors those assertions (plus strided determinism) into
reusable helpers and a registry of ready-made protocol cases, so adding a
protocol to the golden suite is one `ProtocolCase` entry — future
protocols get the whole equivalence battery for free by registering here
and parametrizing over :func:`case_names`.  The registry includes fully
faulted cases (churn + link failures + loss on a pinned schedule), so
each contract is exercised through the dynamics layer too.

Not a test module itself (no ``test_`` prefix): imported by
``test_golden_traces.py``, ``test_protocol_properties.py`` and
``test_multifield.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dynamics import DynamicGossip, DynamicSubstrate, FaultSpec
from repro.engine.batching import run_batched
from repro.experiments.seeds import spawn_rng
from repro.gossip.affine import (
    AffineGossipKn,
    PerturbedAffineGossipKn,
    sample_alphas,
)
from repro.gossip.base import GossipRunResult
from repro.gossip.geographic import GeographicGossip
from repro.gossip.hierarchical.rounds import HierarchicalGossip
from repro.gossip.path_averaging import PathAveragingGossip
from repro.gossip.randomized import RandomizedGossip
from repro.gossip.spatial import SpatialGossip
from repro.graphs.rgg import RandomGeometricGraph

#: One shared substrate for every graph-based case: small enough that the
#: full battery runs in seconds, dense enough that routing never voids.
_N = 48
_GRAPH = RandomGeometricGraph.sample_connected(
    _N, np.random.default_rng(20070801), radius_constant=3.0
)
_VALUES = np.random.default_rng(4242).normal(size=_N)
#: Mean-zero (the paper's WLOG): keeps the affine-K_n cases in the
#: regime Lemma 1 covers, so no UncenteredFieldWarning noise in runs.
_VALUES -= _VALUES.mean()
_ALPHAS = sample_alphas(_N, np.random.default_rng(99))


#: A fixed, fully-enabled fault schedule for the faulted golden cases:
#: churn, link failures, and per-hop loss all active, epochs short enough
#: that a 48-node run crosses several boundaries.  The schedule seed is
#: pinned so every factory call realises the identical scenario — the
#: whole equivalence battery (stride-1 bit-identity, block-size
#: invariance, strided determinism) then applies to the dynamics layer.
_FAULTED_SPEC = FaultSpec(
    churn_rate=0.1,
    recover_rate=0.3,
    link_failure_rate=0.1,
    loss_prob=0.08,
    epoch_ticks=64,
)
_FAULTED_SEED = 1312


def _make_faulted():
    substrate = DynamicSubstrate(_GRAPH, _FAULTED_SPEC, seed=_FAULTED_SEED)
    return DynamicGossip(
        PathAveragingGossip(substrate, target_mode="uniform"), substrate
    )


def _make_faulted_randomized():
    substrate = DynamicSubstrate(_GRAPH, _FAULTED_SPEC, seed=_FAULTED_SEED)
    return DynamicGossip(RandomizedGossip(substrate.neighbors), substrate)


@dataclass(frozen=True)
class ProtocolCase:
    """One protocol under test: a fresh-instance factory plus run knobs."""

    name: str
    factory: Callable[[], object]
    epsilon: float = 0.25
    #: Round-based protocols have no tick loop: stride/block contracts do
    #: not apply, only the stride-1 pass-through identity.
    tick_driven: bool = True


CASES: dict[str, ProtocolCase] = {
    case.name: case
    for case in (
        ProtocolCase(
            "randomized", lambda: RandomizedGossip(_GRAPH.neighbors)
        ),
        ProtocolCase(
            "geographic-uniform",
            lambda: GeographicGossip(_GRAPH, target_mode="uniform"),
        ),
        ProtocolCase(
            "geographic-position",
            lambda: GeographicGossip(_GRAPH, target_mode="position"),
        ),
        ProtocolCase(
            "geographic-rejection",
            lambda: GeographicGossip(_GRAPH, target_mode="rejection"),
        ),
        ProtocolCase("spatial", lambda: SpatialGossip(_GRAPH, rho=2.0)),
        ProtocolCase(
            "path-averaging",
            lambda: PathAveragingGossip(_GRAPH, target_mode="uniform"),
        ),
        ProtocolCase(
            "path-averaging-position",
            lambda: PathAveragingGossip(_GRAPH, target_mode="position"),
        ),
        ProtocolCase(
            "affine-kn", lambda: AffineGossipKn(_N, alphas=_ALPHAS)
        ),
        ProtocolCase(
            "affine-kn-perturbed",
            lambda: PerturbedAffineGossipKn(
                _N, noise_bound=1e-4, alphas=_ALPHAS
            ),
        ),
        ProtocolCase(
            "hierarchical",
            lambda: HierarchicalGossip(_GRAPH),
            tick_driven=False,
        ),
        ProtocolCase("path-averaging-faulted", _make_faulted),
        ProtocolCase("randomized-faulted", _make_faulted_randomized),
    )
}


def case_names(tick_driven: bool | None = None) -> list[str]:
    """Registered case names, optionally filtered to tick-driven ones."""
    return [
        name
        for name, case in CASES.items()
        if tick_driven is None or case.tick_driven == tick_driven
    ]


def multifield_native_case_names() -> list[str]:
    """Cases whose protocol carries (n, k) state natively in one pass.

    The hierarchical executor is the deliberate exception — its adaptive
    round structure is an oracle over one field, so matrix state routes
    through the engine's per-column fallback instead (covered by its own
    dedicated tests).
    """
    from repro.engine.batching import multifield_capability

    return [
        name
        for name, case in CASES.items()
        if multifield_capability(case.factory()) == "native"
    ]


def initial_values() -> np.ndarray:
    """The shared field every case starts from (copied per run)."""
    return _VALUES.copy()


def initial_field_matrix(k: int) -> np.ndarray:
    """A deterministic ``(n, k)`` stack whose column 0 is the shared field.

    Secondary columns are independent mean-zero draws from a pinned
    stream (mean-zero keeps every column inside the regime the affine
    K_n cases require, so no ``UncenteredFieldWarning`` noise), scaled
    differently per column so a column-mixing bug cannot cancel out.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    columns = [initial_values()]
    secondary = np.random.default_rng(60203).normal(size=(_N, max(k - 1, 0)))
    for j in range(k - 1):
        column = secondary[:, j] * (1.0 + 0.5 * j)
        columns.append(column - column.mean())
    return np.column_stack(columns)


def assert_results_identical(
    left: GossipRunResult, right: GossipRunResult, context: str = ""
) -> None:
    """Bit-level equality of two run results, traces included."""
    suffix = f" ({context})" if context else ""
    np.testing.assert_array_equal(
        left.values, right.values, err_msg=f"values differ{suffix}"
    )
    assert left.transmissions == right.transmissions, (
        f"transmissions differ{suffix}"
    )
    assert left.ticks == right.ticks, f"ticks differ{suffix}"
    assert left.error == right.error, f"error differs{suffix}"
    assert left.converged == right.converged, f"converged differs{suffix}"
    left_trace = [(p.transmissions, p.ticks, p.error) for p in left.trace.points]
    right_trace = [
        (p.transmissions, p.ticks, p.error) for p in right.trace.points
    ]
    assert left_trace == right_trace, f"trace points differ{suffix}"


def run_engine(
    case: ProtocolCase,
    seed: int,
    check_stride: int,
    block_size: int | None = None,
    fields: int | None = None,
) -> GossipRunResult:
    """One engine run of ``case`` from the shared field, fresh instance.

    ``fields=None`` runs the legacy scalar state; ``fields=k`` runs the
    deterministic ``(n, k)`` stack of :func:`initial_field_matrix` (whose
    column 0 is the scalar field) from the *same* RNG.
    """
    kwargs = {} if block_size is None else {"block_size": block_size}
    state = initial_values() if fields is None else initial_field_matrix(fields)
    return run_batched(
        case.factory(),
        state,
        case.epsilon,
        spawn_rng(seed, "golden", case.name),
        check_stride=check_stride,
        **kwargs,
    )


def assert_stride1_bit_identical(case: ProtocolCase, seed: int = 7) -> None:
    """Contract 1: the stride-1 engine path is the legacy loop, bit for bit."""
    legacy = case.factory().run(
        initial_values(), case.epsilon, spawn_rng(seed, "golden", case.name)
    )
    engine = run_engine(case, seed, check_stride=1)
    assert_results_identical(legacy, engine, f"{case.name}, stride 1 vs legacy")


def assert_block_size_invariant(
    case: ProtocolCase,
    seed: int = 7,
    check_stride: int = 4,
    block_sizes: tuple[int, ...] = (1, 7, 8192),
) -> None:
    """Contract 2: stride-k results depend only on (seed, stride)."""
    reference = run_engine(case, seed, check_stride, block_sizes[0])
    for block_size in block_sizes[1:]:
        other = run_engine(case, seed, check_stride, block_size)
        assert_results_identical(
            reference,
            other,
            f"{case.name}, stride {check_stride}, "
            f"block {block_sizes[0]} vs {block_size}",
        )


def assert_strided_deterministic(
    case: ProtocolCase, seed: int = 7, check_stride: int = 4
) -> None:
    """Same (seed, stride) twice — fresh instances — identical results."""
    first = run_engine(case, seed, check_stride)
    second = run_engine(case, seed, check_stride)
    assert_results_identical(
        first, second, f"{case.name}, stride {check_stride}, repeat run"
    )


# -- multi-field contracts ---------------------------------------------------


def assert_column0_matches(
    scalar: GossipRunResult, multi: GossipRunResult, context: str = ""
) -> None:
    """Contract 3's comparison: the scalar run replays as column 0."""
    suffix = f" ({context})" if context else ""
    assert multi.values.ndim == 2, f"expected a multi-field run{suffix}"
    np.testing.assert_array_equal(
        multi.values[:, 0],
        scalar.values if scalar.values.ndim == 1 else scalar.values[:, 0],
        err_msg=f"column 0 differs from the scalar run{suffix}",
    )
    assert multi.ticks == scalar.ticks, f"ticks differ{suffix}"
    assert multi.transmissions == scalar.transmissions, (
        f"transmissions differ{suffix}"
    )
    assert multi.error == scalar.error, f"primary error differs{suffix}"
    assert multi.converged == scalar.converged, f"converged differs{suffix}"
    assert multi.column_errors is not None, f"missing column errors{suffix}"
    assert multi.column_errors[0] == multi.error, (
        f"column_errors[0] is not the primary error{suffix}"
    )
    multi_trace = [(p.transmissions, p.ticks, p.error) for p in multi.trace.points]
    scalar_trace = [
        (p.transmissions, p.ticks, p.error) for p in scalar.trace.points
    ]
    assert multi_trace == scalar_trace, f"trace points differ{suffix}"


def assert_multifield_column0_bit_identical(
    case: ProtocolCase, k: int = 8, seed: int = 7
) -> None:
    """Contract 3 vs the *legacy scalar loop*: column 0 of a stride-1
    ``(n, k)`` engine run equals ``AsynchronousGossip.run`` bit for bit."""
    legacy = case.factory().run(
        initial_values(), case.epsilon, spawn_rng(seed, "golden", case.name)
    )
    multi = run_engine(case, seed, check_stride=1, fields=k)
    assert_column0_matches(
        legacy, multi, f"{case.name}, k={k} stride 1 vs legacy scalar"
    )


def assert_column0_k_invariant(
    case: ProtocolCase,
    seed: int = 7,
    check_stride: int = 4,
    k_pair: tuple[int, int] = (1, 8),
) -> None:
    """Column 0 is a pure function of (seed, stride) — never of ``k``."""
    low = run_engine(case, seed, check_stride, fields=k_pair[0])
    high = run_engine(case, seed, check_stride, fields=k_pair[1])
    # An (n, 1) matrix must come back as a matrix; collapsing it to (n,)
    # is the regression class this helper exists to catch, so failing
    # here beats silently comparing `high` against itself.
    assert low.values.ndim == 2, (
        f"k={k_pair[0]} matrix state collapsed to shape "
        f"{low.values.shape} ({case.name})"
    )
    assert_column0_matches(
        low,
        high,
        f"{case.name}, stride {check_stride}, k={k_pair[0]} vs k={k_pair[1]}",
    )
    # And the (n, 1) matrix path agrees with the plain scalar path.
    scalar = run_engine(case, seed, check_stride)
    assert_column0_matches(
        scalar,
        low,
        f"{case.name}, stride {check_stride}, scalar vs k={k_pair[0]} matrix",
    )


def assert_multifield_strided_deterministic(
    case: ProtocolCase, k: int = 8, seed: int = 7, check_stride: int = 4
) -> None:
    """Same (seed, stride, k) twice — fresh instances — identical matrices."""
    first = run_engine(case, seed, check_stride, fields=k)
    second = run_engine(case, seed, check_stride, fields=k)
    assert_results_identical(
        first,
        second,
        f"{case.name}, stride {check_stride}, k={k}, repeat run",
    )
    np.testing.assert_array_equal(
        first.column_errors,
        second.column_errors,
        err_msg=f"column errors differ ({case.name}, repeat run)",
    )
