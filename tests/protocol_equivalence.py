"""Shared golden-trace equivalence harness for gossip protocols.

Every protocol that runs under :func:`repro.engine.batching.run_batched`
owes the engine two contracts:

1. **Stride-1 bit-identity** — ``run_batched(check_stride=1)`` must equal
   the legacy scalar loop bit for bit (values, transmissions, ticks,
   error, and every trace point).
2. **Block-size invariance** — at any ``check_stride``, results are a
   pure function of ``(seed, stride)``: the internal ``block_size`` used
   to chunk owner sampling must never leak into the numbers.

This module factors those assertions (plus strided determinism) into
reusable helpers and a registry of ready-made protocol cases, so adding a
protocol to the golden suite is one `ProtocolCase` entry — future
protocols get the whole equivalence battery for free by registering here
and parametrizing over :func:`case_names`.

Not a test module itself (no ``test_`` prefix): imported by
``test_golden_traces.py`` and ``test_protocol_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dynamics import DynamicGossip, DynamicSubstrate, FaultSpec
from repro.engine.batching import run_batched
from repro.experiments.seeds import spawn_rng
from repro.gossip.affine import (
    AffineGossipKn,
    PerturbedAffineGossipKn,
    sample_alphas,
)
from repro.gossip.base import GossipRunResult
from repro.gossip.geographic import GeographicGossip
from repro.gossip.hierarchical.rounds import HierarchicalGossip
from repro.gossip.path_averaging import PathAveragingGossip
from repro.gossip.randomized import RandomizedGossip
from repro.gossip.spatial import SpatialGossip
from repro.graphs.rgg import RandomGeometricGraph

#: One shared substrate for every graph-based case: small enough that the
#: full battery runs in seconds, dense enough that routing never voids.
_N = 48
_GRAPH = RandomGeometricGraph.sample_connected(
    _N, np.random.default_rng(20070801), radius_constant=3.0
)
_VALUES = np.random.default_rng(4242).normal(size=_N)
#: Mean-zero (the paper's WLOG): keeps the affine-K_n cases in the
#: regime Lemma 1 covers, so no UncenteredFieldWarning noise in runs.
_VALUES -= _VALUES.mean()
_ALPHAS = sample_alphas(_N, np.random.default_rng(99))


#: A fixed, fully-enabled fault schedule for the faulted golden cases:
#: churn, link failures, and per-hop loss all active, epochs short enough
#: that a 48-node run crosses several boundaries.  The schedule seed is
#: pinned so every factory call realises the identical scenario — the
#: whole equivalence battery (stride-1 bit-identity, block-size
#: invariance, strided determinism) then applies to the dynamics layer.
_FAULTED_SPEC = FaultSpec(
    churn_rate=0.1,
    recover_rate=0.3,
    link_failure_rate=0.1,
    loss_prob=0.08,
    epoch_ticks=64,
)
_FAULTED_SEED = 1312


def _make_faulted():
    substrate = DynamicSubstrate(_GRAPH, _FAULTED_SPEC, seed=_FAULTED_SEED)
    return DynamicGossip(
        PathAveragingGossip(substrate, target_mode="uniform"), substrate
    )


def _make_faulted_randomized():
    substrate = DynamicSubstrate(_GRAPH, _FAULTED_SPEC, seed=_FAULTED_SEED)
    return DynamicGossip(RandomizedGossip(substrate.neighbors), substrate)


@dataclass(frozen=True)
class ProtocolCase:
    """One protocol under test: a fresh-instance factory plus run knobs."""

    name: str
    factory: Callable[[], object]
    epsilon: float = 0.25
    #: Round-based protocols have no tick loop: stride/block contracts do
    #: not apply, only the stride-1 pass-through identity.
    tick_driven: bool = True


CASES: dict[str, ProtocolCase] = {
    case.name: case
    for case in (
        ProtocolCase(
            "randomized", lambda: RandomizedGossip(_GRAPH.neighbors)
        ),
        ProtocolCase(
            "geographic-uniform",
            lambda: GeographicGossip(_GRAPH, target_mode="uniform"),
        ),
        ProtocolCase(
            "geographic-position",
            lambda: GeographicGossip(_GRAPH, target_mode="position"),
        ),
        ProtocolCase(
            "geographic-rejection",
            lambda: GeographicGossip(_GRAPH, target_mode="rejection"),
        ),
        ProtocolCase("spatial", lambda: SpatialGossip(_GRAPH, rho=2.0)),
        ProtocolCase(
            "path-averaging",
            lambda: PathAveragingGossip(_GRAPH, target_mode="uniform"),
        ),
        ProtocolCase(
            "path-averaging-position",
            lambda: PathAveragingGossip(_GRAPH, target_mode="position"),
        ),
        ProtocolCase(
            "affine-kn", lambda: AffineGossipKn(_N, alphas=_ALPHAS)
        ),
        ProtocolCase(
            "affine-kn-perturbed",
            lambda: PerturbedAffineGossipKn(
                _N, noise_bound=1e-4, alphas=_ALPHAS
            ),
        ),
        ProtocolCase(
            "hierarchical",
            lambda: HierarchicalGossip(_GRAPH),
            tick_driven=False,
        ),
        ProtocolCase("path-averaging-faulted", _make_faulted),
        ProtocolCase("randomized-faulted", _make_faulted_randomized),
    )
}


def case_names(tick_driven: bool | None = None) -> list[str]:
    """Registered case names, optionally filtered to tick-driven ones."""
    return [
        name
        for name, case in CASES.items()
        if tick_driven is None or case.tick_driven == tick_driven
    ]


def initial_values() -> np.ndarray:
    """The shared field every case starts from (copied per run)."""
    return _VALUES.copy()


def assert_results_identical(
    left: GossipRunResult, right: GossipRunResult, context: str = ""
) -> None:
    """Bit-level equality of two run results, traces included."""
    suffix = f" ({context})" if context else ""
    np.testing.assert_array_equal(
        left.values, right.values, err_msg=f"values differ{suffix}"
    )
    assert left.transmissions == right.transmissions, (
        f"transmissions differ{suffix}"
    )
    assert left.ticks == right.ticks, f"ticks differ{suffix}"
    assert left.error == right.error, f"error differs{suffix}"
    assert left.converged == right.converged, f"converged differs{suffix}"
    left_trace = [(p.transmissions, p.ticks, p.error) for p in left.trace.points]
    right_trace = [
        (p.transmissions, p.ticks, p.error) for p in right.trace.points
    ]
    assert left_trace == right_trace, f"trace points differ{suffix}"


def run_engine(
    case: ProtocolCase,
    seed: int,
    check_stride: int,
    block_size: int | None = None,
) -> GossipRunResult:
    """One engine run of ``case`` from the shared field, fresh instance."""
    kwargs = {} if block_size is None else {"block_size": block_size}
    return run_batched(
        case.factory(),
        initial_values(),
        case.epsilon,
        spawn_rng(seed, "golden", case.name),
        check_stride=check_stride,
        **kwargs,
    )


def assert_stride1_bit_identical(case: ProtocolCase, seed: int = 7) -> None:
    """Contract 1: the stride-1 engine path is the legacy loop, bit for bit."""
    legacy = case.factory().run(
        initial_values(), case.epsilon, spawn_rng(seed, "golden", case.name)
    )
    engine = run_engine(case, seed, check_stride=1)
    assert_results_identical(legacy, engine, f"{case.name}, stride 1 vs legacy")


def assert_block_size_invariant(
    case: ProtocolCase,
    seed: int = 7,
    check_stride: int = 4,
    block_sizes: tuple[int, ...] = (1, 7, 8192),
) -> None:
    """Contract 2: stride-k results depend only on (seed, stride)."""
    reference = run_engine(case, seed, check_stride, block_sizes[0])
    for block_size in block_sizes[1:]:
        other = run_engine(case, seed, check_stride, block_size)
        assert_results_identical(
            reference,
            other,
            f"{case.name}, stride {check_stride}, "
            f"block {block_sizes[0]} vs {block_size}",
        )


def assert_strided_deterministic(
    case: ProtocolCase, seed: int = 7, check_stride: int = 4
) -> None:
    """Same (seed, stride) twice — fresh instances — identical results."""
    first = run_engine(case, seed, check_stride)
    second = run_engine(case, seed, check_stride)
    assert_results_identical(
        first, second, f"{case.name}, stride {check_stride}, repeat run"
    )
