"""Unit tests for repro.hierarchy.tree."""

import numpy as np
import pytest

from repro.geometry import random_points
from repro.hierarchy import HierarchyTree, SquareAddress, paper_leaf_threshold


@pytest.fixture(scope="module")
def tree():
    rng = np.random.default_rng(101)
    positions = random_points(2048, rng)
    return HierarchyTree.build(positions, leaf_threshold=32.0)


class TestConstruction:
    def test_rejects_bad_positions(self):
        with pytest.raises(ValueError):
            HierarchyTree(np.zeros((5, 3)), [4])

    def test_rejects_non_square_factor(self):
        with pytest.raises(ValueError):
            HierarchyTree(np.zeros((5, 2)), [5])

    def test_root_holds_everyone(self, tree):
        assert tree.root.occupancy == 2048
        assert tree.root.expected_count == 2048.0
        assert tree.root.address.is_root

    def test_levels_formula(self, tree):
        assert tree.levels == len(tree.factors) + 1

    def test_paper_threshold_gives_trivial_tree(self):
        rng = np.random.default_rng(103)
        positions = random_points(500, rng)
        tree = HierarchyTree.build(
            positions, leaf_threshold=paper_leaf_threshold(500)
        )
        assert tree.levels == 1
        assert tree.root.is_leaf


class TestPartitionInvariants:
    def test_children_partition_members(self, tree):
        for node in tree.all_squares():
            if node.is_leaf:
                continue
            child_members = np.concatenate([c.members for c in node.children])
            assert sorted(child_members.tolist()) == sorted(node.members.tolist())

    def test_members_inside_their_square(self, tree):
        for node in tree.all_squares():
            for member in node.members:
                assert node.square.contains(tree.positions[member])

    def test_expected_counts_telescope(self, tree):
        for node in tree.all_squares():
            if not node.is_leaf:
                for child in node.children:
                    assert child.expected_count == pytest.approx(
                        node.expected_count / len(node.children)
                    )

    def test_squares_at_depth_counts(self, tree):
        count = 1
        for depth, factor in enumerate(tree.factors):
            assert len(tree.squares_at_depth(depth)) == count
            count *= factor
        assert len(tree.squares_at_depth(len(tree.factors))) == count

    def test_depth_out_of_range(self, tree):
        with pytest.raises(ValueError):
            tree.squares_at_depth(len(tree.factors) + 1)

    def test_leaves_have_no_children(self, tree):
        for leaf in tree.leaves():
            assert leaf.is_leaf
            assert leaf.depth == len(tree.factors)


class TestSupernodes:
    def test_supernode_is_member(self, tree):
        for node in tree.all_squares():
            if node.supernode >= 0 and node.occupancy > 0:
                assert node.supernode in node.members

    def test_supernodes_distinct(self, tree):
        elected = [
            node.supernode for node in tree.all_squares() if node.supernode >= 0
        ]
        assert len(elected) == len(set(elected))

    def test_supernode_near_center(self, tree):
        # The supernode is the nearest *unclaimed* member; collisions are
        # rare, so for most squares it is the true nearest member.
        mismatches = 0
        for node in tree.all_squares():
            if node.supernode < 0:
                continue
            diff = tree.positions[node.members] - node.square.center
            nearest = node.members[np.argmin(diff[:, 0] ** 2 + diff[:, 1] ** 2)]
            if int(nearest) != node.supernode:
                mismatches += 1
        assert mismatches <= 0.05 * len(tree.all_squares())

    def test_levels_assignment(self, tree):
        assert tree.node_level(tree.root.supernode) == tree.levels
        for leaf in tree.leaves():
            if leaf.supernode >= 0:
                assert tree.node_level(leaf.supernode) == 1

    def test_ordinary_sensors_level_zero(self, tree):
        supers = set(tree.supernodes())
        for sensor in range(0, tree.n, 97):
            if sensor not in supers:
                assert tree.node_level(sensor) == 0

    def test_supernode_count(self, tree):
        expected = sum(
            1 for node in tree.all_squares() if node.supernode >= 0
        )
        assert len(tree.supernodes()) == expected


class TestQueries:
    def test_node_by_address(self, tree):
        first_child = tree.root.children[0]
        assert tree.node(first_child.address) is first_child
        assert tree.node(SquareAddress()) is tree.root

    def test_occupancy_report_shape(self, tree):
        report = tree.occupancy_report()
        assert len(report) == tree.levels
        assert report[0]["squares"] == 1
        assert report[0]["max_ratio_deviation"] == pytest.approx(0.0)

    def test_occupancy_concentration_at_top_level(self, tree):
        # Paper §3 (Chernoff): |#/E# - 1| < 1/10 w.h.p. for the √n squares.
        # At n=2048 fluctuations are larger; assert a loose band.
        report = tree.occupancy_report()
        assert report[1]["max_ratio_deviation"] < 1.0

    def test_all_squares_bfs_order(self, tree):
        depths = [node.depth for node in tree.all_squares()]
        assert depths == sorted(depths)

    def test_empty_square_handling(self):
        # Cram 8 sensors into a corner so most level-1 squares are empty.
        positions = 0.01 * random_points(8, np.random.default_rng(5))
        tree = HierarchyTree(positions, [4])
        empty = [node for node in tree.squares_at_depth(1) if node.occupancy == 0]
        assert empty, "expected empty squares in this degenerate layout"
        for node in empty:
            assert node.supernode == -1
