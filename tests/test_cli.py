"""Unit tests for repro.cli."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "hierarchical"
        assert args.n == 512
        assert args.epsilon == 0.2

    def test_sweep_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--sizes", "64,128", "--trials", "1"]
        )
        assert args.sizes == "64,128"
        assert args.trials == 1

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.check_stride == 1
        assert args.store_dir is None
        assert args.resume is False
        run_args = build_parser().parse_args(["run"])
        assert run_args.check_stride == 1

    def test_engine_flag_parsing(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--workers", "4",
                "--check-stride", "8",
                "--store-dir", "results",
                "--resume",
            ]
        )
        assert args.workers == 4
        assert args.check_stride == 8
        assert args.store_dir == "results"
        assert args.resume is True

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "telepathy"])

    def test_fault_flag_defaults(self):
        for command in ("run", "sweep"):
            args = build_parser().parse_args([command])
            assert args.faults == "none"
            assert args.churn_rate is None
            assert args.loss_prob is None

    def test_multifield_flag_defaults(self):
        for command in ("run", "sweep"):
            args = build_parser().parse_args([command])
            assert args.fields == 1
            assert args.workload == "ensemble"

    def test_multifield_flag_parsing(self):
        args = build_parser().parse_args(
            ["run", "--fields", "8", "--workload", "quantile"]
        )
        assert args.fields == 8
        assert args.workload == "quantile"

    def test_rejects_bad_multifield_flags(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fields", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--workload", "no-such"])

    def test_faults_with_incompatible_defaults_exit_cleanly(self, capsys):
        # The sweep default algorithm set includes round-based
        # `hierarchical`; combining it with --faults must be a clean
        # usage error (exit 2), not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--sizes", "48", "--trials", "1", "--faults", "lossy"])
        assert excinfo.value.code == 2
        assert "hierarchical" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "run", "--algorithm", "hierarchical",
                    "--n", "48", "--faults", "lossy",
                ]
            )
        assert excinfo.value.code == 2
        assert "hierarchical" in capsys.readouterr().err

    def test_malformed_fault_spec_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--n", "48", "--faults", "telepathy=1"])
        assert excinfo.value.code == 2
        assert "telepathy" in capsys.readouterr().err

    def test_fault_flag_composition(self):
        from repro.cli import _fault_spec

        args = build_parser().parse_args(
            ["run", "--faults", "lossy", "--churn-rate", "0.1"]
        )
        spec = _fault_spec(args)
        assert spec.loss_prob == 0.05  # from the preset
        assert spec.churn_rate == 0.1  # from the override
        args = build_parser().parse_args(["sweep", "--loss-prob", "0.2"])
        assert _fault_spec(args).loss_prob == 0.2

    def test_topology_flag(self):
        assert build_parser().parse_args(["run"]).topology == "rgg"
        assert build_parser().parse_args(["sweep"]).topology == "rgg"
        args = build_parser().parse_args(["sweep", "--topology", "grid2d"])
        assert args.topology == "grid2d"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--topology", "hypercube"])

    def test_rejects_non_positive_engine_flags(self, capsys):
        for argv, fragment in (
            (["sweep", "--workers", "0"], "must be >= 1"),
            (["sweep", "--check-stride", "0"], "must be >= 1"),
            (["run", "--check-stride", "-3"], "must be >= 1"),
            (["sweep", "--workers", "two"], "expected an integer"),
        ):
            with pytest.raises(SystemExit):
                build_parser().parse_args(argv)
            assert fragment in capsys.readouterr().err


class TestCommands:
    def test_run_command(self, capsys):
        code = main(
            [
                "run",
                "--algorithm",
                "geographic",
                "--n",
                "128",
                "--epsilon",
                "0.3",
                "--show-field",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "transmissions" in out
        assert "initial field" in out

    def test_run_hierarchical(self, capsys):
        code = main(["run", "--n", "128", "--epsilon", "0.3"])
        assert code == 0
        assert "hierarchical" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "--sizes",
                "64,128",
                "--epsilon",
                "0.3",
                "--trials",
                "1",
                "--algorithms",
                "geographic",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "log-log slope" in out

    def test_run_multifield_reports_per_field_errors(self, capsys):
        code = main(
            [
                "run",
                "--algorithm", "geographic",
                "--n", "64",
                "--epsilon", "0.3",
                "--fields", "4",
                "--workload", "quantile",
                "--show-field",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 (quantile)" in out
        for index in range(4):
            assert f"field {index} error" in out

    def test_sweep_multifield(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--sizes", "24,32",
                "--epsilon", "0.3",
                "--trials", "1",
                "--algorithms", "randomized",
                "--fields", "8",
                "--store-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8 'ensemble' fields" in out
        # Resume reuses every multi-field cell.
        code = main(
            [
                "sweep",
                "--sizes", "24,32",
                "--epsilon", "0.3",
                "--trials", "1",
                "--algorithms", "randomized",
                "--fields", "8",
                "--store-dir", str(tmp_path),
                "--resume",
            ]
        )
        assert code == 0
        assert "resuming past 2 finished cells" in capsys.readouterr().out

    def test_run_with_faults_reports_metrics(self, capsys):
        code = main(
            [
                "run",
                "--algorithm", "geographic",
                "--n", "64",
                "--epsilon", "0.3",
                "--check-stride", "2",
                "--faults", "churn=0.05,loss=0.05,epoch=64",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)  # faulted runs may legitimately not converge
        assert "faults" in out
        assert "live_node_error" in out
        assert "aborted_routes" in out

    def test_sweep_with_faults(self, capsys):
        code = main(
            [
                "sweep",
                "--sizes", "48,64",
                "--epsilon", "0.3",
                "--trials", "1",
                "--algorithms", "randomized",
                "--check-stride", "2",
                "--loss-prob", "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults 'loss=0.05'" in out

    def test_sweep_with_engine_store_and_resume(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--sizes", "64,96",
            "--epsilon", "0.3",
            "--trials", "1",
            "--algorithms", "geographic",
            "--workers", "2",
            "--check-stride", "2",
            "--store-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "store:" in first
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resuming past 2 finished cells" in second
        # Identical numbers whether computed or resumed from the store.
        assert first.splitlines()[-6:] == second.splitlines()[-6:]

    def test_run_on_zoo_topology(self, capsys):
        code = main(
            [
                "run",
                "--algorithm", "path-averaging",
                "--topology", "grid2d",
                "--n", "64",
                "--epsilon", "0.3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "grid2d" in out
        assert "path-averaging" in out

    def test_sweep_on_zoo_topology(self, capsys):
        code = main(
            [
                "sweep",
                "--sizes", "48,64",
                "--epsilon", "0.3",
                "--trials", "1",
                "--topology", "smallworld",
                "--algorithms", "randomized,path-averaging",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "'smallworld'" in out

    def test_resume_requires_store_dir(self, capsys):
        assert main(["sweep", "--resume"]) == 2
        assert "--resume requires --store-dir" in capsys.readouterr().err

    def test_run_with_check_stride(self, capsys):
        code = main(
            [
                "run",
                "--algorithm", "randomized",
                "--n", "64",
                "--epsilon", "0.3",
                "--check-stride", "4",
            ]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_inspect_command(self, capsys):
        code = main(["inspect", "--n", "256", "--leaf-threshold", "24"])
        out = capsys.readouterr().out
        assert code == 0
        assert "factors" in out
        assert "Levels" in out

    def test_module_entry_point_importable(self):
        import importlib

        module = importlib.import_module("repro.cli")
        assert callable(module.main)


class TestTrialBatch:
    def test_flag_defaults_off(self):
        assert build_parser().parse_args(["sweep"]).trial_batch is False
        args = build_parser().parse_args(["sweep", "--trial-batch"])
        assert args.trial_batch is True

    def test_fields_zero_is_a_usage_error(self, capsys):
        """--fields 0 exits 2 with a clean message, never a traceback."""
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--fields", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--fields", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_sweep_trial_batch_matches_per_cell(self, capsys, tmp_path):
        flags = [
            "sweep",
            "--sizes", "24,32",
            "--epsilon", "0.3",
            "--trials", "2",
            "--algorithms", "randomized,geographic",
            "--check-stride", "4",
        ]
        assert main(flags) == 0
        per_cell = capsys.readouterr().out
        assert main([*flags, "--trial-batch"]) == 0
        batched = capsys.readouterr().out
        # Identical numbers up to the timing table (wall clock is the
        # one column allowed to differ between execution modes).
        marker = "mean wall clock"
        assert per_cell.split(marker)[0] == batched.split(marker)[0]
        assert marker in per_cell and marker in batched

    def test_sweep_trial_batch_resume_roundtrip(self, capsys, tmp_path):
        flags = [
            "sweep",
            "--sizes", "24",
            "--epsilon", "0.3",
            "--trials", "2",
            "--algorithms", "randomized",
            "--check-stride", "4",
            "--store-dir", str(tmp_path),
        ]
        assert main([*flags, "--trial-batch"]) == 0
        capsys.readouterr()
        # Per-cell resume of a trial-batch store: every cell reused.
        assert main([*flags, "--resume"]) == 0
        assert "resuming past 2 finished cells" in capsys.readouterr().out


class TestSweepService:
    def test_serve_sweep_parser_defaults(self):
        args = build_parser().parse_args(
            ["serve-sweep", "--store-dir", "results"]
        )
        assert args.workers == 2
        assert args.queue_dir is None
        assert args.ttl == 10.0
        assert args.heartbeat_interval == 1.0
        assert args.worker_throttle == 0.0
        assert args.chaos_kill_after is None
        assert args.max_respawns is None
        assert args.resume is False and args.trace is False
        # The grid flags are the sweep's own, verbatim.
        assert args.sizes == "128,256,512"
        assert args.check_stride == 1

    def test_serve_sweep_requires_store_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sweep"])

    def test_work_parser(self):
        args = build_parser().parse_args(
            ["work", "--queue-dir", "q", "--worker-id", "w7",
             "--throttle", "0.5"]
        )
        assert args.queue_dir == "q"
        assert args.worker_id == "w7"
        assert args.throttle == 0.5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["work"])  # --queue-dir is required

    def test_work_on_missing_queue_is_a_usage_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["work", "--queue-dir", str(tmp_path / "nowhere")])
        assert excinfo.value.code == 2
        assert "no queue manifest" in capsys.readouterr().err

    def test_store_diff_on_missing_root_is_a_usage_error(
        self, capsys, tmp_path
    ):
        (tmp_path / "a").mkdir()
        with pytest.raises(SystemExit) as excinfo:
            main(["store-diff", str(tmp_path / "a"), str(tmp_path / "b")])
        assert excinfo.value.code == 2
        assert "not a store root" in capsys.readouterr().err

    def test_serve_sweep_matches_sweep_end_to_end(self, capsys, tmp_path):
        """The acceptance criterion as a CLI round-trip: a distributed
        session with an injected worker kill produces a store that
        'store-diff' certifies identical to the serial sweep's."""
        grid = [
            "--sizes", "32,48",
            "--epsilon", "0.3",
            "--trials", "1",
            "--algorithms", "randomized,geographic",
        ]
        assert main(
            [
                "serve-sweep", *grid,
                "--store-dir", str(tmp_path / "dist"),
                "--workers", "2",
                "--ttl", "2",
                "--heartbeat-interval", "0.2",
                "--poll-interval", "0.05",
                "--worker-throttle", "0.3",
                "--chaos-kill-after", "0",
            ]
        ) == 0
        served = capsys.readouterr().out
        assert "queue:" in served and "cells done" in served
        assert main(
            ["sweep", *grid, "--store-dir", str(tmp_path / "serial")]
        ) == 0
        serial = capsys.readouterr().out
        assert main(
            ["store-diff", str(tmp_path / "dist"), str(tmp_path / "serial")]
        ) == 0
        assert "stores identical" in capsys.readouterr().out
        # And the two commands printed the same sweep table.
        marker = "mean transmissions"
        assert served.split(marker)[1].split("\n\n")[0] == (
            serial.split(marker)[1].split("\n\n")[0]
        )

    def test_store_diff_flags_divergence(self, capsys, tmp_path):
        import json

        flags = [
            "sweep",
            "--sizes", "32",
            "--epsilon", "0.3",
            "--trials", "1",
            "--algorithms", "randomized",
        ]
        assert main([*flags, "--store-dir", str(tmp_path / "a")]) == 0
        assert main([*flags, "--store-dir", str(tmp_path / "b")]) == 0
        capsys.readouterr()
        (cells,) = (tmp_path / "b").glob("*/cells.jsonl")
        record = json.loads(cells.read_text().splitlines()[0])
        record["ticks"] += 1
        cells.write_text(json.dumps(record) + "\n")
        assert main(
            ["store-diff", str(tmp_path / "a"), str(tmp_path / "b")]
        ) == 1
        out = capsys.readouterr().out
        assert "diverges" in out and "1 difference(s)" in out
