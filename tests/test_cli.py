"""Unit tests for repro.cli."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "hierarchical"
        assert args.n == 512
        assert args.epsilon == 0.2

    def test_sweep_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--sizes", "64,128", "--trials", "1"]
        )
        assert args.sizes == "64,128"
        assert args.trials == 1

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "telepathy"])


class TestCommands:
    def test_run_command(self, capsys):
        code = main(
            [
                "run",
                "--algorithm",
                "geographic",
                "--n",
                "128",
                "--epsilon",
                "0.3",
                "--show-field",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "transmissions" in out
        assert "initial field" in out

    def test_run_hierarchical(self, capsys):
        code = main(["run", "--n", "128", "--epsilon", "0.3"])
        assert code == 0
        assert "hierarchical" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "--sizes",
                "64,128",
                "--epsilon",
                "0.3",
                "--trials",
                "1",
                "--algorithms",
                "geographic",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "log-log slope" in out

    def test_inspect_command(self, capsys):
        code = main(["inspect", "--n", "256", "--leaf-threshold", "24"])
        out = capsys.readouterr().out
        assert code == 0
        assert "factors" in out
        assert "Levels" in out

    def test_module_entry_point_importable(self):
        import importlib

        module = importlib.import_module("repro.cli")
        assert callable(module.main)
