"""Trial-tensorized execution: repro.engine.tensor and the sweep's
``trial_batch`` mode.

The headline contract is per-trial bit-identity: trial ``t`` extracted
from a ``(trials, n[, k])`` tensor run must equal the legacy per-cell
``run_batched`` run of the same seed — values, transmissions (category
ledger included), ticks, error, and every trace point — for every
tensorized protocol, at stride 1 (silent per-trial delegation) and at a
real stride.  Around it: the fallback rules (faulted, round-based,
traced, per-column multi-field → per-cell behind a
``TrialBatchFallbackWarning``), the array-backend seam, the route-cache
vectors the kernels consume, and the sweep-level ``trial_batch`` mode
whose records and stores must be indistinguishable from per-cell runs.
"""

import warnings

import numpy as np
import pytest

from protocol_equivalence import (
    CASES,
    assert_results_identical,
    initial_field_matrix,
    initial_values,
    run_engine,
)
from repro.engine.backend import ArrayBackend, available_backends, get_backend
from repro.engine.batching import (
    MultiFieldFallbackWarning,
    ScalarFallbackWarning,
    run_batched,
)
from repro.engine.executor import run_sweep_records
from repro.engine.tensor import (
    TrialBatchFallbackWarning,
    run_trials_batched,
    trial_batch_capability,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.seeds import spawn_rng
from repro.gossip.base import AsynchronousGossip
from repro.gossip.hierarchical.rounds import HierarchicalGossip
from repro.gossip.randomized import RandomizedGossip
from repro.graphs.rgg import RandomGeometricGraph


class _ScalarPairGossip(AsynchronousGossip):
    """Tick-driven but scalar-only: exercises the per-column fallback."""

    name = "scalar-pair"

    def tick(self, node, values, counter, rng):
        partner = int(rng.integers(self.n - 1))
        partner = partner + 1 if partner >= node else partner
        average = 0.5 * (values[node] + values[partner])
        values[node] = average
        values[partner] = average
        counter.charge(2, "near")

#: Every tick-driven, fault-free golden case joins the tensor battery.
TENSOR_CASES = [
    "randomized",
    "geographic-uniform",
    "geographic-position",
    "geographic-rejection",
    "spatial",
    "path-averaging",
    "path-averaging-position",
    "affine-kn",
    "affine-kn-perturbed",
]

#: Cases whose exact type has a dedicated cross-trial kernel; the rest of
#: TENSOR_CASES advance through the generic lockstep tick_block path.
KERNEL_CASES = [
    "randomized",
    "geographic-uniform",
    "spatial",
    "path-averaging",
    "affine-kn",
    "affine-kn-perturbed",
]

_TRIALS = 3


def run_tensor(name, seeds, check_stride, fields=None):
    """One tensor run of ``CASES[name]`` across ``seeds``-many trials,
    each trial seeded exactly like :func:`protocol_equivalence.run_engine`."""
    case = CASES[name]
    state = initial_values() if fields is None else initial_field_matrix(fields)
    return run_trials_batched(
        [case.factory() for _ in seeds],
        [state.copy() for _ in seeds],
        case.epsilon,
        [spawn_rng(seed, "golden", case.name) for seed in seeds],
        check_stride=check_stride,
    )


class TestCapability:
    @pytest.mark.parametrize("name", KERNEL_CASES)
    def test_kernel_cases(self, name):
        assert trial_batch_capability(CASES[name].factory()) == "kernel"

    @pytest.mark.parametrize(
        "name",
        [n for n in TENSOR_CASES if n not in KERNEL_CASES],
    )
    def test_lockstep_cases(self, name):
        assert trial_batch_capability(CASES[name].factory()) == "lockstep"

    def test_per_cell_cases(self):
        assert trial_batch_capability(object()) == "per-cell"
        assert trial_batch_capability(CASES["hierarchical"].factory()) == (
            "per-cell"
        )


class TestGoldenBitIdentity:
    """Trial t of the tensor run == the per-cell run of the same seed."""

    @pytest.mark.parametrize("check_stride", [1, 4])
    @pytest.mark.parametrize("name", TENSOR_CASES)
    def test_per_trial_bit_identical(self, name, check_stride):
        seeds = [7 + t for t in range(_TRIALS)]
        with warnings.catch_warnings():
            warnings.simplefilter("error", TrialBatchFallbackWarning)
            batch = run_trials_batched(
                [CASES[name].factory() for _ in seeds],
                [initial_values() for _ in seeds],
                CASES[name].epsilon,
                [spawn_rng(seed, "golden", name) for seed in seeds],
                check_stride=check_stride,
            )
        for t, seed in enumerate(seeds):
            solo = run_engine(CASES[name], seed, check_stride)
            assert_results_identical(
                batch[t], solo, f"{name}, stride {check_stride}, trial {t}"
            )

    @pytest.mark.parametrize("name", KERNEL_CASES)
    def test_multifield_per_trial_bit_identical(self, name):
        """(trials, n, k) tensors reproduce per-cell (n, k) runs exactly."""
        seeds = [7 + t for t in range(_TRIALS)]
        batch = run_tensor(name, seeds, check_stride=4, fields=3)
        for t, seed in enumerate(seeds):
            solo = run_engine(CASES[name], seed, check_stride=4, fields=3)
            assert_results_identical(
                batch[t], solo, f"{name}, k=3, trial {t}"
            )
            np.testing.assert_array_equal(
                np.asarray(batch[t].column_errors),
                np.asarray(solo.column_errors),
                err_msg=f"column errors differ ({name}, trial {t})",
            )

    def test_single_trial_batch(self):
        """A slice of one trial is still exactly the per-cell run."""
        batch = run_tensor("randomized", [7], check_stride=4)
        solo = run_engine(CASES["randomized"], 7, check_stride=4)
        assert_results_identical(batch[0], solo, "single-trial slice")


class TestValidationAndFallback:
    def _algorithms(self, count=2, name="randomized"):
        return [CASES[name].factory() for _ in range(count)]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="per trial"):
            run_trials_batched(
                self._algorithms(2),
                [initial_values()],
                0.25,
                [np.random.default_rng(0)],
            )

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError, match="at least one trial"):
            run_trials_batched([], [], 0.25, [])

    def test_mixed_sizes_raise(self):
        small = RandomGeometricGraph.sample_connected(
            24, np.random.default_rng(3), radius_constant=3.0
        )
        algorithms = [
            CASES["randomized"].factory(),
            RandomizedGossip(small.neighbors),
        ]
        states = [initial_values(), np.zeros(24)]
        with pytest.raises(ValueError, match="one size"):
            run_trials_batched(
                algorithms,
                states,
                0.25,
                [np.random.default_rng(t) for t in range(2)],
                check_stride=4,
            )

    def test_mixed_protocol_types_raise(self):
        algorithms = [
            CASES["randomized"].factory(),
            CASES["spatial"].factory(),
        ]
        with pytest.raises(ValueError, match="one protocol type"):
            run_trials_batched(
                algorithms,
                [initial_values() for _ in range(2)],
                0.25,
                [np.random.default_rng(t) for t in range(2)],
                check_stride=4,
            )

    def test_nonpositive_epsilon_raises(self):
        with pytest.raises(ValueError, match="epsilon"):
            run_trials_batched(
                self._algorithms(),
                [initial_values() for _ in range(2)],
                0.0,
                [np.random.default_rng(t) for t in range(2)],
                check_stride=4,
            )

    def test_stride_one_delegates_silently(self):
        """check_stride=1 is the legacy single-stream loop per trial —
        delegation is the documented contract, not a fallback event."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", TrialBatchFallbackWarning)
            batch = run_tensor("randomized", [7, 8], check_stride=1)
        for t, seed in enumerate([7, 8]):
            solo = run_engine(CASES["randomized"], seed, check_stride=1)
            assert_results_identical(batch[t], solo, f"stride-1 trial {t}")

    def test_round_based_protocol_warns_and_delegates(self):
        graph = RandomGeometricGraph.sample_connected(
            32, np.random.default_rng(5), radius_constant=3.0
        )
        values = np.random.default_rng(6).normal(size=32)
        values -= values.mean()
        with pytest.warns(TrialBatchFallbackWarning, match="no tick loop"):
            batch = run_trials_batched(
                [HierarchicalGossip(graph) for _ in range(2)],
                [values.copy() for _ in range(2)],
                0.25,
                [np.random.default_rng(100 + t) for t in range(2)],
                check_stride=4,
            )
        for t in range(2):
            solo = run_batched(
                HierarchicalGossip(graph),
                values.copy(),
                0.25,
                np.random.default_rng(100 + t),
                check_stride=4,
            )
            assert_results_identical(batch[t], solo, f"rounds trial {t}")

    def test_per_column_multifield_warns_and_delegates(self):
        """Matrix state on a per-column protocol falls back per trial."""
        state = np.random.default_rng(6).normal(size=(48, 2))
        state -= state.mean(axis=0)
        with pytest.warns(TrialBatchFallbackWarning, match="per-column"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", MultiFieldFallbackWarning)
                warnings.simplefilter("ignore", ScalarFallbackWarning)
                batch = run_trials_batched(
                    [_ScalarPairGossip(48) for _ in range(2)],
                    [state.copy() for _ in range(2)],
                    0.25,
                    [np.random.default_rng(100 + t) for t in range(2)],
                    check_stride=4,
                    max_ticks=64,
                )
        assert len(batch) == 2
        assert all(result.values.shape == (48, 2) for result in batch)


class TestBackendSeam:
    def test_numpy_is_the_only_backend(self):
        assert available_backends() == ("numpy",)

    def test_get_backend_returns_numpy_namespace(self):
        backend = get_backend()
        assert isinstance(backend, ArrayBackend)
        assert backend.name == "numpy"
        assert backend.xp is np

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="no-such"):
            get_backend("no-such")

    def test_run_accepts_explicit_backend(self):
        case = CASES["randomized"]
        batch = run_trials_batched(
            [case.factory() for _ in range(2)],
            [initial_values() for _ in range(2)],
            case.epsilon,
            [spawn_rng(7 + t, "golden", case.name) for t in range(2)],
            check_stride=4,
            backend="numpy",
        )
        solo = run_engine(case, 7, check_stride=4)
        assert_results_identical(batch[0], solo, "explicit backend")


class TestRouteStatsVectors:
    """The cached (hops, dest) columns the routed kernels consume."""

    @pytest.fixture()
    def cache(self):
        from repro.routing.cache import CachedGreedyRouter

        graph = RandomGeometricGraph.sample_connected(
            40, np.random.default_rng(11), radius_constant=3.0
        )
        return graph, CachedGreedyRouter(graph)

    def test_stats_match_walked_routes(self, cache):
        from repro.routing.cache import CachedGreedyRouter

        graph, router = cache
        reference = CachedGreedyRouter(graph)
        for target in range(0, 40, 7):
            hops, dest = router.route_stats(target)
            for source in range(40):
                walked = reference.route_to_node(source, target)
                assert dest[source] == walked.path[-1]
                assert hops[source] == walked.hops

    def test_accounting_one_hit_or_miss_per_call(self, cache):
        _, router = cache
        router.route_stats(3)
        assert (router.hits, router.misses) == (0, 1)
        router.route_stats(3)
        assert (router.hits, router.misses) == (1, 1)
        # A column warmed by the scalar API counts as a hit for stats.
        router.route_to_node(0, 9)
        hits, misses = router.hits, router.misses
        router.route_stats(9)
        assert (router.hits, router.misses) == (hits + 1, misses)

    def test_charge_lookups(self, cache):
        _, router = cache
        router.charge_lookups(5)
        assert router.hits == 5
        with pytest.raises(ValueError, match=">= 0"):
            router.charge_lookups(-1)

    def test_invalidate_discards_stats(self, cache):
        _, router = cache
        hops_before, _ = router.route_stats(3)
        router.invalidate()
        hops_after, dest_after = router.route_stats(3)
        assert hops_after is not hops_before
        np.testing.assert_array_equal(hops_after, hops_before)
        assert int(dest_after[3]) == 3

    def test_charge_misses(self, cache):
        _, router = cache
        router.charge_misses(4)
        assert router.misses == 4
        with pytest.raises(ValueError, match=">= 0"):
            router.charge_misses(-1)

    def test_unaccounted_stats_leave_ledger_untouched(self, cache):
        # The shared-substrate tensor path computes stats on one router
        # without accounting, then mirrors each trial's ledger by hand.
        _, router = cache
        hops, dest = router.route_stats(5, account=False)
        assert (router.hits, router.misses) == (0, 0)
        accounted = router.route_stats(5)
        assert (router.hits, router.misses) == (1, 0)
        assert accounted[0] is hops and accounted[1] is dest


class TestSweepTrialBatch:
    """run_sweep_records(trial_batch=True) is invisible in the records."""

    CONFIG = ExperimentConfig(
        sizes=(32, 48),
        trials=3,
        epsilon=0.3,
        algorithms=("randomized", "geographic"),
    )

    def test_records_identical_to_per_cell(self):
        base = run_sweep_records(self.CONFIG, check_stride=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", TrialBatchFallbackWarning)
            batched = run_sweep_records(
                self.CONFIG, check_stride=4, trial_batch=True
            )
        assert batched == base

    def test_telemetry_marks_tensor_cells(self):
        batched = run_sweep_records(
            self.CONFIG, check_stride=4, trial_batch=True
        )
        base = run_sweep_records(self.CONFIG, check_stride=4)
        for key, record in batched.items():
            assert record.telemetry["trial_batch"] == 1.0
            assert "trial_batch" not in base[key].telemetry

    def test_workers_fan_out_slices(self):
        base = run_sweep_records(self.CONFIG, check_stride=4)
        batched = run_sweep_records(
            self.CONFIG, check_stride=4, trial_batch=True, workers=2
        )
        assert batched == base

    def test_round_based_cells_fall_back(self):
        config = ExperimentConfig(
            sizes=(32,),
            trials=2,
            epsilon=0.3,
            algorithms=("randomized", "hierarchical"),
        )
        with pytest.warns(TrialBatchFallbackWarning, match="hierarchical"):
            batched = run_sweep_records(
                config, check_stride=4, trial_batch=True
            )
        assert batched == run_sweep_records(config, check_stride=4)

    def test_faulted_sweep_falls_back_whole(self):
        config = ExperimentConfig(
            sizes=(32,),
            trials=2,
            epsilon=0.3,
            algorithms=("randomized",),
            faults="churn=0.1",
        )
        with pytest.warns(TrialBatchFallbackWarning, match="fault"):
            batched = run_sweep_records(
                config, check_stride=4, trial_batch=True
            )
        assert batched == run_sweep_records(config, check_stride=4)

    def test_stride_one_sweep_identical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", TrialBatchFallbackWarning)
            batched = run_sweep_records(
                self.CONFIG, check_stride=1, trial_batch=True
            )
        assert batched == run_sweep_records(self.CONFIG, check_stride=1)
