"""Unit tests for repro.engine.store (persistent, resumable results)."""

import json

import pytest

import dataclasses

from repro.engine.executor import CellRecord, expand_grid, run_sweep_records
from repro.engine.store import (
    ResultStore,
    ShardDivergenceError,
    canonical_record_bytes,
    content_key,
)
from repro.experiments import ExperimentConfig
from repro.experiments.report import sweep_from_store


@pytest.fixture
def config():
    return ExperimentConfig(
        sizes=(64,),
        epsilon=0.3,
        trials=2,
        radius_constant=3.0,
        algorithms=("randomized",),
    )


def _fake_record(config, trial=0, total=999_999):
    return CellRecord(
        algorithm="randomized",
        n=64,
        trial=trial,
        epsilon=config.epsilon,
        transmissions={"near": total, "total": total},
        ticks=123,
        converged=True,
        error=0.1,
    )


class TestContentKey:
    def test_stable(self, config):
        assert content_key(config) == content_key(config)

    def test_sensitive_to_config_and_stride(self, config):
        keys = {
            content_key(config),
            content_key(config, check_stride=8),
            content_key(ExperimentConfig(
                sizes=(64,), epsilon=0.3, trials=3, radius_constant=3.0,
                algorithms=("randomized",),
            )),
            content_key(ExperimentConfig(
                sizes=(64,), epsilon=0.3, trials=2, radius_constant=3.0,
                algorithms=("randomized",), root_seed=1,
            )),
        }
        assert len(keys) == 4

    def test_validation(self, config):
        with pytest.raises(ValueError):
            content_key(config, check_stride=0)

    def test_topology_keys_distinct_but_rgg_matches_legacy(self, config):
        """Zoo sweeps get fresh directories; flat-RGG keys are unchanged
        from before the topology field existed, so old stores resume."""
        import dataclasses

        zoo = dataclasses.replace(config, topology="grid2d")
        assert content_key(zoo) != content_key(config)
        explicit = dataclasses.replace(config, topology="rgg")
        assert content_key(explicit) == content_key(config)

    def test_multifield_keys_distinct_but_scalar_matches_legacy(self, config):
        """fields > 1 sweeps key fresh directories (on both k and the
        workload); fields=1 keeps the pre-multi-field key regardless of
        how the (unused) workload knob is spelled, so k=1 stores written
        before the multi-field engine existed resume unchanged."""
        import dataclasses

        multi = dataclasses.replace(config, fields=8)
        assert content_key(multi) != content_key(config)
        assert content_key(multi) != content_key(
            dataclasses.replace(config, fields=8, workload="quantile")
        )
        explicit = dataclasses.replace(config, fields=1, workload="quantile")
        assert content_key(explicit) == content_key(config)

    def test_default_key_pinned_across_engine_versions(self):
        """The k=1 default-config key, frozen: any change to this hash
        silently orphans every historical store directory.  (Pinned at
        the multi-field PR against the pre-multi-field engine.)"""
        assert content_key(ExperimentConfig()) == "379068f1d8668c31"


class TestResultStore:
    def test_roundtrip(self, tmp_path, config):
        store = ResultStore(tmp_path, config)
        record = _fake_record(config)
        store.append(record)
        store.append(_fake_record(config, trial=1))
        loaded = ResultStore(tmp_path, config).load_records()
        assert len(loaded) == 2
        assert loaded[record.key] == record
        assert store.config_path.exists()
        descriptor = json.loads(store.config_path.read_text())
        assert descriptor["epsilon"] == config.epsilon

    def test_duplicate_cells_last_wins(self, tmp_path, config):
        store = ResultStore(tmp_path, config)
        store.append(_fake_record(config, total=1))
        store.append(_fake_record(config, total=2))
        (loaded,) = store.load_records().values()
        assert loaded.total_transmissions == 2

    def test_tolerates_truncated_tail(self, tmp_path, config):
        store = ResultStore(tmp_path, config)
        store.append(_fake_record(config))
        with open(store.records_path, "a", encoding="utf-8") as handle:
            handle.write('{"algorithm": "randomized", "n": 64, "tr')
        assert len(store.load_records()) == 1

    def test_reset_drops_cells(self, tmp_path, config):
        store = ResultStore(tmp_path, config)
        store.append(_fake_record(config))
        store.reset()
        assert len(store) == 0
        assert store.config_path.exists()

    def test_different_strides_never_collide(self, tmp_path, config):
        plain = ResultStore(tmp_path, config).open()
        strided = ResultStore(tmp_path, config, check_stride=8).open()
        assert plain.directory != strided.directory

    def test_field_errors_roundtrip(self, tmp_path, config):
        """Multi-field cells persist per-column errors; scalar cells omit
        the key entirely so pre-multi-field readers still parse them."""
        import dataclasses

        store = ResultStore(tmp_path, dataclasses.replace(config, fields=3))
        record = dataclasses.replace(
            _fake_record(config), field_errors=(0.1, 0.2, 0.05)
        )
        store.append(record)
        (loaded,) = store.load_records().values()
        assert loaded.field_errors == (0.1, 0.2, 0.05)
        line = json.loads(store.records_path.read_text().splitlines()[0])
        assert line["field_errors"] == [0.1, 0.2, 0.05]

        scalar_line = _fake_record(config).to_dict()
        assert "field_errors" not in scalar_line
        assert CellRecord.from_dict(scalar_line).field_errors is None

    def test_multifield_store_refuses_capability_drift(self, tmp_path, config):
        """A k>1 store whose recorded native/per-column map no longer
        matches the engine must refuse to resume: the two paths compute
        secondary columns on different RNG streams (exactly what a
        protocol demotion like hierarchical's would cause)."""
        import dataclasses

        multi = dataclasses.replace(config, fields=4)
        store = ResultStore(tmp_path, multi).open()
        descriptor = json.loads(store.config_path.read_text())
        descriptor["multifield"] = {"randomized": "per-column"}
        store.config_path.write_text(json.dumps(descriptor))
        with pytest.raises(ValueError, match="multi-field"):
            ResultStore(tmp_path, multi).open()
        # reset is the documented escape hatch.
        assert len(ResultStore(tmp_path, multi).reset().load_records()) == 0

    def test_scalar_store_tolerates_multifield_drift(self, tmp_path, config):
        """At fields=1 both paths run the identical scalar engine, so a
        drifted capability map must not block resume (mirrors the
        stride-1 batching rule)."""
        store = ResultStore(tmp_path, config).open()
        descriptor = json.loads(store.config_path.read_text())
        descriptor["multifield"] = {"randomized": "per-column"}
        store.config_path.write_text(json.dumps(descriptor))
        ResultStore(tmp_path, config).open()  # no raise

    def test_legacy_store_without_multifield_map_is_tolerated(
        self, tmp_path, config
    ):
        """Pre-multi-field descriptors lack the map; they can only hold
        scalar cells, which both paths compute identically."""
        import dataclasses

        multi = dataclasses.replace(config, fields=4)
        store = ResultStore(tmp_path, multi).open()
        descriptor = json.loads(store.config_path.read_text())
        del descriptor["multifield"]
        store.config_path.write_text(json.dumps(descriptor))
        reopened = ResultStore(tmp_path, multi)
        assert reopened.recorded_multifield() is None
        reopened.open()  # no raise

    def test_scalar_store_resumes_a_multifield_engine(self, tmp_path, config):
        """The CI round-trip in miniature: a store written at k=1 (by any
        engine version) resumes under the multi-field engine without
        recomputation — same key, same cells."""
        run_sweep_records(config, store=ResultStore(tmp_path, config))
        resumed = ResultStore(tmp_path, config)
        fresh = []
        records = run_sweep_records(
            config,
            store=resumed,
            on_record=lambda record, is_fresh: fresh.append(is_fresh),
        )
        assert len(records) == len(expand_grid(config))
        assert fresh and not any(fresh)  # every cell reused, none rerun


class TestBatchingCapabilityGuard:
    def _drift_recorded_batching(self, store):
        payload = json.loads(store.config_path.read_text())
        payload["batching"]["randomized"] = "scalar"  # an older engine
        store.config_path.write_text(json.dumps(payload))

    def test_capability_recorded_in_descriptor(self, tmp_path, config):
        store = ResultStore(tmp_path, config, check_stride=8).open()
        assert store.recorded_batching() == {"randomized": "block"}
        assert json.loads(store.config_path.read_text())["batching"] == {
            "randomized": "block"
        }

    def test_strided_store_refuses_capability_drift(self, tmp_path, config):
        """Scalar-path and block-path cells must never mix in one store."""
        store = ResultStore(tmp_path, config, check_stride=8).open()
        store.append(_fake_record(config))
        self._drift_recorded_batching(store)
        with pytest.raises(ValueError, match="batching"):
            ResultStore(tmp_path, config, check_stride=8).open()
        with pytest.raises(ValueError, match="batching"):
            run_sweep_records(
                config,
                check_stride=8,
                store=ResultStore(tmp_path, config, check_stride=8),
            )

    def test_stride_one_store_tolerates_drift(self, tmp_path, config):
        """At stride 1 every protocol runs the same legacy loop."""
        store = ResultStore(tmp_path, config, check_stride=1).open()
        self._drift_recorded_batching(store)
        ResultStore(tmp_path, config, check_stride=1).open()

    def test_legacy_store_without_capability_is_tolerated(
        self, tmp_path, config
    ):
        store = ResultStore(tmp_path, config, check_stride=8).open()
        payload = json.loads(store.config_path.read_text())
        del payload["batching"]
        store.config_path.write_text(json.dumps(payload))
        reopened = ResultStore(tmp_path, config, check_stride=8).open()
        assert reopened.recorded_batching() is None

    def test_reset_clears_a_drifted_store(self, tmp_path, config):
        store = ResultStore(tmp_path, config, check_stride=8).open()
        store.append(_fake_record(config))
        self._drift_recorded_batching(store)
        fresh = ResultStore(tmp_path, config, check_stride=8).reset()
        assert len(fresh) == 0
        assert fresh.recorded_batching() == {"randomized": "block"}


class TestResume:
    def test_stored_cells_are_not_recomputed(self, tmp_path, config):
        """A sentinel record survives the sweep untouched => cell skipped."""
        store = ResultStore(tmp_path, config)
        sentinel = _fake_record(config, trial=0)
        store.append(sentinel)
        records = run_sweep_records(config, store=store)
        assert len(records) == len(expand_grid(config))
        assert records[sentinel.key] == sentinel
        # The genuinely computed cell does not look like the sentinel.
        other = records[("randomized", 64, 1)]
        assert other.total_transmissions != sentinel.total_transmissions

    def test_interrupted_sweep_completes_from_store(self, tmp_path, config):
        reference = run_sweep_records(config)
        store = ResultStore(tmp_path, config)
        # "Interrupted" run: only the first grid cell made it to disk.
        first_key = expand_grid(config)[0].key
        store.append(reference[first_key])
        resumed = run_sweep_records(config, store=store)
        assert resumed == reference
        # And the store now holds the full grid for the next resume.
        assert len(ResultStore(tmp_path, config)) == len(expand_grid(config))

    def test_resume_reports_reused_cells(self, tmp_path, config):
        store = ResultStore(tmp_path, config)
        run_sweep_records(config, store=store)
        seen = []
        run_sweep_records(
            config,
            store=store,
            on_record=lambda record, fresh: seen.append(fresh),
        )
        assert seen == [False] * len(expand_grid(config))

    def test_stride_mismatch_with_store_is_rejected(self, tmp_path, config):
        """Records from different strides must never blend in one result."""
        store = ResultStore(tmp_path, config, check_stride=1)
        with pytest.raises(ValueError, match="check_stride"):
            run_sweep_records(config, check_stride=8, store=store)

    def test_foreign_cells_in_store_are_ignored(self, tmp_path, config):
        store = ResultStore(tmp_path, config)
        foreign = CellRecord(
            algorithm="randomized",
            n=512,  # not part of this sweep's grid
            trial=0,
            epsilon=config.epsilon,
            transmissions={"total": 5},
            ticks=5,
            converged=False,
            error=0.9,
        )
        store.append(foreign)
        records = run_sweep_records(config, store=store)
        assert foreign.key not in records
        assert len(records) == len(expand_grid(config))


class TestReportIntegration:
    def test_sweep_from_store_aggregates_partial_results(self, tmp_path, config):
        reference = run_sweep_records(config)
        store = ResultStore(tmp_path, config)
        store.append(reference[("randomized", 64, 0)])
        partial = sweep_from_store(store)
        assert [p.trials for p in partial["randomized"]] == [1]
        run_sweep_records(config, store=store)
        complete = sweep_from_store(store)
        assert [p.trials for p in complete["randomized"]] == [config.trials]


class TestMergeRecords:
    """The distributed-merge primitive: first wins, duplicates verified.

    The divergence check is the sweep service's corruption and
    nondeterminism detector — cells are deterministic functions of their
    seeds, so a same-key record with different payload bytes is never a
    benign duplicate.
    """

    def test_appends_new_and_counts_identical_duplicates(
        self, tmp_path, config
    ):
        store = ResultStore(tmp_path, config).open()
        first = _fake_record(config, trial=0)
        second = _fake_record(config, trial=1)
        outcome = store.merge_records([first, second, first])
        assert outcome == {"appended": 2, "duplicates": 1}
        assert store.load_records()[first.key] == first

    def test_tampered_payload_raises_named_error(self, tmp_path, config):
        """A 1e-12 nudge on one float — the subtlest corruption a shard
        can carry — must be caught and must name the cell and source."""
        store = ResultStore(tmp_path, config).open()
        record = _fake_record(config)
        store.merge_records([record])
        tampered = dataclasses.replace(record, error=record.error + 1e-12)
        with pytest.raises(ShardDivergenceError, match="randomized"):
            store.merge_records([tampered], source="shard w1")
        with pytest.raises(ShardDivergenceError, match="shard w1"):
            store.merge_records([tampered], source="shard w1")
        # Nothing was appended for the offending record.
        assert len(store.load_records()) == 1

    def test_divergent_transmissions_raise(self, tmp_path, config):
        store = ResultStore(tmp_path, config).open()
        store.merge_records([_fake_record(config, total=100)])
        with pytest.raises(ShardDivergenceError):
            store.merge_records([_fake_record(config, total=101)])

    def test_timing_and_telemetry_do_not_diverge(self, tmp_path, config):
        """wall_clock/telemetry are machine noise, excluded from record
        equality — a duplicate differing only there merges cleanly."""
        store = ResultStore(tmp_path, config).open()
        record = _fake_record(config)
        store.merge_records([record])
        slower = dataclasses.replace(
            record, wall_clock=123.0, telemetry={"ticks_per_sec": 1.0}
        )
        outcome = store.merge_records([slower])
        assert outcome == {"appended": 0, "duplicates": 1}

    def test_canonical_bytes_strip_timing_and_telemetry(self, config):
        record = _fake_record(config)
        noisy = dataclasses.replace(
            record, wall_clock=9.0, telemetry={"cache_hits": 4.0}
        )
        assert canonical_record_bytes(record) == canonical_record_bytes(noisy)
        payload = json.loads(canonical_record_bytes(noisy))
        assert "wall_clock" not in payload and "telemetry" not in payload
        assert payload["algorithm"] == "randomized"


class TestTrialBatchStoreCompat:
    """trial_batch is an execution mode: stores written either way are
    interchangeable, and the content key never mentions it."""

    @pytest.fixture
    def sweep_config(self):
        return ExperimentConfig(
            sizes=(32,),
            epsilon=0.3,
            trials=3,
            radius_constant=3.0,
            algorithms=("randomized", "geographic"),
        )

    def test_per_cell_store_resumes_under_trial_batch(
        self, tmp_path, sweep_config
    ):
        store = ResultStore(tmp_path, sweep_config, check_stride=4)
        per_cell = run_sweep_records(sweep_config, check_stride=4, store=store)
        fresh = []
        resumed = run_sweep_records(
            sweep_config,
            check_stride=4,
            store=ResultStore(tmp_path, sweep_config, check_stride=4),
            trial_batch=True,
            on_record=lambda record, is_fresh: fresh.append(is_fresh),
        )
        assert resumed == per_cell
        assert fresh == [False] * len(expand_grid(sweep_config))

    def test_trial_batch_store_resumes_per_cell(self, tmp_path, sweep_config):
        store = ResultStore(tmp_path, sweep_config, check_stride=4)
        batched = run_sweep_records(
            sweep_config, check_stride=4, store=store, trial_batch=True
        )
        fresh = []
        resumed = run_sweep_records(
            sweep_config,
            check_stride=4,
            store=ResultStore(tmp_path, sweep_config, check_stride=4),
            on_record=lambda record, is_fresh: fresh.append(is_fresh),
        )
        assert resumed == batched
        assert fresh == [False] * len(expand_grid(sweep_config))

    def test_content_key_ignores_trial_batch_and_stays_pinned(
        self, sweep_config
    ):
        """Execution modes (workers, trial_batch) are not sweep identity:
        one config has exactly one key, still the pinned default."""
        assert content_key(sweep_config) == content_key(sweep_config)
        assert content_key(ExperimentConfig()) == "379068f1d8668c31"

    def test_partial_store_completes_under_trial_batch(
        self, tmp_path, sweep_config
    ):
        reference = run_sweep_records(sweep_config, check_stride=4)
        store = ResultStore(tmp_path, sweep_config, check_stride=4)
        first_key = expand_grid(sweep_config)[0].key
        store.append(reference[first_key])
        resumed = run_sweep_records(
            sweep_config,
            check_stride=4,
            store=ResultStore(tmp_path, sweep_config, check_stride=4),
            trial_batch=True,
        )
        assert resumed == reference
