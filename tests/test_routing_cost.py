"""Unit tests for repro.routing.cost."""

import pytest

from repro.routing import TransmissionCounter


class TestTransmissionCounter:
    def test_starts_at_zero(self):
        assert TransmissionCounter().total == 0

    def test_charge_accumulates(self):
        counter = TransmissionCounter()
        counter.charge(3, "route")
        counter.charge(2, "route")
        counter.charge(1, "near")
        assert counter.total == 6
        assert counter.by_category["route"] == 5
        assert counter.by_category["near"] == 1

    def test_default_category(self):
        counter = TransmissionCounter()
        counter.charge()
        assert counter.by_category["message"] == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TransmissionCounter().charge(-1)

    def test_charge_zero_is_noop_total(self):
        counter = TransmissionCounter()
        counter.charge(0, "route")
        assert counter.total == 0

    def test_merge(self):
        a = TransmissionCounter()
        b = TransmissionCounter()
        a.charge(2, "near")
        b.charge(3, "near")
        b.charge(1, "flood")
        a.merge(b)
        assert a.total == 6
        assert a.by_category["near"] == 5
        assert a.by_category["flood"] == 1

    def test_snapshot_contains_total(self):
        counter = TransmissionCounter()
        counter.charge(4, "route")
        snap = counter.snapshot()
        assert snap == {"route": 4, "total": 4}

    def test_snapshot_is_detached(self):
        counter = TransmissionCounter()
        counter.charge(1, "x")
        snap = counter.snapshot()
        counter.charge(1, "x")
        assert snap["x"] == 1

    def test_reset(self):
        counter = TransmissionCounter()
        counter.charge(5)
        counter.reset()
        assert counter.total == 0
        assert not counter.by_category
