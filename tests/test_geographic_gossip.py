"""Unit tests for repro.gossip.geographic (Dimakis et al. baseline)."""

import numpy as np
import pytest

from repro.gossip import GeographicGossip, RandomizedGossip
from repro.graphs import RandomGeometricGraph


@pytest.fixture(scope="module")
def rgg():
    rng = np.random.default_rng(149)
    return RandomGeometricGraph.sample_connected(128, rng, radius_constant=2.5)


class TestGeographicGossip:
    def test_rejects_unknown_mode(self, rgg):
        with pytest.raises(ValueError):
            GeographicGossip(rgg, target_mode="telepathy")

    def test_converges_uniform_mode(self, rgg):
        algo = GeographicGossip(rgg)
        rng = np.random.default_rng(151)
        x0 = rng.normal(size=rgg.n)
        result = algo.run(x0, epsilon=0.05, rng=rng)
        assert result.converged
        assert result.values.sum() == pytest.approx(x0.sum(), rel=1e-9)

    def test_converges_position_mode(self, rgg):
        algo = GeographicGossip(rgg, target_mode="position")
        rng = np.random.default_rng(157)
        result = algo.run(rng.normal(size=rgg.n), epsilon=0.1, rng=rng)
        assert result.converged

    def test_converges_rejection_mode_and_charges_overhead(self, rgg):
        algo = GeographicGossip(rgg, target_mode="rejection")
        rng = np.random.default_rng(163)
        result = algo.run(rng.normal(size=rgg.n), epsilon=0.1, rng=rng)
        assert result.converged
        assert result.transmissions.get("route_rejected", 0) > 0

    def test_transmissions_dominated_by_routing(self, rgg):
        algo = GeographicGossip(rgg)
        rng = np.random.default_rng(167)
        result = algo.run(rng.normal(size=rgg.n), epsilon=0.1, rng=rng)
        assert result.transmissions["route"] == result.total_transmissions
        # Routed exchanges cost >> 2 per tick (that is the whole point).
        assert result.total_transmissions > 2 * result.ticks

    def test_fewer_transmissions_than_randomized_at_larger_n(self):
        # The Õ(n^1.5) vs Õ(n²) separation needs (a) n past the crossover
        # and (b) a *smooth* field: i.i.d. noise lives in fast eigenmodes
        # and hides slow mixing, while a gradient excites the slow mode
        # the spectral gap bounds (cf. E7/E8, which use gradients).
        from repro.workloads import linear_gradient_field

        rng = np.random.default_rng(149)
        big = RandomGeometricGraph.sample_connected(512, rng, radius_constant=2.0)
        x0 = linear_gradient_field(big.positions, np.random.default_rng(173))
        geo = GeographicGossip(big).run(
            x0, epsilon=0.1, rng=np.random.default_rng(2)
        )
        rnd = RandomizedGossip(big.neighbors).run(
            x0, epsilon=0.1, rng=np.random.default_rng(2)
        )
        assert geo.converged and rnd.converged
        assert geo.total_transmissions < rnd.total_transmissions

    def test_uniform_targets_exclude_self(self, rgg):
        algo = GeographicGossip(rgg)
        rng = np.random.default_rng(179)
        for node in (0, rgg.n // 2, rgg.n - 1):
            for _ in range(50):
                target = algo._choose_target(node, None, None, rng)
                assert target != node

    def test_failed_exchange_counter_starts_zero(self, rgg):
        assert GeographicGossip(rgg).failed_exchanges == 0
