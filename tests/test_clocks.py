"""Unit tests for repro.clocks."""

import numpy as np
import pytest

from repro.clocks import GlobalClock, PoissonClock, Tick, merge_ticks


class TestTick:
    def test_ordering_by_time(self):
        assert Tick(1.0, 5) < Tick(2.0, 0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Tick(0.0, 0).time = 1.0


class TestPoissonClock:
    def test_times_strictly_increase(self):
        clock = PoissonClock(0, np.random.default_rng(3))
        times = [clock.next_tick().time for _ in range(100)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_gap_matches_rate(self):
        clock = PoissonClock(0, np.random.default_rng(5), rate=4.0)
        ticks = [clock.next_tick().time for _ in range(20_000)]
        mean_gap = ticks[-1] / len(ticks)
        assert mean_gap == pytest.approx(1.0 / 4.0, rel=0.05)

    def test_ticks_until_horizon(self):
        clock = PoissonClock(2, np.random.default_rng(7))
        ticks = list(clock.ticks_until(5.0))
        assert all(t.time <= 5.0 for t in ticks)
        assert all(t.node == 2 for t in ticks)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonClock(0, np.random.default_rng(1), rate=0.0)


class TestGlobalClock:
    def test_rate_is_n(self):
        clock = GlobalClock(50, np.random.default_rng(11))
        assert clock.rate == 50.0

    def test_mean_gap(self):
        n = 20
        clock = GlobalClock(n, np.random.default_rng(13))
        for _ in range(20_000):
            clock.next_tick()
        assert clock.now / clock.tick_count == pytest.approx(1.0 / n, rel=0.05)

    def test_owners_uniform(self):
        n = 10
        clock = GlobalClock(n, np.random.default_rng(17))
        counts = np.zeros(n)
        draws = 50_000
        for _ in range(draws):
            counts[clock.next_tick().node] += 1
        # Each node should own ~1/n of ticks; 5-sigma band.
        expected = draws / n
        sigma = np.sqrt(draws * (1 / n) * (1 - 1 / n))
        assert np.abs(counts - expected).max() < 5 * sigma

    def test_next_owner_counts_ticks(self):
        clock = GlobalClock(5, np.random.default_rng(19))
        clock.next_owner()
        clock.next_owner()
        assert clock.tick_count == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GlobalClock(0, np.random.default_rng(1))
        with pytest.raises(ValueError):
            GlobalClock(5, np.random.default_rng(1), rate_per_node=-1.0)


class TestEquivalence:
    """The paper's Section 2 equivalence: n rate-1 clocks == one rate-n clock."""

    def test_merged_stream_rate(self):
        n, horizon = 10, 200.0
        rng = np.random.default_rng(23)
        clocks = [PoissonClock(i, rng) for i in range(n)]
        merged = merge_ticks(clocks, horizon)
        # Expect ~ n * horizon ticks.
        assert len(merged) == pytest.approx(n * horizon, rel=0.1)

    def test_merged_stream_sorted(self):
        rng = np.random.default_rng(29)
        clocks = [PoissonClock(i, rng) for i in range(5)]
        merged = merge_ticks(clocks, 50.0)
        times = [t.time for t in merged]
        assert times == sorted(times)

    def test_merged_owners_roughly_uniform(self):
        n, horizon = 8, 500.0
        rng = np.random.default_rng(31)
        clocks = [PoissonClock(i, rng) for i in range(n)]
        merged = merge_ticks(clocks, horizon)
        counts = np.bincount([t.node for t in merged], minlength=n)
        expected = len(merged) / n
        assert np.abs(counts - expected).max() < 5 * np.sqrt(expected)

    def test_merge_respects_horizon(self):
        rng = np.random.default_rng(37)
        clocks = [PoissonClock(i, rng) for i in range(3)]
        merged = merge_ticks(clocks, 10.0)
        assert all(t.time <= 10.0 for t in merged)
