"""Chaos and property tests for the sharded sweep service.

Two layers of assurance for ``repro.engine.{queue,service}``:

* **Chaos harness** — real worker *processes* against a real queue, one
  of them SIGKILLed while it provably holds a lease; the sweep must
  complete via reclamation and the merged store must be byte-identical
  to a serial run of the same config.
* **Property tests** — the lease queue driven deterministically with a
  fake clock and seeded schedule fuzzing; no cell lost, no cell
  duplicated in the merged store, reclamation never fires on a live
  heartbeat, and stale-lease re-execution is idempotent.
"""

import dataclasses
import json
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.executor import CellRecord, execute_cell, expand_grid
from repro.engine.queue import LeaseLost, LeaseQueue, cell_id
from repro.engine.service import (
    config_from_payload,
    config_payload,
    diff_stores,
    merge_shards,
    publish_partial_report,
    run_distributed_sweep,
    service_manifest,
    shards_root,
    worker_store,
)
from repro.engine.store import ResultStore, ShardDivergenceError
from repro.experiments import ExperimentConfig

CONFIG = ExperimentConfig(
    sizes=(32, 48),
    epsilon=0.3,
    trials=2,
    radius_constant=3.0,
    algorithms=("randomized", "geographic"),
)


@pytest.fixture(scope="module")
def serial_store(tmp_path_factory):
    """The ground truth: every grid cell executed serially, once."""
    store = ResultStore(tmp_path_factory.mktemp("serial"), CONFIG).open()
    for cell in expand_grid(CONFIG):
        store.append(execute_cell(CONFIG, cell))
    return store


def _spawn(queue_dir, worker_id, *, throttle=0.0, heartbeat=0.05):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "work",
            "--queue-dir",
            str(queue_dir),
            "--worker-id",
            worker_id,
            "--heartbeat-interval",
            str(heartbeat),
            "--poll-interval",
            "0.05",
            "--throttle",
            str(throttle),
        ]
    )


def _wait_for(predicate, timeout, message):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout}s waiting for {message}")


class TestChaosHarness:
    def test_sigkill_mid_cell_recovers_and_matches_serial(
        self, tmp_path, serial_store
    ):
        """Three workers, one SIGKILLed while it provably holds a lease.

        The victim is throttled (sleeps inside its leased window), so
        the kill is guaranteed mid-cell — its lease can only complete
        through reclamation by a surviving worker.  The merged store
        must equal the serial reference byte for byte.
        """
        queue_dir = tmp_path / "queue"
        queue = LeaseQueue.create(
            queue_dir,
            expand_grid(CONFIG),
            ttl=0.6,
            payload=service_manifest(CONFIG),
        )
        victim = _spawn(queue_dir, "victim", throttle=120.0)
        workers = []
        try:
            _wait_for(
                lambda: "victim" in queue.lease_owners(),
                timeout=30,
                message="the victim to claim a lease",
            )
            victim.kill()  # SIGKILL: heartbeats stop with the process
            victim.wait(timeout=10)
            workers = [_spawn(queue_dir, f"w{i}") for i in range(2)]
            _wait_for(queue.drained, timeout=120, message="queue drain")
            for proc in workers:
                assert proc.wait(timeout=30) == 0
        finally:
            for proc in [victim, *workers]:
                if proc.poll() is None:
                    proc.kill()

        assert queue.stats().reclamations >= 1
        log = queue.reclamation_log()
        assert any(entry["reclaimed_by"].startswith("w") for entry in log)
        # The victim's shard holds nothing: it died mid-first-cell.
        merged = ResultStore(tmp_path / "merged", CONFIG)
        report = merge_shards(merged, shards_root(queue_dir))
        assert report["appended"] == len(expand_grid(CONFIG))
        assert diff_stores(serial_store.root, merged.root) == []

    def test_coordinator_chaos_kill_end_to_end(self, tmp_path, serial_store):
        """The full coordinator with the built-in chaos knob: injected
        worker death, reclamation, respawn if needed, merged store
        bit-identical to serial, telemetry recording the recovery."""
        store = ResultStore(tmp_path / "dist", CONFIG)
        queue_dir = tmp_path / "queue"
        progress = []
        records = run_distributed_sweep(
            CONFIG,
            store=store,
            queue_dir=queue_dir,
            workers=3,
            ttl=1.0,
            heartbeat_interval=0.1,
            poll_interval=0.05,
            worker_throttle=0.3,
            chaos_kill_after=0.0,  # kill as soon as any lease is held
            on_progress=progress.append,
        )
        assert set(records) == {cell.key for cell in expand_grid(CONFIG)}
        assert diff_stores(serial_store.root, store.root) == []
        telemetry = json.loads((queue_dir / "telemetry.json").read_text())
        assert telemetry["queue"]["done"] == len(expand_grid(CONFIG))
        assert telemetry["queue"]["reclamations"] >= 1
        assert sum(w["cells"] for w in telemetry["workers"].values()) >= len(
            expand_grid(CONFIG)
        )
        assert progress  # the streaming aggregator fired
        report = (queue_dir / "partial_report.md").read_text()
        assert f"{len(records)}/{len(records)} cells complete" in report

    def test_distributed_resumes_serial_store(self, tmp_path, serial_store):
        """A store started serially finishes distributed: only the
        missing cells are enqueued, held ones are never re-executed."""
        store = ResultStore(tmp_path / "dist", CONFIG).open()
        grid = expand_grid(CONFIG)
        held = serial_store.load_records()
        for cell in grid[: len(grid) // 2]:
            store.append(held[cell.key])
        records = run_distributed_sweep(
            CONFIG,
            store=store,
            queue_dir=tmp_path / "queue",
            workers=2,
            ttl=5.0,
            heartbeat_interval=0.1,
            poll_interval=0.05,
        )
        assert set(records) == {cell.key for cell in grid}
        assert diff_stores(serial_store.root, store.root) == []
        queue = LeaseQueue.open(tmp_path / "queue")
        assert queue.stats().total == len(grid) - len(grid) // 2

    def test_nothing_pending_spawns_no_workers(self, tmp_path, serial_store):
        store = ResultStore(tmp_path / "dist", CONFIG).open()
        for record in serial_store.load_records().values():
            store.append(record)
        records = run_distributed_sweep(
            CONFIG,
            store=store,
            queue_dir=tmp_path / "queue",
            workers=2,
        )
        assert set(records) == {cell.key for cell in expand_grid(CONFIG)}
        assert not (tmp_path / "queue" / "manifest.json").exists()


class FakeClock:
    """Deterministic time for queue property tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _fabricated_record(cell):
    """A deterministic stand-in for execute_cell: the payload is a pure
    function of the cell key, so duplicate executions are byte-identical
    (exactly the property the real engine guarantees via seeding)."""
    return CellRecord(
        algorithm=cell.algorithm,
        n=cell.n,
        trial=cell.trial,
        epsilon=CONFIG.epsilon,
        transmissions={"total": cell.n * 100 + cell.trial},
        ticks=cell.n + cell.trial,
        converged=True,
        error=0.01,
    )


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    return LeaseQueue.create(
        tmp_path / "queue", expand_grid(CONFIG), ttl=10.0, clock=clock
    )


class TestLeaseQueueProperties:
    def test_claims_are_exclusive(self, queue):
        grid = expand_grid(CONFIG)
        leases = [queue.claim(f"w{i}") for i in range(len(grid) + 2)]
        held = [lease for lease in leases if lease is not None]
        assert len(held) == len(grid)
        assert leases[-1] is None and leases[-2] is None
        assert {lease.id for lease in held} == {
            cell_id(cell) for cell in grid
        }

    def test_reclamation_never_fires_on_live_heartbeat(self, queue, clock):
        """As long as the owner heartbeats within the ttl, no amount of
        elapsed time or claim pressure can steal the lease."""
        lease = queue.claim("steady")
        for _ in range(50):  # 50 × 9s = 450s total, every beat in time
            clock.advance(9.0)
            queue.heartbeat(lease)
            stolen = queue.claim("thief")
            assert stolen is None or stolen.cell != lease.cell
            if stolen is not None:
                queue.release(stolen)
        assert queue.stats().reclamations == 0
        queue.complete(lease)  # still ours to complete

    def test_stale_lease_is_reclaimed_with_audit_trail(self, queue, clock):
        lease = queue.claim("doomed")
        clock.advance(10.0)  # exactly ttl: stale
        stolen = queue.claim("rescuer")
        assert stolen.cell == lease.cell
        assert stolen.attempt == lease.attempt + 1
        (entry,) = queue.reclamation_log()
        assert entry["reclaimed_by"] == "rescuer"
        assert entry["reclaimed_at"] - entry["stale_heartbeat"] >= queue.ttl
        with pytest.raises(LeaseLost):
            queue.heartbeat(lease)

    def test_zombie_completion_is_idempotent(self, queue, clock):
        """A reclaimed-but-alive worker finishing anyway is harmless:
        complete() is an atomic overwrite of an identical marker."""
        zombie = queue.claim("zombie")
        clock.advance(99.0)
        fresh = queue.claim("rescuer")
        assert fresh.cell == zombie.cell
        queue.complete(fresh)
        queue.complete(zombie)  # late duplicate: no error, still done
        assert cell_id(zombie.cell) in queue.done_cells()
        assert queue.claim("anyone") is not None  # next cell, not this one

    def test_drained_requires_every_cell(self, queue):
        grid = expand_grid(CONFIG)
        for _ in range(len(grid) - 1):
            queue.complete(queue.claim("w"))
        assert not queue.drained()
        queue.complete(queue.claim("w"))
        assert queue.drained()
        assert queue.claim("w") is None

    def test_torn_lease_write_counts_as_stale(self, queue, clock):
        """A claimant that died mid-claim leaves an unparseable lease;
        it must be reclaimable immediately, not wedge the cell."""
        lease = queue.claim("torn")
        lease.path.write_text('{"owner": "torn", "hea')
        rescued = queue.claim("rescuer")
        assert rescued.cell == lease.cell
        (entry,) = queue.reclamation_log()
        assert entry["stale_heartbeat"] is None

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzzed_schedules_lose_and_duplicate_nothing(
        self, tmp_path, seed
    ):
        """Seeded schedule fuzzing: workers claim, beat, complete, stall,
        and crash in random interleavings; afterwards the merged store
        must hold every cell exactly once with zero divergence."""
        rng = random.Random(seed)
        clock = FakeClock()
        grid = expand_grid(CONFIG)
        queue = LeaseQueue.create(
            tmp_path / "queue", grid, ttl=5.0, clock=clock
        )
        shards = {f"w{i}": [] for i in range(3)}
        held = {}  # worker -> live lease
        for _ in range(600):
            if queue.drained():
                break
            clock.advance(rng.uniform(0.1, 1.5))
            worker = rng.choice(sorted(shards))
            lease = held.get(worker)
            if lease is None:
                lease = queue.claim(worker)
                if lease is not None:
                    held[worker] = lease
                continue
            action = rng.random()
            if action < 0.35:  # stay alive
                try:
                    queue.heartbeat(lease)
                except LeaseLost:
                    held.pop(worker)
            elif action < 0.75:  # finish the cell (maybe as a zombie)
                shards[worker].append(_fabricated_record(lease.cell))
                queue.complete(lease)
                held.pop(worker)
            elif action < 0.9:
                pass  # stall: no beat this round; may go stale
            else:  # crash: lease abandoned, worker reincarnates
                held.pop(worker)
        for worker in sorted(shards):  # drain deterministically
            while True:
                lease = queue.claim(worker)
                if lease is None:
                    break
                shards[worker].append(_fabricated_record(lease.cell))
                queue.complete(lease)
        assert queue.drained()
        merged = ResultStore(tmp_path / "merged", CONFIG).open()
        appended = duplicates = 0
        for worker in sorted(shards):
            outcome = merged.merge_records(shards[worker], source=worker)
            appended += outcome["appended"]
            duplicates += outcome["duplicates"]
        records = merged.load_records()
        assert set(records) == {cell.key for cell in grid}  # nothing lost
        assert appended == len(grid)  # nothing duplicated in the store
        executions = sum(len(s) for s in shards.values())
        assert duplicates == executions - len(grid)
        for cell in grid:  # re-execution was idempotent
            assert records[cell.key] == _fabricated_record(cell)

    def test_fuzzed_divergence_is_always_caught(self, tmp_path):
        """If a shard record were ever nondeterministic, the merge must
        refuse it — under any interleaving order of the shards."""
        grid = expand_grid(CONFIG)
        good = [_fabricated_record(cell) for cell in grid]
        evil = dataclasses.replace(
            good[3], transmissions={"total": 1}, ticks=1
        )
        for order in ([good, [evil]], [[evil], good]):
            merged = ResultStore(tmp_path / f"m{id(order)}", CONFIG).open()
            merged.merge_records(order[0], source="first")
            with pytest.raises(ShardDivergenceError):
                merged.merge_records(order[1], source="second")


class TestServiceHelpers:
    def test_config_payload_round_trips_every_field(self):
        config = ExperimentConfig(
            sizes=(16, 24),
            epsilon=0.25,
            trials=3,
            radius_constant=2.5,
            field="random",
            root_seed=7,
            algorithms=("randomized",),
            topology="grid2d",
            fields=2,
            workload="quantile",
        )
        assert config_from_payload(config_payload(config)) == config

    def test_manifest_pins_the_content_key(self):
        manifest = service_manifest(CONFIG, check_stride=4)
        restored = config_from_payload(manifest["config"])
        shard = worker_store("unused", "w0", restored, 4)
        assert shard.key == manifest["key"]

    def test_worker_refuses_a_perturbed_manifest(self, tmp_path):
        """The content-key round-trip guard: a manifest whose payload no
        longer matches its pinned key must stop the worker cold."""
        from repro.engine.service import run_worker

        manifest = service_manifest(CONFIG)
        manifest["key"] = "0" * 16  # not the key the config derives
        LeaseQueue.create(
            tmp_path / "queue",
            expand_grid(CONFIG),
            ttl=5.0,
            payload=manifest,
        )
        with pytest.raises(ValueError, match="content key"):
            run_worker(tmp_path / "queue", "w0")

    def test_merge_shards_copies_traces_first_wins(
        self, tmp_path, serial_store
    ):
        held = serial_store.load_records()
        grid = expand_grid(CONFIG)
        for worker, cells in (("w0", grid[:3]), ("w1", grid[2:])):
            shard = worker_store(tmp_path / "queue", worker, CONFIG).open()
            traces = shard.directory / "traces"
            traces.mkdir()
            for cell in cells:
                shard.append(held[cell.key])
                (traces / f"{cell_id(cell)}.jsonl").write_text(
                    f'{{"from": "{worker}"}}\n'
                )
        merged = ResultStore(tmp_path / "merged", CONFIG)
        report = merge_shards(merged, shards_root(tmp_path / "queue"))
        assert report == {
            "shards": 2,
            "appended": len(grid),
            "duplicates": 1,  # grid[2] landed in both shards
            "traces": len(grid),
        }
        overlap = merged.directory / "traces" / f"{cell_id(grid[2])}.jsonl"
        assert json.loads(overlap.read_text()) == {"from": "w0"}
        assert diff_stores(serial_store.root, merged.root) == []

    def test_partial_report_streams_shard_progress(
        self, tmp_path, serial_store
    ):
        store = ResultStore(tmp_path / "canonical", CONFIG).open()
        held = serial_store.load_records()
        grid = expand_grid(CONFIG)
        shard = worker_store(tmp_path / "queue", "w0", CONFIG).open()
        shard.append(held[grid[0].key])
        out = tmp_path / "report.md"
        covered = publish_partial_report(
            CONFIG, store, shards_root(tmp_path / "queue"), out
        )
        assert covered == 1
        assert f"1/{len(grid)} cells complete" in out.read_text()
