"""Unit tests for repro.routing.rejection."""

import numpy as np
import pytest

from repro.geometry import random_points
from repro.routing import RejectionSampler, voronoi_cell_areas


@pytest.fixture(scope="module")
def positions():
    return random_points(150, np.random.default_rng(79))


class TestVoronoiAreas:
    def test_sums_to_one(self, positions):
        areas = voronoi_cell_areas(positions, resolution=128)
        assert areas.sum() == pytest.approx(1.0)

    def test_single_node_owns_everything(self):
        areas = voronoi_cell_areas(np.array([[0.3, 0.7]]), resolution=32)
        assert areas[0] == pytest.approx(1.0)

    def test_symmetric_pair_splits_evenly(self):
        areas = voronoi_cell_areas(
            np.array([[0.25, 0.5], [0.75, 0.5]]), resolution=64
        )
        np.testing.assert_allclose(areas, [0.5, 0.5], atol=0.02)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            voronoi_cell_areas(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            voronoi_cell_areas(np.zeros((3, 2)), resolution=0)


class TestRejectionSampler:
    def test_rejects_bad_quantile(self, positions):
        with pytest.raises(ValueError):
            RejectionSampler(positions, reference_quantile=0.0)

    def test_target_distribution_sums_to_one(self, positions):
        sampler = RejectionSampler(positions)
        assert sampler.target_distribution().sum() == pytest.approx(1.0)

    def test_rejection_improves_uniformity(self, positions):
        sampler = RejectionSampler(positions, reference_quantile=0.25)
        raw = sampler.areas
        uniform = np.full(len(positions), 1.0 / len(positions))
        tv_raw = 0.5 * np.abs(raw - uniform).sum()
        assert sampler.total_variation_from_uniform() < tv_raw

    def test_lower_quantile_more_uniform(self, positions):
        loose = RejectionSampler(positions, reference_quantile=0.9)
        tight = RejectionSampler(positions, reference_quantile=0.1)
        assert (
            tight.total_variation_from_uniform()
            <= loose.total_variation_from_uniform()
        )

    def test_expected_proposals_at_least_one(self, positions):
        sampler = RejectionSampler(positions)
        assert sampler.expected_proposals() >= 1.0

    def test_sample_returns_valid_node(self, positions):
        sampler = RejectionSampler(positions)
        rng = np.random.default_rng(83)
        node, proposals = sampler.sample(rng)
        assert 0 <= node < len(positions)
        assert proposals >= 1

    def test_empirical_distribution_close_to_target(self, positions):
        sampler = RejectionSampler(positions, reference_quantile=0.25)
        rng = np.random.default_rng(89)
        draws = 6000
        counts = np.zeros(len(positions))
        for _ in range(draws):
            node, _ = sampler.sample(rng)
            counts[node] += 1
        empirical = counts / draws
        tv = 0.5 * np.abs(empirical - sampler.target_distribution()).sum()
        # Sampling noise at this sample size; the point is rough agreement.
        assert tv < 0.15

    def test_mean_proposals_matches_expectation(self, positions):
        sampler = RejectionSampler(positions, reference_quantile=0.25)
        rng = np.random.default_rng(97)
        draws = 2000
        used = sum(sampler.sample(rng)[1] for _ in range(draws)) / draws
        assert used == pytest.approx(sampler.expected_proposals(), rel=0.15)


class TestChiSquareUniformity:
    """Chi-square check: rejection corrects the position-mode Voronoi bias.

    Raw proposals (what ``position`` target mode uses: nearest node to a
    uniform random location) are distributed by Voronoi cell area and fail
    a chi-square uniformity test overwhelmingly.  Accepted targets follow
    the sampler's exact post-rejection law (chi-square consistent) and
    shed the vast majority of the raw bias.
    """

    DRAWS = 9000  # 60 expected counts per node: chi-square is well-posed

    @pytest.fixture(scope="class")
    def counts(self, positions):
        from scipy import stats

        sampler = RejectionSampler(positions, reference_quantile=0.05)
        accepted = np.zeros(len(positions))
        rng = np.random.default_rng(101)
        for _ in range(self.DRAWS):
            node, _ = sampler.sample(rng)
            accepted[node] += 1
        raw = np.zeros(len(positions))
        rng = np.random.default_rng(103)
        for _ in range(self.DRAWS):
            raw[sampler.propose(rng)] += 1
        return sampler, accepted, raw, stats

    def test_raw_position_proposals_fail_uniformity(self, counts):
        _, _, raw, stats = counts
        _, p_value = stats.chisquare(raw)
        assert p_value < 1e-10

    def test_accepted_targets_match_post_rejection_law(self, counts):
        sampler, accepted, _, stats = counts
        expected = sampler.target_distribution() * self.DRAWS
        _, p_value = stats.chisquare(accepted, f_exp=expected)
        assert p_value > 0.01

    def test_rejection_sheds_most_of_the_voronoi_bias(self, counts):
        _, accepted, raw, stats = counts
        chi_accepted, _ = stats.chisquare(accepted)
        chi_raw, _ = stats.chisquare(raw)
        # Measured ~15x reduction (205 vs 3145 at this seed); assert a
        # conservative 5x so sampling noise never flakes the test.
        assert chi_accepted < 0.2 * chi_raw
