"""Unit tests for repro.routing.rejection."""

import numpy as np
import pytest

from repro.geometry import random_points
from repro.routing import RejectionSampler, voronoi_cell_areas


@pytest.fixture(scope="module")
def positions():
    return random_points(150, np.random.default_rng(79))


class TestVoronoiAreas:
    def test_sums_to_one(self, positions):
        areas = voronoi_cell_areas(positions, resolution=128)
        assert areas.sum() == pytest.approx(1.0)

    def test_single_node_owns_everything(self):
        areas = voronoi_cell_areas(np.array([[0.3, 0.7]]), resolution=32)
        assert areas[0] == pytest.approx(1.0)

    def test_symmetric_pair_splits_evenly(self):
        areas = voronoi_cell_areas(
            np.array([[0.25, 0.5], [0.75, 0.5]]), resolution=64
        )
        np.testing.assert_allclose(areas, [0.5, 0.5], atol=0.02)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            voronoi_cell_areas(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            voronoi_cell_areas(np.zeros((3, 2)), resolution=0)


class TestRejectionSampler:
    def test_rejects_bad_quantile(self, positions):
        with pytest.raises(ValueError):
            RejectionSampler(positions, reference_quantile=0.0)

    def test_target_distribution_sums_to_one(self, positions):
        sampler = RejectionSampler(positions)
        assert sampler.target_distribution().sum() == pytest.approx(1.0)

    def test_rejection_improves_uniformity(self, positions):
        sampler = RejectionSampler(positions, reference_quantile=0.25)
        raw = sampler.areas
        uniform = np.full(len(positions), 1.0 / len(positions))
        tv_raw = 0.5 * np.abs(raw - uniform).sum()
        assert sampler.total_variation_from_uniform() < tv_raw

    def test_lower_quantile_more_uniform(self, positions):
        loose = RejectionSampler(positions, reference_quantile=0.9)
        tight = RejectionSampler(positions, reference_quantile=0.1)
        assert (
            tight.total_variation_from_uniform()
            <= loose.total_variation_from_uniform()
        )

    def test_expected_proposals_at_least_one(self, positions):
        sampler = RejectionSampler(positions)
        assert sampler.expected_proposals() >= 1.0

    def test_sample_returns_valid_node(self, positions):
        sampler = RejectionSampler(positions)
        rng = np.random.default_rng(83)
        node, proposals = sampler.sample(rng)
        assert 0 <= node < len(positions)
        assert proposals >= 1

    def test_empirical_distribution_close_to_target(self, positions):
        sampler = RejectionSampler(positions, reference_quantile=0.25)
        rng = np.random.default_rng(89)
        draws = 6000
        counts = np.zeros(len(positions))
        for _ in range(draws):
            node, _ = sampler.sample(rng)
            counts[node] += 1
        empirical = counts / draws
        tv = 0.5 * np.abs(empirical - sampler.target_distribution()).sum()
        # Sampling noise at this sample size; the point is rough agreement.
        assert tv < 0.15

    def test_mean_proposals_matches_expectation(self, positions):
        sampler = RejectionSampler(positions, reference_quantile=0.25)
        rng = np.random.default_rng(97)
        draws = 2000
        used = sum(sampler.sample(rng)[1] for _ in range(draws)) / draws
        assert used == pytest.approx(sampler.expected_proposals(), rel=0.15)
