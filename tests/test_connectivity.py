"""Unit tests for repro.graphs.connectivity."""

import numpy as np
import pytest

from repro.graphs import (
    RandomGeometricGraph,
    UnionFind,
    connected_components,
    connectivity_probability,
    connectivity_radius,
    is_connected,
    largest_component,
    ring_graph_adjacency,
)


def adjacency_from_edges(n, edges):
    out = [[] for _ in range(n)]
    for u, v in edges:
        out[u].append(v)
        out[v].append(u)
    return [np.array(sorted(adj), dtype=np.int64) for adj in out]


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.components == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.union(2, 3)
        assert uf.components == 2
        assert not uf.union(1, 0)  # already merged

    def test_find_transitive(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_component_size(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(4) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UnionFind(0)


class TestConnectivityPredicates:
    def test_path_graph_connected(self):
        adj = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert is_connected(adj)

    def test_two_islands_disconnected(self):
        adj = adjacency_from_edges(4, [(0, 1), (2, 3)])
        assert not is_connected(adj)

    def test_empty_graph_connected(self):
        assert is_connected([])

    def test_singleton_connected(self):
        assert is_connected([np.array([], dtype=np.int64)])

    def test_ring_is_connected(self):
        assert is_connected(ring_graph_adjacency(11))


class TestComponents:
    def test_components_partition_nodes(self):
        adj = adjacency_from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6)])
        comps = connected_components(adj)
        assert sorted(len(c) for c in comps) == [2, 2, 3]
        all_nodes = sorted(np.concatenate(comps).tolist())
        assert all_nodes == list(range(7))

    def test_components_sorted_by_size(self):
        adj = adjacency_from_edges(6, [(0, 1), (2, 3), (3, 4)])
        comps = connected_components(adj)
        assert len(comps[0]) >= len(comps[1]) >= len(comps[2])

    def test_largest_component(self):
        adj = adjacency_from_edges(6, [(0, 1), (1, 2), (4, 5)])
        np.testing.assert_array_equal(largest_component(adj), [0, 1, 2])


class TestConnectivityProbability:
    def test_near_one_at_generous_radius(self):
        rng = np.random.default_rng(23)
        p = connectivity_probability(
            150, radius=connectivity_radius(150, constant=4.0), trials=20, rng=rng
        )
        assert p >= 0.95

    def test_near_zero_at_tiny_radius(self):
        rng = np.random.default_rng(29)
        p = connectivity_probability(150, radius=0.01, trials=10, rng=rng)
        assert p == 0.0

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            connectivity_probability(10, 0.1, 0, np.random.default_rng(1))

    def test_monotone_in_radius_on_average(self):
        # A sanity check of the sharp threshold: generous radius beats tiny.
        rng = np.random.default_rng(31)
        small = connectivity_probability(100, 0.05, 10, rng)
        large = connectivity_probability(100, 0.4, 10, rng)
        assert large >= small

    def test_agreement_with_networkx(self):
        import networkx as nx

        rng = np.random.default_rng(37)
        graph = RandomGeometricGraph.sample(120, rng)
        assert is_connected(graph.neighbors) == nx.is_connected(
            graph.to_networkx()
        )
