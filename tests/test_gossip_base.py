"""Unit tests for repro.gossip.base (via a minimal concrete algorithm)."""

import numpy as np
import pytest

from repro.gossip.base import AsynchronousGossip
from repro.routing import TransmissionCounter


class PairAverager(AsynchronousGossip):
    """Smallest possible gossip: average with the next node (mod n)."""

    name = "pair-averager"

    def tick(self, node, values, counter, rng):
        partner = (node + 1) % self.n
        average = 0.5 * (values[node] + values[partner])
        values[node] = average
        values[partner] = average
        counter.charge(2, "near")


class FrozenAlgorithm(AsynchronousGossip):
    """Never changes anything; for budget-exhaustion tests."""

    name = "frozen"

    def tick(self, node, values, counter, rng):
        counter.charge(1, "noop")


class TestRunDriver:
    def test_converges_and_reports(self):
        algo = PairAverager(8)
        rng = np.random.default_rng(3)
        x0 = np.arange(8.0)
        result = algo.run(x0, epsilon=0.01, rng=rng)
        assert result.converged
        assert result.error <= 0.01
        assert result.algorithm == "pair-averager"
        np.testing.assert_allclose(result.values.mean(), x0.mean())

    def test_initial_values_untouched(self):
        algo = PairAverager(5)
        x0 = np.arange(5.0)
        saved = x0.copy()
        algo.run(x0, epsilon=0.1, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(x0, saved)

    def test_result_contains_transmissions(self):
        algo = PairAverager(6)
        result = algo.run(
            np.arange(6.0), epsilon=0.05, rng=np.random.default_rng(2)
        )
        assert result.total_transmissions == result.transmissions["near"]
        assert result.total_transmissions == 2 * result.ticks

    def test_budget_exhaustion_reports_not_converged(self):
        algo = FrozenAlgorithm(4)
        result = algo.run(
            np.array([0.0, 1.0, 2.0, 3.0]),
            epsilon=0.01,
            rng=np.random.default_rng(5),
            max_ticks=100,
        )
        assert not result.converged
        assert result.ticks == 100
        assert result.error == pytest.approx(1.0)

    def test_already_converged_input(self):
        algo = PairAverager(4)
        result = algo.run(
            np.ones(4), epsilon=0.5, rng=np.random.default_rng(7)
        )
        assert result.converged
        assert result.ticks == 0
        assert result.total_transmissions == 0

    def test_trace_starts_at_zero_and_ends_at_final(self):
        algo = PairAverager(8)
        result = algo.run(
            np.arange(8.0), epsilon=0.01, rng=np.random.default_rng(11)
        )
        assert result.trace.points[0].transmissions == 0
        assert result.trace.points[0].error == pytest.approx(1.0)
        assert result.trace.final_error == pytest.approx(result.error)

    def test_rejects_bad_epsilon(self):
        algo = PairAverager(4)
        with pytest.raises(ValueError):
            algo.run(np.arange(4.0), epsilon=0.0, rng=np.random.default_rng(1))

    def test_rejects_wrong_shape(self):
        algo = PairAverager(4)
        with pytest.raises(ValueError):
            algo.run(np.arange(5.0), epsilon=0.1, rng=np.random.default_rng(1))

    def test_rejects_tiny_networks(self):
        with pytest.raises(ValueError):
            PairAverager(1)

    def test_check_every_controls_trace_density(self):
        algo = PairAverager(8)
        dense = algo.run(
            np.arange(8.0),
            epsilon=0.01,
            rng=np.random.default_rng(13),
            check_every=1,
            trace_thinning=0.0,
        )
        sparse = algo.run(
            np.arange(8.0),
            epsilon=0.01,
            rng=np.random.default_rng(13),
            check_every=50,
            trace_thinning=0.0,
        )
        assert len(dense.trace) > len(sparse.trace)
