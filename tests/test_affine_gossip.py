"""Unit tests for repro.gossip.affine (Lemma 1 / Lemma 2 dynamics)."""

import numpy as np
import pytest

from repro.gossip import (
    AffineGossipKn,
    PerturbedAffineGossipKn,
    affine_pair_update,
    sample_alphas,
)


class TestSampleAlphas:
    def test_range(self):
        alphas = sample_alphas(1000, np.random.default_rng(3))
        assert (alphas > 1 / 3).all()
        assert (alphas < 1 / 2).all()

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            sample_alphas(0, np.random.default_rng(1))


class TestAffinePairUpdate:
    def test_conserves_sum(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=10)
        total = values.sum()
        affine_pair_update(values, 2, 7, 0.4, 0.45)
        assert values.sum() == pytest.approx(total)

    def test_uses_pre_exchange_values(self):
        values = np.array([1.0, 0.0])
        affine_pair_update(values, 0, 1, 0.4, 0.4)
        # x0 = 0.6*1 + 0.4*0 = 0.6 ; x1 = 0.6*0 + 0.4*1 = 0.4
        np.testing.assert_allclose(values, [0.6, 0.4])

    def test_asymmetric_coefficients(self):
        values = np.array([1.0, -1.0])
        affine_pair_update(values, 0, 1, 0.35, 0.45)
        # x0 = 0.65*1 + 0.45*(-1) = 0.2 ; x1 = 0.55*(-1) + 0.35*1 = -0.2
        np.testing.assert_allclose(values, [0.2, -0.2])

    def test_equal_half_is_plain_averaging(self):
        values = np.array([3.0, 5.0])
        affine_pair_update(values, 0, 1, 0.5, 0.5)
        np.testing.assert_allclose(values, [4.0, 4.0])

    def test_rejects_same_node(self):
        with pytest.raises(ValueError):
            affine_pair_update(np.zeros(3), 1, 1, 0.4, 0.4)

    def test_non_convex_coefficient_expands(self):
        # α > 1 (the hierarchical regime before normalisation) moves a value
        # past its partner — the "counter-intuitive" affine behaviour.
        values = np.array([0.0, 1.0])
        affine_pair_update(values, 0, 1, 2.0, 2.0)
        assert values[0] > 1.0 or values[0] < 0.0


class TestAffineGossipKn:
    def test_requires_alphas_or_rng(self):
        with pytest.raises(ValueError):
            AffineGossipKn(10)

    def test_rejects_wrong_alpha_shape(self):
        with pytest.raises(ValueError):
            AffineGossipKn(10, alphas=np.full(9, 0.4))

    def test_converges(self):
        n = 64
        algo = AffineGossipKn(n, alpha_rng=np.random.default_rng(7))
        rng = np.random.default_rng(11)
        x0 = rng.normal(size=n)
        result = algo.run(x0, epsilon=0.02, rng=rng)
        assert result.converged
        assert result.values.sum() == pytest.approx(x0.sum(), rel=1e-9)

    def test_lemma1_contraction_in_expectation(self):
        # Average over trials: E||x(t)||^2 should sit below (1 - 1/2n)^t.
        n, ticks, trials = 16, 400, 40
        bound_rate = 1 - 1 / (2 * n)
        rng = np.random.default_rng(13)
        ratios = []
        for _ in range(trials):
            algo = AffineGossipKn(n, alpha_rng=rng)
            x = rng.normal(size=n)
            x -= x.mean()
            x0_sq = (x**2).sum()
            from repro.routing import TransmissionCounter

            counter = TransmissionCounter()
            for _t in range(ticks):
                algo.tick(int(rng.integers(n)), x, counter, rng)
            ratios.append((x**2).sum() / x0_sq)
        assert np.mean(ratios) < bound_rate**ticks

    def test_partner_never_self(self):
        algo = AffineGossipKn(5, alpha_rng=np.random.default_rng(17))
        rng = np.random.default_rng(19)
        for node in range(5):
            for _ in range(100):
                assert algo._choose_partner(node, rng) != node


class TestPerturbedAffineGossipKn:
    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            PerturbedAffineGossipKn(
                8, noise_bound=-0.1, alpha_rng=np.random.default_rng(1)
            )

    def test_sum_still_conserved(self):
        n = 32
        algo = PerturbedAffineGossipKn(
            n, noise_bound=0.01, alpha_rng=np.random.default_rng(23)
        )
        rng = np.random.default_rng(29)
        x0 = rng.normal(size=n)
        result = algo.run(x0, epsilon=0.2, rng=rng, max_ticks=5000)
        assert result.values.sum() == pytest.approx(x0.sum(), rel=1e-9)

    def test_error_floor_scales_with_noise(self):
        # With large noise the process cannot reach a tight ε.
        n = 32
        rng = np.random.default_rng(31)
        x0 = rng.normal(size=n)
        noisy = PerturbedAffineGossipKn(
            n, noise_bound=0.5, alpha_rng=np.random.default_rng(3)
        ).run(x0, epsilon=1e-4, rng=np.random.default_rng(4), max_ticks=20_000)
        quiet = PerturbedAffineGossipKn(
            n, noise_bound=1e-6, alpha_rng=np.random.default_rng(3)
        ).run(x0, epsilon=1e-4, rng=np.random.default_rng(4), max_ticks=20_000)
        assert quiet.error < noisy.error

    def test_zero_noise_matches_unperturbed_statistics(self):
        n = 24
        x0 = np.random.default_rng(37).normal(size=n)
        a = PerturbedAffineGossipKn(
            n, noise_bound=0.0, alpha_rng=np.random.default_rng(5)
        ).run(x0, epsilon=0.05, rng=np.random.default_rng(6))
        b = AffineGossipKn(n, alpha_rng=np.random.default_rng(5)).run(
            x0, epsilon=0.05, rng=np.random.default_rng(6)
        )
        # Same alpha seed; tick-level RNG consumption differs (the noise
        # draw), so require qualitative agreement only.
        assert a.converged and b.converged
