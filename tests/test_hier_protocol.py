"""Unit tests for repro.gossip.hierarchical.protocol (async state machine)."""

import numpy as np
import pytest

from repro.gossip.hierarchical import AsyncHierarchicalProtocol
from repro.graphs import RandomGeometricGraph
from repro.hierarchy import HierarchyTree


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(229)
    graph = RandomGeometricGraph.sample_connected(128, rng, radius_constant=2.5)
    tree = HierarchyTree.build(graph.positions, leaf_threshold=16.0)
    field = np.random.default_rng(233).normal(size=graph.n)
    return graph, tree, field


class TestInitialization:
    def test_rejects_bad_separation(self, setup):
        graph, tree, _ = setup
        with pytest.raises(ValueError):
            AsyncHierarchicalProtocol(graph, tree=tree, separation=0.5)

    def test_all_states_off_before_run(self, setup):
        graph, tree, _ = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        assert not any(s.local_on or s.global_on for s in proto.states)

    def test_root_switched_on_by_run(self, setup):
        graph, tree, field = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        proto.run(field, epsilon=0.9, rng=np.random.default_rng(1), max_ticks=1)
        assert proto.states[tree.root.supernode].global_on

    def test_supernode_square_map_shallowest_wins(self, setup):
        graph, tree, _ = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        assert proto._square_of[tree.root.supernode] is tree.root


class TestExecution:
    def test_converges(self, setup):
        graph, tree, field = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        result = proto.run(field, epsilon=0.3, rng=np.random.default_rng(5))
        assert result.converged
        assert result.error <= 0.3

    def test_sum_conserved(self, setup):
        graph, tree, field = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        result = proto.run(field, epsilon=0.3, rng=np.random.default_rng(7))
        assert result.values.sum() == pytest.approx(field.sum(), abs=1e-9)

    def test_far_exchanges_happen(self, setup):
        graph, tree, field = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        proto.run(field, epsilon=0.3, rng=np.random.default_rng(9))
        assert proto.far_exchanges > 0

    def test_transmission_categories(self, setup):
        graph, tree, field = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        result = proto.run(field, epsilon=0.3, rng=np.random.default_rng(11))
        assert result.transmissions.get("near", 0) > 0
        assert result.transmissions.get("far", 0) > 0
        assert result.transmissions.get("activation", 0) > 0

    def test_busy_guard_defers_overlapping_exchanges(self, setup):
        graph, tree, field = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree, separation=1.0)
        proto.run(field, epsilon=0.3, rng=np.random.default_rng(13))
        # With no rate separation at all, the guard must be doing real work.
        assert proto.busy_aborts > 0

    def test_rerun_reuses_instance(self, setup):
        graph, tree, field = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        first = proto.run(field, epsilon=0.4, rng=np.random.default_rng(15))
        second = proto.run(field, epsilon=0.4, rng=np.random.default_rng(15))
        assert first.converged and second.converged
        assert first.total_transmissions == second.total_transmissions

    def test_time_budgets_monotone(self, setup):
        graph, tree, field = setup
        proto = AsyncHierarchicalProtocol(graph, tree=tree)
        proto.run(field, epsilon=0.4, rng=np.random.default_rng(17), max_ticks=10)
        budgets = proto._time_budgets
        assert all(b > 0 for b in budgets)
        assert budgets[0] > budgets[-1]
