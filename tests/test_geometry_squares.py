"""Unit tests for repro.geometry.squares."""

import numpy as np
import pytest

from repro.geometry import GridPartition, Square, UNIT_SQUARE, random_points


class TestSquare:
    def test_unit_square_constants(self):
        assert UNIT_SQUARE.x0 == 0.0
        assert UNIT_SQUARE.side == 1.0
        assert UNIT_SQUARE.area == 1.0
        np.testing.assert_allclose(UNIT_SQUARE.center, [0.5, 0.5])

    def test_rejects_nonpositive_side(self):
        with pytest.raises(ValueError):
            Square(0.0, 0.0, 0.0)

    def test_bounds_properties(self):
        sq = Square(0.25, 0.5, 0.25)
        assert sq.x1 == pytest.approx(0.5)
        assert sq.y1 == pytest.approx(0.75)
        assert sq.diameter == pytest.approx(0.25 * np.sqrt(2.0))

    def test_contains(self):
        sq = Square(0.0, 0.0, 0.5)
        assert sq.contains(np.array([0.25, 0.25]))
        assert sq.contains(np.array([0.5, 0.5]))  # closed boundary
        assert not sq.contains(np.array([0.51, 0.25]))

    def test_contains_mask_matches_scalar(self):
        rng = np.random.default_rng(5)
        pts = random_points(200, rng)
        sq = Square(0.2, 0.3, 0.4)
        mask = sq.contains_mask(pts)
        expected = np.array([sq.contains(p) for p in pts])
        np.testing.assert_array_equal(mask, expected)

    def test_subdivide_tiles_parent(self):
        children = UNIT_SQUARE.subdivide(4)
        assert len(children) == 16
        assert sum(c.area for c in children) == pytest.approx(1.0)
        # Row-major from bottom-left: first child at the origin.
        assert children[0].x0 == 0.0 and children[0].y0 == 0.0
        assert children[5].x0 == pytest.approx(0.25)
        assert children[5].y0 == pytest.approx(0.25)

    def test_subdivide_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            UNIT_SQUARE.subdivide(0)

    def test_sample_point_inside(self):
        rng = np.random.default_rng(11)
        sq = Square(0.6, 0.1, 0.2)
        for _ in range(100):
            assert sq.contains(sq.sample_point(rng))


class TestGridPartition:
    def test_len_and_cells(self):
        part = GridPartition(UNIT_SQUARE, 3)
        assert len(part) == 9
        assert len(part.cells) == 9
        assert part.cell_side == pytest.approx(1.0 / 3.0)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            GridPartition(UNIT_SQUARE, 0)

    def test_cell_index_round_trip(self):
        part = GridPartition(UNIT_SQUARE, 5)
        rng = np.random.default_rng(2)
        pts = random_points(500, rng)
        for p in pts:
            assert part.cell(part.cell_index(p)).contains(p)

    def test_cell_indices_vectorised_matches_scalar(self):
        part = GridPartition(UNIT_SQUARE, 7)
        pts = random_points(300, np.random.default_rng(9))
        vec = part.cell_indices(pts)
        scalar = np.array([part.cell_index(p) for p in pts])
        np.testing.assert_array_equal(vec, scalar)

    def test_boundary_points_clamped(self):
        part = GridPartition(UNIT_SQUARE, 4)
        assert part.cell_index(np.array([1.0, 1.0])) == 15
        assert part.cell_index(np.array([0.0, 0.0])) == 0

    def test_row_col_inverse(self):
        part = GridPartition(UNIT_SQUARE, 6)
        for idx in range(36):
            row, col = part.row_col(idx)
            assert row * 6 + col == idx

    def test_neighbors_of_corner_cell(self):
        part = GridPartition(UNIT_SQUARE, 4)
        assert sorted(part.neighbors_of_cell(0)) == [1, 4, 5]

    def test_neighbors_of_interior_cell(self):
        part = GridPartition(UNIT_SQUARE, 4)
        assert len(part.neighbors_of_cell(5)) == 8

    def test_partition_of_subsquare(self):
        parent = Square(0.5, 0.5, 0.5)
        part = GridPartition(parent, 2)
        assert part.cell(0).x0 == pytest.approx(0.5)
        assert part.cell_index(np.array([0.9, 0.9])) == 3
