"""Unit tests for repro.workloads.fields."""

import numpy as np
import pytest

from repro.geometry import random_points
from repro.workloads import (
    FIELD_GENERATORS,
    WORKLOADS,
    build_field_matrix,
    checkerboard_field,
    ensemble_field,
    gaussian_plume_field,
    linear_gradient_field,
    random_field,
    spike_field,
)


@pytest.fixture(scope="module")
def positions():
    return random_points(300, np.random.default_rng(73))


class TestSpike:
    def test_single_nonzero(self, positions):
        values = spike_field(positions, np.random.default_rng(1))
        assert np.count_nonzero(values) == 1
        assert values.max() == 1.0

    def test_magnitude(self, positions):
        values = spike_field(positions, np.random.default_rng(2), magnitude=5.0)
        assert values.sum() == 5.0


class TestGradient:
    def test_is_affine_in_position(self, positions):
        values = linear_gradient_field(positions, np.random.default_rng(3))
        # Fit a plane; residuals must vanish.
        design = np.column_stack([positions, np.ones(len(positions))])
        _, residuals, *_ = np.linalg.lstsq(design, values, rcond=None)
        assert residuals.size == 0 or residuals[0] < 1e-18

    def test_noise_breaks_plane(self, positions):
        values = linear_gradient_field(
            positions, np.random.default_rng(5), noise=0.5
        )
        design = np.column_stack([positions, np.ones(len(positions))])
        _, residuals, *_ = np.linalg.lstsq(design, values, rcond=None)
        assert residuals[0] > 1.0


class TestPlume:
    def test_peak_near_center(self, positions):
        rng = np.random.default_rng(7)
        values = gaussian_plume_field(positions, rng, width=0.2)
        assert values.max() <= 1.0
        assert values.min() >= 0.0

    def test_narrow_plume_is_sparse(self, positions):
        wide = gaussian_plume_field(
            positions, np.random.default_rng(9), width=0.5
        )
        narrow = gaussian_plume_field(
            positions, np.random.default_rng(9), width=0.02
        )
        assert (narrow > 0.1).sum() < (wide > 0.1).sum()

    def test_validation(self, positions):
        with pytest.raises(ValueError):
            gaussian_plume_field(positions, np.random.default_rng(1), width=0.0)


class TestCheckerboard:
    def test_values_plus_minus_one(self, positions):
        values = checkerboard_field(positions, np.random.default_rng(11))
        assert set(np.unique(values)) <= {-1.0, 1.0}

    def test_neighbouring_cells_alternate(self):
        positions = np.array([[0.05, 0.05], [0.2, 0.05]])  # adjacent cells
        values = checkerboard_field(
            positions, np.random.default_rng(1), cells_per_axis=8
        )
        assert values[0] == -values[1]

    def test_validation(self, positions):
        with pytest.raises(ValueError):
            checkerboard_field(positions, np.random.default_rng(1), cells_per_axis=0)


class TestRandomField:
    def test_statistics(self, positions):
        values = random_field(positions, np.random.default_rng(13), scale=2.0)
        assert abs(values.mean()) < 0.5
        assert 1.3 < values.std() < 2.7

    def test_validation(self, positions):
        with pytest.raises(ValueError):
            random_field(positions, np.random.default_rng(1), scale=0.0)


class TestRegistry:
    def test_contains_all_generators(self):
        assert set(FIELD_GENERATORS) == {
            "spike", "gradient", "plume", "checkerboard", "random",
        }

    def test_all_generators_produce_correct_shape(self, positions):
        rng = np.random.default_rng(17)
        for name, generator in FIELD_GENERATORS.items():
            values = generator(positions, rng)
            assert values.shape == (len(positions),), name

    def test_all_reject_empty_positions(self):
        rng = np.random.default_rng(19)
        for generator in FIELD_GENERATORS.values():
            with pytest.raises(ValueError):
                generator(np.empty((0, 2)), rng)


class TestStackedWorkloads:
    """Shape and column-0 contracts of the multi-field builders.

    (Exactness of the indicator stacks against NumPy answers, and the
    end-to-end gossip runs over them, live in ``test_multifield.py``.)
    """

    def test_registry_names(self):
        assert set(WORKLOADS) == {"ensemble", "quantile", "histogram"}

    def test_every_workload_produces_n_by_k(self, positions):
        for name in WORKLOADS:
            matrix = build_field_matrix(
                name, "random", positions, np.random.default_rng(23), 6
            )
            assert matrix.shape == (len(positions), 6), name

    def test_every_workload_column0_is_the_scalar_field(self, positions):
        for name in WORKLOADS:
            matrix = build_field_matrix(
                name, "gradient", positions, np.random.default_rng(29), 5
            )
            scalar = FIELD_GENERATORS["gradient"](
                positions, np.random.default_rng(29)
            )
            np.testing.assert_array_equal(matrix[:, 0], scalar, err_msg=name)

    def test_ensemble_columns_are_independent_draws(self, positions):
        matrix = ensemble_field(positions, np.random.default_rng(31), k=4)
        for a in range(4):
            for b in range(a + 1, 4):
                assert not np.array_equal(matrix[:, a], matrix[:, b])

    def test_ensemble_rejects_unknown_base(self, positions):
        with pytest.raises(ValueError):
            ensemble_field(positions, np.random.default_rng(1), base="no-such")

    def test_k_one_is_a_single_column(self, positions):
        matrix = build_field_matrix(
            "ensemble", "random", positions, np.random.default_rng(37), 1
        )
        assert matrix.shape == (len(positions), 1)
