"""Unit tests for repro.analysis.theory."""

import numpy as np
import pytest

from repro.analysis import (
    geographic_gossip_prediction,
    hierarchical_prediction,
    paper_headline_form,
    randomized_gossip_prediction,
)
from repro.experiments import fit_loglog_slope


def slope_of(fn, sizes=(1024, 4096, 16384, 65536), **kwargs):
    costs = [fn(n, 0.1, **kwargs) for n in sizes]
    return fit_loglog_slope(np.array(sizes), np.array(costs))


class TestPredictedExponents:
    def test_randomized_slope_near_two(self):
        slope = slope_of(randomized_gossip_prediction)
        assert 1.7 < slope < 2.05

    def test_geographic_slope_near_three_halves(self):
        slope = slope_of(geographic_gossip_prediction)
        assert 1.4 < slope < 1.65

    def test_hierarchical_slope_near_one(self):
        slope = slope_of(hierarchical_prediction)
        assert 0.9 < slope < 1.45

    def test_ordering_at_asymptotic_n(self):
        # The paper's ranking emerges at large n: the headline shape
        # n·polylog^{loglog} undercuts geographic's n^1.5 which undercuts
        # randomized's n²/log n.
        n, eps = 10**8, 0.1
        headline = paper_headline_form(n, eps)
        geographic = geographic_gossip_prediction(n, eps)
        randomized = randomized_gossip_prediction(n, eps)
        assert headline < geographic < randomized

    def test_worst_case_recurrence_has_huge_constants(self):
        # The honest cost story: the non-adaptive recurrence (paper
        # constants structure) exceeds geographic gossip at simulable n —
        # the asymptotic win needs very large n.
        n, eps = 4096, 0.1
        assert hierarchical_prediction(n, eps) > geographic_gossip_prediction(
            n, eps
        )

    def test_headline_form_slope_approaches_one(self):
        # d log(cost)/d log(n) → 1 as n grows (the o(1) shrinks).
        small = fit_loglog_slope(
            np.array([1e3, 4e3]),
            np.array([paper_headline_form(1000, 0.1), paper_headline_form(4000, 0.1)]),
        )
        large = fit_loglog_slope(
            np.array([1e8, 4e8]),
            np.array(
                [
                    paper_headline_form(10**8, 0.1),
                    paper_headline_form(4 * 10**8, 0.1),
                ]
            ),
        )
        assert large < small
        assert large < 1.8


class TestPredictionBehaviour:
    def test_all_grow_with_n(self):
        for fn in (
            randomized_gossip_prediction,
            geographic_gossip_prediction,
            hierarchical_prediction,
        ):
            assert fn(4096, 0.1) > fn(512, 0.1)

    def test_all_grow_as_epsilon_shrinks(self):
        for fn in (
            randomized_gossip_prediction,
            geographic_gossip_prediction,
            hierarchical_prediction,
        ):
            assert fn(4096, 0.01) > fn(4096, 0.3)

    def test_validation(self):
        for fn in (
            randomized_gossip_prediction,
            geographic_gossip_prediction,
            hierarchical_prediction,
            paper_headline_form,
        ):
            with pytest.raises(ValueError):
                fn(2, 0.1)
            with pytest.raises(ValueError):
                fn(100, 1.5)

    def test_rough_agreement_with_measured_randomized(self):
        # The model should land within an order of magnitude of a real run.
        from repro.gossip import RandomizedGossip
        from repro.graphs import RandomGeometricGraph

        rng = np.random.default_rng(61)
        n, eps = 256, 0.1
        graph = RandomGeometricGraph.sample_connected(n, rng)
        x0 = np.random.default_rng(67).normal(size=n)
        measured = (
            RandomizedGossip(graph.neighbors)
            .run(x0, eps, np.random.default_rng(71))
            .total_transmissions
        )
        predicted = randomized_gossip_prediction(n, eps)
        assert predicted / 10 < measured < predicted * 10
