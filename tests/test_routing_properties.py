"""Property-based tests for routing invariants (hypothesis).

Greedy forwarding's key structural guarantees hold on *any* geometric
graph, not just w.h.p. instances:

* strict progress — every hop strictly decreases distance to the target,
  so a route can never visit a node twice and always terminates within
  n − 1 hops;
* delivery soundness — a route reported delivered ends at the target;
* flooding — reaches exactly the member-reachable set, never leaves the
  member set, and charges exactly one transmission per reached node.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import RandomGeometricGraph
from repro.routing import GreedyRouter, TransmissionCounter, flood


def graph_from_seed(seed: int, n: int, radius: float) -> RandomGeometricGraph:
    rng = np.random.default_rng(seed)
    return RandomGeometricGraph.build(rng.random((n, 2)), radius)


class TestGreedyInvariants:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(5, 60),
        radius=st.floats(0.05, 0.8),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_routes_terminate_without_revisits(self, seed, n, radius, data):
        graph = graph_from_seed(seed, n, radius)
        router = GreedyRouter(graph)
        source = data.draw(st.integers(0, n - 1))
        target = data.draw(st.integers(0, n - 1))
        result = router.route_to_node(source, target)
        assert len(result.path) == len(set(result.path))
        assert result.hops <= n - 1
        assert result.path[0] == source

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(5, 60),
        radius=st.floats(0.05, 0.8),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_delivery_soundness(self, seed, n, radius, data):
        graph = graph_from_seed(seed, n, radius)
        router = GreedyRouter(graph)
        source = data.draw(st.integers(0, n - 1))
        target = data.draw(st.integers(0, n - 1))
        result = router.route_to_node(source, target)
        if result.delivered:
            assert result.destination == target
        else:
            assert result.destination != target

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(5, 40),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_progress_strictly_monotone(self, seed, n, data):
        graph = graph_from_seed(seed, n, 0.4)
        router = GreedyRouter(graph)
        source = data.draw(st.integers(0, n - 1))
        x = data.draw(st.floats(0.0, 1.0))
        y = data.draw(st.floats(0.0, 1.0))
        target = np.array([x, y])
        result = router.route_to_position(source, target)
        distances = [
            float(np.hypot(*(graph.positions[v] - target)))
            for v in result.path
        ]
        assert all(b < a for a, b in zip(distances, distances[1:]))


class TestFloodInvariants:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(4, 50),
        radius=st.floats(0.1, 0.9),
        member_fraction=st.floats(0.3, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_flood_stays_inside_members_and_charges_reached(
        self, seed, n, radius, member_fraction
    ):
        graph = graph_from_seed(seed, n, radius)
        member_count = max(1, int(member_fraction * n))
        members = list(range(member_count))
        counter = TransmissionCounter()
        reached = flood(graph.neighbors, 0, members, counter)
        assert set(reached) <= set(members)
        assert reached[0] == 0
        assert counter.total == len(reached)
        assert len(reached) == len(set(reached))

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(4, 40))
    @settings(max_examples=60, deadline=None)
    def test_flood_of_full_connected_graph_reaches_everyone(self, seed, n):
        graph = graph_from_seed(seed, n, 1.5)  # radius > diameter: complete
        reached = flood(graph.neighbors, 0, range(n))
        assert sorted(reached) == list(range(n))
