"""Unit tests for repro.analysis.occupancy."""

import numpy as np
import pytest

from repro.analysis import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    max_occupancy_deviation,
    occupancy_deviation_bound,
    paper_occupancy_condition,
)
from repro.geometry import random_points


class TestChernoffTails:
    def test_upper_tail_decreases_with_deviation(self):
        probabilities = [chernoff_upper_tail(100, d) for d in (0.1, 0.2, 0.5)]
        assert probabilities[0] > probabilities[1] > probabilities[2]

    def test_lower_tail_decreases_with_deviation(self):
        probabilities = [chernoff_lower_tail(100, d) for d in (0.1, 0.2, 0.5)]
        assert probabilities[0] > probabilities[1] > probabilities[2]

    def test_zero_deviation_gives_one(self):
        assert chernoff_upper_tail(50, 0.0) == 1.0
        assert chernoff_lower_tail(50, 0.0) == 1.0

    def test_tails_bound_binomial_empirically(self):
        rng = np.random.default_rng(29)
        n, p, deviation = 10_000, 0.01, 0.3
        mean = n * p
        draws = rng.binomial(n, p, size=4000)
        upper_rate = float(np.mean(draws >= (1 + deviation) * mean))
        lower_rate = float(np.mean(draws <= (1 - deviation) * mean))
        assert upper_rate <= chernoff_upper_tail(mean, deviation)
        assert lower_rate <= chernoff_lower_tail(mean, deviation)

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(0.0, 0.1)
        with pytest.raises(ValueError):
            chernoff_upper_tail(10, -0.1)
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 1.5)


class TestDeviationBound:
    def test_shrinks_with_expected_occupancy(self):
        loose = occupancy_deviation_bound(16, squares=64, failure_probability=0.01)
        tight = occupancy_deviation_bound(4096, squares=64, failure_probability=0.01)
        assert tight < loose

    def test_grows_with_square_count(self):
        few = occupancy_deviation_bound(100, squares=4, failure_probability=0.01)
        many = occupancy_deviation_bound(100, squares=4096, failure_probability=0.01)
        assert many > few

    def test_paper_tenth_requires_large_occupancy(self):
        # |#/E# − 1| < 1/10 w.h.p. needs E# ≫ 300·log(squares): the reason
        # behind the (log n)^8 leaf threshold.
        assert occupancy_deviation_bound(10_000, 100, 0.01) < 0.1
        assert occupancy_deviation_bound(30, 100, 0.01) > 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            occupancy_deviation_bound(0, 10, 0.1)
        with pytest.raises(ValueError):
            occupancy_deviation_bound(10, 10, 1.0)


class TestMeasuredDeviation:
    def test_uniform_grid_has_zero_deviation(self):
        # Four points placed at the four cell centres of a 2x2 grid.
        positions = np.array(
            [[0.25, 0.25], [0.75, 0.25], [0.25, 0.75], [0.75, 0.75]]
        )
        assert max_occupancy_deviation(positions, 2) == 0.0

    def test_all_points_in_one_cell(self):
        positions = np.full((8, 2), 0.1)
        # One cell holds 8 (expected 2): deviation 3; others hold 0: dev 1.
        assert max_occupancy_deviation(positions, 2) == pytest.approx(3.0)

    def test_random_points_concentrate(self):
        rng = np.random.default_rng(31)
        positions = random_points(40_000, rng)
        deviation = max_occupancy_deviation(positions, 10)
        # E# = 400 per cell: Chernoff keeps deviation well under 25%.
        assert deviation < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            max_occupancy_deviation(np.zeros((4, 3)), 2)
        with pytest.raises(ValueError):
            max_occupancy_deviation(np.zeros((4, 2)), 0)


class TestPaperCondition:
    def test_report_fields(self):
        rng = np.random.default_rng(37)
        report = paper_occupancy_condition(random_points(4096, rng))
        assert report["n"] == 4096
        assert report["squares"] == 64
        assert report["expected_per_square"] == pytest.approx(64.0)
        assert report["max_deviation"] >= 0.0

    def test_condition_eventually_holds(self):
        # At n = 4096 the expected occupancy (64) is still too small for a
        # uniform 10% band over 64 squares; the report must say *whether*
        # it held, and the deviation must shrink with n.
        rng = np.random.default_rng(41)
        small = paper_occupancy_condition(random_points(1024, rng))
        large = paper_occupancy_condition(random_points(65_536, rng))
        assert large["max_deviation"] < small["max_deviation"]

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_occupancy_condition(np.zeros((2, 2)))
