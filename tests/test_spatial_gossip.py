"""Unit tests for repro.gossip.spatial (Kempe–Kleinberg baseline)."""

import numpy as np
import pytest

from repro.gossip import SpatialGossip
from repro.graphs import RandomGeometricGraph


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(283)
    return RandomGeometricGraph.sample_connected(128, rng, radius_constant=2.5)


class TestConstruction:
    def test_rejects_negative_rho(self, graph):
        with pytest.raises(ValueError):
            SpatialGossip(graph, rho=-1.0)

    def test_cdfs_are_distributions(self, graph):
        algo = SpatialGossip(graph, rho=2.0)
        for u in (0, 5, graph.n - 1):
            cdf = algo._cumulative[u]
            assert cdf[-1] == pytest.approx(1.0)
            assert (np.diff(cdf) >= -1e-12).all()

    def test_rho_zero_is_uniform(self, graph):
        algo = SpatialGossip(graph, rho=0.0)
        cdf = algo._cumulative[0]
        pmf = np.diff(np.concatenate([[0.0], cdf]))
        expected = np.full(graph.n, 1.0 / (graph.n - 1))
        expected[0] = 0.0
        np.testing.assert_allclose(pmf, expected, atol=1e-12)

    def test_high_rho_prefers_near_targets(self, graph):
        algo = SpatialGossip(graph, rho=4.0)
        rng = np.random.default_rng(3)
        node = 0
        positions = graph.positions
        draws = []
        for _ in range(300):
            target = int(np.searchsorted(algo._cumulative[node], rng.random()))
            draws.append(
                np.hypot(*(positions[min(target, graph.n - 1)] - positions[node]))
            )
        uniform_mean_distance = np.mean(
            [np.hypot(*(p - positions[node])) for p in positions[1:]]
        )
        assert np.mean(draws) < 0.6 * uniform_mean_distance


class TestExecution:
    def test_converges(self, graph):
        algo = SpatialGossip(graph, rho=2.0)
        rng = np.random.default_rng(5)
        x0 = rng.normal(size=graph.n)
        result = algo.run(x0, epsilon=0.15, rng=rng)
        assert result.converged
        assert result.values.sum() == pytest.approx(x0.sum(), rel=1e-9)

    def test_never_picks_self(self, graph):
        algo = SpatialGossip(graph, rho=1.0)
        rng = np.random.default_rng(7)
        for node in (0, 64, 127):
            for _ in range(200):
                target = int(
                    np.searchsorted(algo._cumulative[node], rng.random())
                )
                assert min(target, graph.n - 1) != node

    def test_rho_interpolates_cost_per_exchange(self, graph):
        # Larger rho = shorter routes = fewer transmissions per tick.
        x0 = np.random.default_rng(11).normal(size=graph.n)
        local = SpatialGossip(graph, rho=6.0).run(
            x0, 0.3, np.random.default_rng(13)
        )
        uniform = SpatialGossip(graph, rho=0.0).run(
            x0, 0.3, np.random.default_rng(13)
        )
        per_tick_local = local.total_transmissions / max(1, local.ticks)
        per_tick_uniform = uniform.total_transmissions / max(1, uniform.ticks)
        assert per_tick_local < per_tick_uniform

    def test_duplicate_positions_handled(self):
        positions = np.vstack(
            [np.full((3, 2), 0.5), np.random.default_rng(17).random((20, 2))]
        )
        graph = RandomGeometricGraph.build(positions, radius=0.6)
        algo = SpatialGossip(graph, rho=2.0)
        x0 = np.random.default_rng(19).normal(size=23)
        result = algo.run(x0, 0.3, np.random.default_rng(23))
        assert result.converged
