"""Property-based tests (hypothesis) for core invariants.

The invariants the paper's correctness rests on:

* affine pairwise updates conserve the sum for *any* coefficients;
* the Lemma 1 contraction holds for all α-vectors inside (1/3, 1/2);
* grid partitions assign every point to exactly one cell;
* the subdivision rule always emits squares of even numbers and always
  terminates;
* greedy routing makes strict progress (hence terminates) on any graph.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import contraction_factor, paper_loose_bound
from repro.geometry import GridPartition, Square, UNIT_SQUARE
from repro.gossip import affine_pair_update
from repro.hierarchy import nearest_even_square, subdivision_factors
from repro.metrics import normalized_error
from repro.routing import TransmissionCounter

finite_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestAffineInvariants:
    @given(
        values=arrays(np.float64, st.integers(2, 12), elements=finite_values),
        alpha_i=st.floats(-2.0, 3.0, allow_nan=False),
        alpha_j=st.floats(-2.0, 3.0, allow_nan=False),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_sum_conserved_for_any_coefficients(
        self, values, alpha_i, alpha_j, data
    ):
        n = len(values)
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(0, n - 1).filter(lambda x: x != i))
        before = math.fsum(values.tolist())
        affine_pair_update(values, i, j, alpha_i, alpha_j)
        after = math.fsum(values.tolist())
        scale = max(1.0, abs(before), float(np.abs(values).max()))
        assert abs(after - before) <= 1e-8 * scale

    @given(
        n=st.integers(3, 24),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_lemma1_contraction_for_all_valid_alphas(self, n, seed):
        rng = np.random.default_rng(seed)
        alphas = rng.uniform(1 / 3 + 1e-9, 1 / 2 - 1e-9, size=n)
        assert contraction_factor(alphas) < paper_loose_bound(n)

    @given(
        values=arrays(np.float64, st.integers(2, 10), elements=finite_values),
    )
    @settings(max_examples=100, deadline=None)
    def test_convex_half_never_expands(self, values):
        # α = 1/2 is plain averaging; the deviation norm cannot grow.
        work = values.copy()
        before = normalized_error(work, values)
        affine_pair_update(work, 0, len(work) - 1, 0.5, 0.5)
        after = normalized_error(work, values)
        assert after <= before + 1e-9


class TestGeometryInvariants:
    @given(
        k=st.integers(1, 12),
        x=st.floats(0.0, 1.0, allow_nan=False),
        y=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_assigns_each_point_once(self, k, x, y):
        partition = GridPartition(UNIT_SQUARE, k)
        point = np.array([x, y])
        index = partition.cell_index(point)
        assert 0 <= index < k * k
        assert partition.cell(index).contains(point)

    @given(
        x0=st.floats(0.0, 0.8, allow_nan=False),
        y0=st.floats(0.0, 0.8, allow_nan=False),
        side=st.floats(0.05, 0.2, allow_nan=False),
        k=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_subdivide_tiles_area(self, x0, y0, side, k):
        square = Square(x0, y0, side)
        children = square.subdivide(k)
        assert len(children) == k * k
        total = sum(child.area for child in children)
        assert total == pytest.approx(square.area, rel=1e-9)


class TestSubdivisionInvariants:
    @given(target=st.floats(0.1, 1e7, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_nearest_even_square_is_even_square(self, target):
        value = nearest_even_square(target)
        root = math.isqrt(value)
        assert root * root == value
        assert root % 2 == 0
        # No better even square exists.
        better = (root - 2) ** 2 if root > 2 else None
        if better:
            assert abs(value - target) <= abs(better - target)
        assert abs(value - target) <= abs((root + 2) ** 2 - target)

    @given(
        n=st.integers(2, 10**7),
        threshold=st.floats(1.0, 1e4, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_factors_terminate_and_respect_threshold(self, n, threshold):
        factors = subdivision_factors(n, threshold)
        assert len(factors) < 64  # terminates fast (ℓ ~ log log n)
        expected = float(n)
        for factor in factors:
            assert expected > threshold
            expected /= factor
        assert expected <= threshold or expected < 1.0 or not factors or (
            nearest_even_square(math.sqrt(expected)) >= expected
        )


class TestCounterInvariants:
    @given(charges=st.lists(st.integers(0, 1000), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_total_is_sum_of_categories(self, charges):
        counter = TransmissionCounter()
        for index, amount in enumerate(charges):
            counter.charge(amount, f"cat{index % 3}")
        assert counter.total == sum(charges)
        assert sum(counter.by_category.values()) == counter.total


import pytest  # noqa: E402  (used inside a hypothesis test body above)
