"""Unit tests for repro.viz.ascii."""

import numpy as np
import pytest

from repro.geometry import random_points
from repro.hierarchy import HierarchyTree
from repro.viz import render_curve, render_field, render_hierarchy


class TestRenderField:
    def test_dimensions(self):
        rng = np.random.default_rng(3)
        positions = random_points(100, rng)
        art = render_field(positions, rng.normal(size=100), width=20, height=10)
        lines = art.splitlines()
        # header + 10 rows + footer + legend
        assert len(lines) == 13
        assert all(len(line) == 22 for line in lines[1:11])

    def test_hot_corner_brightest(self):
        positions = np.array([[0.05, 0.05], [0.95, 0.95]])
        values = np.array([0.0, 100.0])
        art = render_field(positions, values, width=10, height=6)
        lines = art.splitlines()
        assert "@" in lines[1]   # top row = high y = hot sensor
        assert "." not in lines[1] or True
        bottom = lines[6]
        assert " " in bottom

    def test_constant_field_no_crash(self):
        rng = np.random.default_rng(5)
        positions = random_points(50, rng)
        art = render_field(positions, np.full(50, 2.0))
        assert "range" in art

    def test_validation(self):
        with pytest.raises(ValueError):
            render_field(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            render_field(np.zeros((3, 2)), np.zeros(3), width=0)


class TestRenderCurve:
    def test_marks_points(self):
        x = np.arange(1, 50, dtype=float)
        y = np.exp(-0.1 * x)
        art = render_curve(x, y, width=30, height=8, label="decay")
        assert art.count("*") >= 8
        assert art.startswith("decay")

    def test_log_scale_drops_nonpositive(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([1.0, 0.1, 0.0, -1.0])
        art = render_curve(x, y, logy=True)
        assert "*" in art

    def test_linear_scale(self):
        x = np.linspace(0, 1, 20)
        art = render_curve(x, x, logy=False)
        assert "*" in art

    def test_validation(self):
        with pytest.raises(ValueError):
            render_curve(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            render_curve(np.array([1.0, 2.0]), np.array([0.0, -1.0]), logy=True)


class TestRenderHierarchy:
    def test_contains_supernode_digits(self):
        rng = np.random.default_rng(7)
        tree = HierarchyTree.build(random_points(512, rng), leaf_threshold=32.0)
        art = render_hierarchy(tree)
        assert str(tree.levels) in art  # the root's Level digit appears
        assert "Levels" in art

    def test_grid_lines_drawn(self):
        rng = np.random.default_rng(9)
        tree = HierarchyTree.build(random_points(256, rng), leaf_threshold=16.0)
        art = render_hierarchy(tree, width=30, height=15)
        assert "|" in art and "-" in art

    def test_flat_tree_no_lines(self):
        rng = np.random.default_rng(11)
        tree = HierarchyTree.build(random_points(32, rng), leaf_threshold=64.0)
        art = render_hierarchy(tree, width=20, height=10)
        assert "1" in art  # the single supernode at Level 1

    def test_validation(self):
        rng = np.random.default_rng(13)
        tree = HierarchyTree.build(random_points(64, rng))
        with pytest.raises(ValueError):
            render_hierarchy(tree, width=0)
