"""Unit tests for repro.engine.executor (parallel sweep execution)."""

import numpy as np
import pytest

from repro.engine.executor import (
    SweepCell,
    execute_cell,
    expand_grid,
    run_sweep_records,
)
from repro.experiments import (
    ExperimentConfig,
    aggregate_records,
    aggregate_trials,
    run_convergence,
    run_scaling_sweep,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        sizes=(64, 96),
        epsilon=0.3,
        trials=2,
        radius_constant=3.0,
        algorithms=("randomized", "geographic"),
    )


class TestGrid:
    def test_expand_grid_covers_every_cell(self, config):
        grid = expand_grid(config)
        assert len(grid) == 2 * 2 * 2
        assert len(set(cell.key for cell in grid)) == len(grid)
        assert grid[0] == SweepCell(algorithm="randomized", n=64, trial=0)
        assert {cell.n for cell in grid} == {64, 96}

    def test_workers_validation(self, config):
        with pytest.raises(ValueError):
            run_sweep_records(config, workers=0)


class TestExecuteCell:
    def test_matches_legacy_convergence_run(self, config):
        """A cell record equals the serial runner's result on the same seeds."""
        legacy = run_convergence(config, 64, trial=1)
        for run in legacy:
            record = execute_cell(
                config, SweepCell(algorithm=run.algorithm, n=64, trial=1)
            )
            assert dict(record.transmissions) == run.result.transmissions
            assert record.ticks == run.result.ticks
            assert record.converged == run.result.converged
            assert record.error == run.result.error

    def test_record_roundtrips_through_dict(self, config):
        record = execute_cell(config, SweepCell("randomized", 64, 0))
        clone = type(record).from_dict(record.to_dict())
        assert clone == record
        assert clone.key == ("randomized", 64, 0)
        assert clone.total_transmissions == record.total_transmissions


class TestDeterminism:
    def test_serial_equals_parallel(self, config):
        """Same seeds => identical records at any worker count."""
        serial = run_sweep_records(config, workers=1)
        parallel = run_sweep_records(config, workers=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key] == parallel[key], key

    def test_serial_equals_parallel_with_stride(self, config):
        serial = run_sweep_records(config, workers=1, check_stride=4)
        parallel = run_sweep_records(config, workers=2, check_stride=4)
        assert serial == parallel

    def test_sweep_matches_legacy_aggregation(self, config):
        """run_scaling_sweep reproduces the historical serial sweep numbers."""
        sweep = run_scaling_sweep(config)
        for n in config.sizes:
            by_algorithm = {name: [] for name in config.algorithms}
            for trial in range(config.trials):
                for run in run_convergence(config, n, trial):
                    by_algorithm[run.algorithm].append(run.result)
            for name, results in by_algorithm.items():
                expected = aggregate_trials(name, n, results)
                point = next(p for p in sweep[name] if p.n == n)
                assert point == expected


class TestAggregation:
    def test_aggregate_records_orders_and_averages(self, config):
        records = run_sweep_records(config)
        sweep = aggregate_records(config, records)
        assert set(sweep) == set(config.algorithms)
        for name in config.algorithms:
            assert [p.n for p in sweep[name]] == list(config.sizes)
            for point in sweep[name]:
                counts = [
                    records[(name, point.n, t)].total_transmissions
                    for t in range(config.trials)
                ]
                assert point.transmissions_mean == pytest.approx(np.mean(counts))
                assert point.transmissions_std == pytest.approx(np.std(counts))
                assert point.trials == config.trials

    def test_aggregate_records_tolerates_partial_grid(self, config):
        records = run_sweep_records(config)
        partial = {
            key: record for key, record in records.items() if key[1] == 64
        }
        sweep = aggregate_records(config, partial)
        for name in config.algorithms:
            assert [p.n for p in sweep[name]] == [64]

    def test_on_record_callback_sees_every_cell(self, config):
        seen = []
        run_sweep_records(
            config, on_record=lambda record, fresh: seen.append((record.key, fresh))
        )
        assert len(seen) == len(expand_grid(config))
        assert all(fresh for _, fresh in seen)
