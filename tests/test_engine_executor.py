"""Unit tests for repro.engine.executor (parallel sweep execution)."""

import numpy as np
import pytest

from repro.engine.executor import (
    SweepCell,
    execute_cell,
    expand_grid,
    run_sweep_records,
)
from repro.experiments import (
    ExperimentConfig,
    aggregate_records,
    aggregate_trials,
    run_convergence,
    run_scaling_sweep,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        sizes=(64, 96),
        epsilon=0.3,
        trials=2,
        radius_constant=3.0,
        algorithms=("randomized", "geographic"),
    )


class TestGrid:
    def test_expand_grid_covers_every_cell(self, config):
        grid = expand_grid(config)
        assert len(grid) == 2 * 2 * 2
        assert len(set(cell.key for cell in grid)) == len(grid)
        assert grid[0] == SweepCell(algorithm="randomized", n=64, trial=0)
        assert {cell.n for cell in grid} == {64, 96}

    def test_workers_validation(self, config):
        with pytest.raises(ValueError):
            run_sweep_records(config, workers=0)


class TestExecuteCell:
    def test_matches_legacy_convergence_run(self, config):
        """A cell record equals the serial runner's result on the same seeds."""
        legacy = run_convergence(config, 64, trial=1)
        for run in legacy:
            record = execute_cell(
                config, SweepCell(algorithm=run.algorithm, n=64, trial=1)
            )
            assert dict(record.transmissions) == run.result.transmissions
            assert record.ticks == run.result.ticks
            assert record.converged == run.result.converged
            assert record.error == run.result.error

    def test_record_roundtrips_through_dict(self, config):
        record = execute_cell(config, SweepCell("randomized", 64, 0))
        clone = type(record).from_dict(record.to_dict())
        assert clone == record
        assert clone.key == ("randomized", 64, 0)
        assert clone.total_transmissions == record.total_transmissions


class TestDeterminism:
    def test_serial_equals_parallel(self, config):
        """Same seeds => identical records at any worker count."""
        serial = run_sweep_records(config, workers=1)
        parallel = run_sweep_records(config, workers=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key] == parallel[key], key

    def test_serial_equals_parallel_with_stride(self, config):
        serial = run_sweep_records(config, workers=1, check_stride=4)
        parallel = run_sweep_records(config, workers=2, check_stride=4)
        assert serial == parallel

    def test_sweep_matches_legacy_aggregation(self, config):
        """run_scaling_sweep reproduces the historical serial sweep numbers."""
        sweep = run_scaling_sweep(config)
        for n in config.sizes:
            by_algorithm = {name: [] for name in config.algorithms}
            for trial in range(config.trials):
                for run in run_convergence(config, n, trial):
                    by_algorithm[run.algorithm].append(run.result)
            for name, results in by_algorithm.items():
                expected = aggregate_trials(name, n, results)
                point = next(p for p in sweep[name] if p.n == n)
                assert point == expected


class TestAggregation:
    def test_aggregate_records_orders_and_averages(self, config):
        records = run_sweep_records(config)
        sweep = aggregate_records(config, records)
        assert set(sweep) == set(config.algorithms)
        for name in config.algorithms:
            assert [p.n for p in sweep[name]] == list(config.sizes)
            for point in sweep[name]:
                counts = [
                    records[(name, point.n, t)].total_transmissions
                    for t in range(config.trials)
                ]
                assert point.transmissions_mean == pytest.approx(np.mean(counts))
                assert point.transmissions_std == pytest.approx(np.std(counts))
                assert point.trials == config.trials

    def test_aggregate_records_tolerates_partial_grid(self, config):
        records = run_sweep_records(config)
        partial = {
            key: record for key, record in records.items() if key[1] == 64
        }
        sweep = aggregate_records(config, partial)
        for name in config.algorithms:
            assert [p.n for p in sweep[name]] == [64]

    def test_on_record_callback_sees_every_cell(self, config):
        seen = []
        run_sweep_records(
            config, on_record=lambda record, fresh: seen.append((record.key, fresh))
        )
        assert len(seen) == len(expand_grid(config))
        assert all(fresh for _, fresh in seen)


class TestResumeAcrossModes:
    """One store, four custodians: serial → killed distributed →
    resumed distributed → serial.  Execution mode is never part of a
    sweep's identity, so every hand-off resumes instead of recomputing
    and the final records equal an uninterrupted serial run."""

    def test_round_trip_serial_distributed_serial(self, tmp_path, config):
        from repro.engine.service import (
            run_distributed_sweep,
            worker_store,
        )
        from repro.engine.store import ResultStore

        reference = run_sweep_records(config)
        grid = expand_grid(config)
        store = ResultStore(tmp_path / "store", config).open()

        # Stage 1 — an interrupted *serial* run: two cells made it.
        for cell in grid[:2]:
            store.append(reference[cell.key])

        # Stage 2 — a *killed* distributed session: its coordinator died
        # after one worker shard landed two more cells, before any merge.
        queue_dir = tmp_path / "queue"
        shard = worker_store(queue_dir, "w0", config).open()
        for cell in grid[2:4]:
            shard.append(reference[cell.key])

        # Stage 3 — the resumed distributed session: recovers the
        # orphaned shard, enqueues only the genuinely missing cells,
        # and finishes the sweep with real worker processes.
        records = run_distributed_sweep(
            config,
            store=ResultStore(tmp_path / "store", config),
            queue_dir=queue_dir,
            workers=2,
            ttl=5.0,
            heartbeat_interval=0.1,
            poll_interval=0.05,
        )
        assert records == reference
        from repro.engine.queue import LeaseQueue

        session = LeaseQueue.open(queue_dir)
        assert session.stats().total == len(grid) - 4  # resumed, not redone

        # Stage 4 — back to serial: every cell reused, none recomputed.
        fresh = []
        final = run_sweep_records(
            config,
            store=ResultStore(tmp_path / "store", config),
            on_record=lambda record, is_fresh: fresh.append(is_fresh),
        )
        assert final == reference
        assert fresh == [False] * len(grid)

    def test_service_layer_leaves_the_pinned_key_unchanged(self, tmp_path):
        """The k=1 default content key, frozen since the multi-field PR:
        the service layer must neither perturb the key a shard derives
        nor the one it pins in the session manifest."""
        from repro.engine.service import service_manifest, worker_store
        from repro.engine.store import content_key

        pinned = "379068f1d8668c31"
        default = ExperimentConfig()
        assert content_key(default) == pinned
        assert service_manifest(default)["key"] == pinned
        shard = worker_store(tmp_path, "w0", default)
        assert shard.key == pinned
        assert shard.directory == tmp_path / "shards" / "w0" / pinned
