"""Unit tests for repro.engine.batching (batched tick execution)."""

import warnings

import numpy as np
import pytest

from repro.engine.batching import (
    ScalarFallbackWarning,
    batching_capability,
    run_batched,
    split_streams,
)
from repro.experiments.config import make_algorithm, protocol_batching
from repro.experiments.seeds import spawn_rng
from repro.gossip.base import AsynchronousGossip
from repro.gossip.hierarchical.rounds import HierarchicalGossip
from repro.graphs.rgg import RandomGeometricGraph
from repro.routing.cost import TransmissionCounter


class ScalarOnlyGossip(AsynchronousGossip):
    """A protocol that never overrode tick_block (the fallback path)."""

    name = "scalar-only"

    def tick(self, node, values, counter, rng):
        partner = int(rng.integers(self.n - 1))
        partner = partner + 1 if partner >= node else partner
        average = 0.5 * (values[node] + values[partner])
        values[node] = average
        values[partner] = average
        counter.charge(2, "near")


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(42)
    graph = RandomGeometricGraph.sample_connected(64, rng, radius_constant=3.0)
    values = rng.normal(size=64)
    return graph, values


class TestDegenerateCase:
    """check_stride=1 must reproduce the legacy scalar loop bit for bit."""

    @pytest.mark.parametrize("name", ["randomized", "geographic"])
    def test_bit_identical_to_legacy_run(self, instance, name):
        graph, values = instance
        legacy = make_algorithm(name, graph).run(
            values, 0.25, spawn_rng(7, "run", name)
        )
        batched = run_batched(
            make_algorithm(name, graph),
            values,
            0.25,
            spawn_rng(7, "run", name),
            check_stride=1,
        )
        np.testing.assert_array_equal(legacy.values, batched.values)
        assert legacy.transmissions == batched.transmissions
        assert legacy.ticks == batched.ticks
        assert legacy.error == batched.error
        assert [(p.transmissions, p.ticks, p.error) for p in legacy.trace.points] == [
            (p.transmissions, p.ticks, p.error) for p in batched.trace.points
        ]

    def test_validation(self, instance):
        graph, values = instance
        algorithm = make_algorithm("randomized", graph)
        rng = spawn_rng(1, "x")
        with pytest.raises(ValueError):
            run_batched(algorithm, values, 0.25, rng, check_stride=0)
        with pytest.raises(ValueError):
            run_batched(algorithm, values, 0.25, rng, check_stride=2, block_size=0)
        with pytest.raises(ValueError):
            run_batched(algorithm, values, -1.0, rng, check_stride=2)
        with pytest.raises(ValueError):
            run_batched(algorithm, values[:10], 0.25, rng, check_stride=2)


class TestBatchedPath:
    @pytest.mark.parametrize("name", ["randomized", "geographic"])
    def test_converges_and_conserves_mean(self, instance, name):
        graph, values = instance
        result = run_batched(
            make_algorithm(name, graph),
            values,
            0.25,
            spawn_rng(7, "run", name),
            check_stride=4,
        )
        assert result.converged
        assert result.error <= 0.25
        # Pairwise averaging conserves the sum, batched or not.
        assert result.values.mean() == pytest.approx(values.mean(), abs=1e-12)

    def test_deterministic(self, instance):
        graph, values = instance
        runs = [
            run_batched(
                make_algorithm("randomized", graph),
                values,
                0.25,
                spawn_rng(7, "run"),
                check_stride=4,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0].values, runs[1].values)
        assert runs[0].ticks == runs[1].ticks
        assert runs[0].transmissions == runs[1].transmissions

    def test_block_size_invariance(self, instance):
        """Results are a function of (seed, stride), never of chunking."""
        graph, values = instance
        results = [
            run_batched(
                make_algorithm("randomized", graph),
                values,
                0.25,
                spawn_rng(7, "run"),
                check_stride=4,
                block_size=block_size,
            )
            for block_size in (1, 7, 8192)
        ]
        for other in results[1:]:
            np.testing.assert_array_equal(results[0].values, other.values)
            assert results[0].ticks == other.ticks
            assert results[0].transmissions == other.transmissions

    def test_stride_equivalence_of_stopping_rule(self, instance):
        """Strided checking stops at the same crossing, up to one window.

        The batched path cannot stop *short* of the ε-crossing (the check
        only ever runs after more ticks than the legacy period), and its
        transmissions-to-ε agree with the legacy path to within the extra
        ticks of at most one check window.
        """
        graph, values = instance
        legacy = run_batched(
            make_algorithm("randomized", graph),
            values,
            0.25,
            spawn_rng(7, "run"),
            check_stride=1,
        )
        for stride in (2, 8):
            strided = run_batched(
                make_algorithm("randomized", graph),
                values,
                0.25,
                spawn_rng(7, "run"),
                check_stride=stride,
            )
            assert strided.converged
            assert strided.error <= 0.25
            # Checks land on multiples of the strided window.
            window = stride * max(1, graph.n // 4)
            assert strided.ticks % window == 0
            # Same order of magnitude as the legacy stopping tick.
            assert strided.ticks <= legacy.ticks + 2 * window
            assert strided.ticks >= legacy.ticks // 4

    def test_round_based_protocol_runs_natively_at_any_stride(self, instance):
        """Hierarchical gossip has no tick loop; the engine passes through."""
        graph, values = instance
        native = make_algorithm("hierarchical", graph).run(
            values, 0.25, spawn_rng(7, "run", "hierarchical")
        )
        engine = run_batched(
            make_algorithm("hierarchical", graph),
            values,
            0.25,
            spawn_rng(7, "run", "hierarchical"),
            check_stride=8,
        )
        np.testing.assert_array_equal(native.values, engine.values)
        assert native.transmissions == engine.transmissions
        assert native.ticks == engine.ticks

    def test_tick_budget_respected(self, instance):
        graph, values = instance
        result = run_batched(
            make_algorithm("randomized", graph),
            values,
            1e-9,
            spawn_rng(7, "run"),
            check_stride=4,
            max_ticks=100,
        )
        assert not result.converged
        assert result.ticks == 100


class TestSplitStreams:
    def test_deterministic_and_distinct(self):
        a_owner, a_proto = split_streams(spawn_rng(5, "s"))
        b_owner, b_proto = split_streams(spawn_rng(5, "s"))
        np.testing.assert_array_equal(a_owner.random(8), b_owner.random(8))
        np.testing.assert_array_equal(a_proto.random(8), b_proto.random(8))
        c_owner, c_proto = split_streams(spawn_rng(5, "s"))
        assert not np.array_equal(c_owner.random(8), c_proto.random(8))


class TestTickBlockHooks:
    def test_default_tick_block_matches_scalar_ticks(self, instance):
        """The base-class hook is literally the scalar loop."""
        graph, values = instance
        algorithm = ScalarOnlyGossip(graph.n)
        owners = spawn_rng(3, "owners").integers(graph.n, size=50)

        block_values = values.copy()
        block_counter = TransmissionCounter()
        algorithm.tick_block(
            owners, block_values, block_counter, spawn_rng(3, "proto")
        )

        scalar_values = values.copy()
        scalar_counter = TransmissionCounter()
        scalar_rng = spawn_rng(3, "proto")
        for node in owners:
            algorithm.tick(int(node), scalar_values, scalar_counter, scalar_rng)

        np.testing.assert_array_equal(block_values, scalar_values)
        assert block_counter.snapshot() == scalar_counter.snapshot()

    def test_randomized_tick_block_contract(self, instance):
        """The vectorized override: same costs, conserved sum, fixed draws."""
        graph, values = instance
        algorithm = make_algorithm("randomized", graph)
        owners = spawn_rng(3, "owners").integers(graph.n, size=128)

        out = values.copy()
        counter = TransmissionCounter()
        rng = spawn_rng(3, "proto")
        algorithm.tick_block(owners, out, counter, rng)

        # Every owner has neighbours on a connected graph: 2 tx per tick.
        assert counter.snapshot() == {"near": 256, "total": 256}
        assert out.mean() == pytest.approx(values.mean(), abs=1e-12)
        # Fixed draw count per tick: the stream advanced by exactly one
        # double per owner (the block-partitioning contract).
        reference = spawn_rng(3, "proto")
        reference.random(len(owners))
        np.testing.assert_array_equal(rng.random(4), reference.random(4))

    def test_chunked_tick_blocks_equal_one_block(self, instance):
        graph, values = instance
        algorithm = make_algorithm("randomized", graph)
        owners = spawn_rng(3, "owners").integers(graph.n, size=100)

        whole = values.copy()
        whole_counter = TransmissionCounter()
        algorithm.tick_block(owners, whole, whole_counter, spawn_rng(3, "p"))

        chunked = values.copy()
        chunked_counter = TransmissionCounter()
        chunk_rng = spawn_rng(3, "p")
        for part in (owners[:33], owners[33:70], owners[70:]):
            algorithm.tick_block(part, chunked, chunked_counter, chunk_rng)

        np.testing.assert_array_equal(whole, chunked)
        assert whole_counter.snapshot() == chunked_counter.snapshot()


class TestBatchingCapability:
    def test_classification(self, instance):
        graph, _ = instance
        assert batching_capability(ScalarOnlyGossip) == "scalar"
        assert batching_capability(ScalarOnlyGossip(graph.n)) == "scalar"
        assert batching_capability(make_algorithm("randomized", graph)) == "block"
        assert batching_capability(HierarchicalGossip) == "rounds"

    def test_registry_map(self):
        assert protocol_batching(
            ("randomized", "geographic", "spatial", "hierarchical")
        ) == {
            "randomized": "block",
            "geographic": "block",
            "spatial": "block",
            "hierarchical": "rounds",
        }

    def test_registry_map_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            protocol_batching(("randomized", "no-such-protocol"))


class TestScalarFallbackWarning:
    def test_strided_run_without_override_warns(self, instance):
        graph, values = instance
        with pytest.warns(ScalarFallbackWarning, match="scalar-only"):
            result = run_batched(
                ScalarOnlyGossip(graph.n),
                values,
                0.25,
                spawn_rng(7, "run"),
                check_stride=4,
            )
        assert result.converged  # the fallback still runs correctly

    def test_uncentered_field_warns_for_affine(self, instance):
        """Mean-sensitive protocols get a futility warning, not a stall."""
        from repro.engine.batching import UncenteredFieldWarning
        from repro.gossip.affine import AffineGossipKn, sample_alphas

        graph, values = instance
        shifted = values + 5.0
        algorithm = AffineGossipKn(
            graph.n, alphas=sample_alphas(graph.n, np.random.default_rng(1))
        )
        with pytest.warns(UncenteredFieldWarning, match="mean-zero"):
            run_batched(
                algorithm, shifted, 0.25, spawn_rng(7, "run"), max_ticks=10
            )
        centred = shifted - shifted.mean()
        with warnings.catch_warnings():
            warnings.simplefilter("error", UncenteredFieldWarning)
            run_batched(
                algorithm, centred, 0.25, spawn_rng(7, "run"), max_ticks=10
            )

    def test_warning_names_docs_page_and_registry(self, instance):
        """Discoverability: the message points at the fix, not just the fact."""
        graph, values = instance
        with pytest.warns(ScalarFallbackWarning) as captured:
            run_batched(
                ScalarOnlyGossip(graph.n),
                values,
                0.25,
                spawn_rng(7, "run"),
                check_stride=4,
            )
        message = str(captured[0].message)
        assert "docs/batching.md" in message
        assert "protocol_batching" in message
        assert "tick_block" in message

    def test_stride_one_never_warns(self, instance):
        graph, values = instance
        with warnings.catch_warnings():
            warnings.simplefilter("error", ScalarFallbackWarning)
            run_batched(
                ScalarOnlyGossip(graph.n),
                values,
                0.25,
                spawn_rng(7, "run"),
                check_stride=1,
            )

    def test_block_protocols_never_warn(self, instance):
        graph, values = instance
        with warnings.catch_warnings():
            warnings.simplefilter("error", ScalarFallbackWarning)
            for name in ("randomized", "geographic", "spatial"):
                run_batched(
                    make_algorithm(name, graph),
                    values,
                    0.3,
                    spawn_rng(7, "run", name),
                    check_stride=4,
                )


class TestDegenerateMatrixState:
    """(n, 0) state is a caller error, not an empty-column no-op run."""

    def test_zero_field_matrix_raises_named_shape(self, instance):
        graph, values = instance
        with pytest.raises(ValueError, match=r"\(64, 0\)"):
            run_batched(
                make_algorithm("randomized", graph),
                np.empty((graph.n, 0)),
                0.25,
                spawn_rng(7, "run"),
            )

    def test_zero_field_matrix_raises_on_per_column_path_too(self, instance):
        graph, _ = instance
        with pytest.raises(ValueError, match="at least one field column"):
            run_batched(
                ScalarOnlyGossip(graph.n),
                np.empty((graph.n, 0)),
                0.25,
                spawn_rng(7, "run"),
            )


class TestWarningAttribution:
    """Engine warnings must point at the caller's line, not engine frames.

    Each check pins ``warning.filename`` to this test module: a wrong
    ``stacklevel`` attributes the warning to batching.py (or executor.py),
    which is exactly the regression these tests exist to catch.
    """

    @staticmethod
    def _filenames(captured, category):
        return [
            w.filename
            for w in captured
            if issubclass(w.category, category)
        ]

    def test_multifield_fallback_attributes_to_caller(self, instance):
        graph, values = instance
        from repro.engine.batching import MultiFieldFallbackWarning

        state = np.column_stack([values, values * 0.5])
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            run_batched(
                ScalarOnlyGossip(graph.n),
                state,
                0.25,
                spawn_rng(7, "run"),
                max_ticks=16,
            )
        filenames = self._filenames(captured, MultiFieldFallbackWarning)
        assert filenames and all(
            name.endswith("test_engine_batching.py") for name in filenames
        ), filenames

    def test_scalar_fallback_attributes_to_caller(self, instance):
        graph, values = instance
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            run_batched(
                ScalarOnlyGossip(graph.n),
                values,
                0.25,
                spawn_rng(7, "run"),
                check_stride=4,
                max_ticks=16,
            )
        filenames = self._filenames(captured, ScalarFallbackWarning)
        assert filenames and all(
            name.endswith("test_engine_batching.py") for name in filenames
        ), filenames

    def test_uncentered_field_attributes_to_caller(self, instance):
        from repro.engine.batching import UncenteredFieldWarning
        from repro.gossip.affine import AffineGossipKn, sample_alphas

        graph, values = instance
        algorithm = AffineGossipKn(
            graph.n, alphas=sample_alphas(graph.n, np.random.default_rng(1))
        )
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            run_batched(
                algorithm, values + 5.0, 0.25, spawn_rng(7, "run"), max_ticks=8
            )
        filenames = self._filenames(captured, UncenteredFieldWarning)
        assert filenames and all(
            name.endswith("test_engine_batching.py") for name in filenames
        ), filenames

    def test_sweep_entry_point_attributes_to_caller(self):
        """The same warnings routed through run_sweep_records still point
        here — the executor threads its extra frames into stacklevel."""
        from repro.engine.batching import MultiFieldFallbackWarning
        from repro.engine.executor import run_sweep_records
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(
            sizes=(24,),
            trials=1,
            epsilon=0.3,
            algorithms=("hierarchical",),
            fields=2,
        )
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            run_sweep_records(config)
        filenames = self._filenames(captured, MultiFieldFallbackWarning)
        assert filenames and all(
            name.endswith("test_engine_batching.py") for name in filenames
        ), filenames

    def test_trial_batch_fallback_attributes_to_caller(self):
        from repro.engine.executor import run_sweep_records
        from repro.engine.tensor import TrialBatchFallbackWarning
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(
            sizes=(24,),
            trials=1,
            epsilon=0.3,
            algorithms=("hierarchical",),
        )
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            run_sweep_records(config, trial_batch=True)
        filenames = self._filenames(captured, TrialBatchFallbackWarning)
        assert filenames and all(
            name.endswith("test_engine_batching.py") for name in filenames
        ), filenames
