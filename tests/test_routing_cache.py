"""Unit tests for repro.routing.cache (memoized greedy routing)."""

import numpy as np
import pytest

from repro.graphs.rgg import RandomGeometricGraph
from repro.routing import CachedGreedyRouter, GreedyRouter, TransmissionCounter


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(11)
    return RandomGeometricGraph.sample_connected(80, rng, radius_constant=3.0)


@pytest.fixture(scope="module")
def void_graph():
    # Two clusters out of radio range: cross-cluster greedy routes stop at
    # the cluster boundary (delivered=False), same as the uncached router.
    rng = np.random.default_rng(13)
    left = 0.25 * rng.random((12, 2))
    right = 0.25 * rng.random((12, 2)) + 0.75
    return RandomGeometricGraph.build(np.vstack([left, right]), radius=0.2)


class TestExactEquivalence:
    def test_all_pairs_match_uncached_router(self, graph):
        plain = GreedyRouter(graph)
        cached = CachedGreedyRouter(graph)
        rng = np.random.default_rng(17)
        pairs = rng.integers(graph.n, size=(300, 2))
        for source, target in pairs:
            source, target = int(source), int(target)
            expected = plain.route_to_node(source, target)
            got = cached.route_to_node(source, target)
            assert got.path == expected.path
            assert got.delivered == expected.delivered

    def test_round_trip_matches_and_charges_identically(self, graph):
        plain = GreedyRouter(graph)
        cached = CachedGreedyRouter(plain)
        plain_counter = TransmissionCounter()
        cached_counter = TransmissionCounter()
        rng = np.random.default_rng(19)
        for _ in range(100):
            source = int(rng.integers(graph.n))
            target = int(rng.integers(graph.n - 1))
            target = target + 1 if target >= source else target
            pf, pb = plain.round_trip(source, target, plain_counter)
            cf, cb = cached.round_trip(source, target, cached_counter)
            assert (cf.path, cb.path) == (pf.path, pb.path)
            assert (cf.delivered, cb.delivered) == (pf.delivered, pb.delivered)
        assert cached_counter.snapshot() == plain_counter.snapshot()

    def test_voids_fail_identically(self, void_graph):
        plain = GreedyRouter(void_graph)
        cached = CachedGreedyRouter(void_graph)
        n = void_graph.n
        crossings = [(0, n - 1), (1, n - 2), (n - 1, 0)]
        for source, target in crossings:
            expected = plain.route_to_node(source, target)
            got = cached.route_to_node(source, target)
            assert not got.delivered
            assert got.path == expected.path
        # Repeats of the failing route replay from cache, identically.
        again = cached.route_to_node(0, n - 1)
        assert again.path == plain.route_to_node(0, n - 1).path


class TestCacheBehaviour:
    def test_repeated_routes_hit_the_cache(self, graph):
        cached = CachedGreedyRouter(graph)
        cached.route_to_node(0, graph.n - 1)
        assert (cached.hits, cached.misses) == (0, 1)  # one column build
        cached.route_to_node(0, graph.n - 1)
        assert (cached.hits, cached.misses) == (1, 1)
        assert cached.hit_rate == pytest.approx(0.5)

    def test_one_column_serves_every_source(self, graph):
        cached = CachedGreedyRouter(graph)
        first = cached.route_to_node(0, graph.n - 1)
        assert len(cached) == 1  # one target column
        # Any route towards the same target — from mid-path or any other
        # source — re-uses the column: no new misses.
        suffix = cached.route_to_node(int(first.path[1]), graph.n - 1)
        assert suffix.path == first.path[1:]
        for source in range(1, graph.n, 7):
            cached.route_to_node(source, graph.n - 1)
        assert cached.misses == 1
        assert len(cached) == 1

    def test_counter_optional_and_charged_once_per_hop(self, graph):
        cached = CachedGreedyRouter(graph)
        counter = TransmissionCounter()
        result = cached.route_to_node(0, graph.n - 1, counter, "route")
        assert counter.snapshot() == {
            "route": result.hops,
            "total": result.hops,
        }

    def test_hit_rate_defined_before_any_route(self, graph):
        assert CachedGreedyRouter(graph).hit_rate == 0.0
