"""Unit tests for repro.routing.cache (memoized greedy routing)."""

import numpy as np
import pytest

from repro.graphs.rgg import RandomGeometricGraph
from repro.routing import CachedGreedyRouter, GreedyRouter, TransmissionCounter


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(11)
    return RandomGeometricGraph.sample_connected(80, rng, radius_constant=3.0)


@pytest.fixture(scope="module")
def void_graph():
    # Two clusters out of radio range: cross-cluster greedy routes stop at
    # the cluster boundary (delivered=False), same as the uncached router.
    rng = np.random.default_rng(13)
    left = 0.25 * rng.random((12, 2))
    right = 0.25 * rng.random((12, 2)) + 0.75
    return RandomGeometricGraph.build(np.vstack([left, right]), radius=0.2)


class TestExactEquivalence:
    def test_all_pairs_match_uncached_router(self, graph):
        plain = GreedyRouter(graph)
        cached = CachedGreedyRouter(graph)
        rng = np.random.default_rng(17)
        pairs = rng.integers(graph.n, size=(300, 2))
        for source, target in pairs:
            source, target = int(source), int(target)
            expected = plain.route_to_node(source, target)
            got = cached.route_to_node(source, target)
            assert got.path == expected.path
            assert got.delivered == expected.delivered

    def test_round_trip_matches_and_charges_identically(self, graph):
        plain = GreedyRouter(graph)
        cached = CachedGreedyRouter(plain)
        plain_counter = TransmissionCounter()
        cached_counter = TransmissionCounter()
        rng = np.random.default_rng(19)
        for _ in range(100):
            source = int(rng.integers(graph.n))
            target = int(rng.integers(graph.n - 1))
            target = target + 1 if target >= source else target
            pf, pb = plain.round_trip(source, target, plain_counter)
            cf, cb = cached.round_trip(source, target, cached_counter)
            assert (cf.path, cb.path) == (pf.path, pb.path)
            assert (cf.delivered, cb.delivered) == (pf.delivered, pb.delivered)
        assert cached_counter.snapshot() == plain_counter.snapshot()

    def test_voids_fail_identically(self, void_graph):
        plain = GreedyRouter(void_graph)
        cached = CachedGreedyRouter(void_graph)
        n = void_graph.n
        crossings = [(0, n - 1), (1, n - 2), (n - 1, 0)]
        for source, target in crossings:
            expected = plain.route_to_node(source, target)
            got = cached.route_to_node(source, target)
            assert not got.delivered
            assert got.path == expected.path
        # Repeats of the failing route replay from cache, identically.
        again = cached.route_to_node(0, n - 1)
        assert again.path == plain.route_to_node(0, n - 1).path


class TestCacheBehaviour:
    def test_repeated_routes_hit_the_cache(self, graph):
        cached = CachedGreedyRouter(graph)
        cached.route_to_node(0, graph.n - 1)
        assert (cached.hits, cached.misses) == (0, 1)  # one column build
        cached.route_to_node(0, graph.n - 1)
        assert (cached.hits, cached.misses) == (1, 1)
        assert cached.hit_rate == pytest.approx(0.5)

    def test_one_column_serves_every_source(self, graph):
        cached = CachedGreedyRouter(graph)
        first = cached.route_to_node(0, graph.n - 1)
        assert len(cached) == 1  # one target column
        # Any route towards the same target — from mid-path or any other
        # source — re-uses the column: no new misses.
        suffix = cached.route_to_node(int(first.path[1]), graph.n - 1)
        assert suffix.path == first.path[1:]
        for source in range(1, graph.n, 7):
            cached.route_to_node(source, graph.n - 1)
        assert cached.misses == 1
        assert len(cached) == 1

    def test_counter_optional_and_charged_once_per_hop(self, graph):
        cached = CachedGreedyRouter(graph)
        counter = TransmissionCounter()
        result = cached.route_to_node(0, graph.n - 1, counter, "route")
        assert counter.snapshot() == {
            "route": result.hops,
            "total": result.hops,
        }

    def test_hit_rate_defined_before_any_route(self, graph):
        assert CachedGreedyRouter(graph).hit_rate == 0.0


class TestInvalidate:
    """The adjacency-change API the dynamics layer drives per epoch."""

    def _mutable_graph(self):
        rng = np.random.default_rng(23)
        return RandomGeometricGraph.sample_connected(
            60, rng, radius_constant=3.0
        )

    @staticmethod
    def _crash(graph, node):
        """Mask ``node`` out of the adjacency in place; returns changed rows."""
        changed = [node] + [int(v) for v in graph.neighbors[node]]
        for v in graph.neighbors[node]:
            adj = graph.neighbors[int(v)]
            graph.neighbors[int(v)] = adj[adj != node]
        graph.neighbors[node] = np.empty(0, dtype=np.int64)
        return changed

    def test_patched_columns_match_fresh_builds(self):
        graph = self._mutable_graph()
        cached = CachedGreedyRouter(graph)
        targets = [0, 17, 41, 59]
        for target in targets:
            cached.route_to_node(3, target)
        changed = self._crash(graph, 29)
        assert cached.invalidate(changed) == len(targets)
        fresh = CachedGreedyRouter(graph)
        rng = np.random.default_rng(29)
        for target in targets:
            for source in rng.integers(graph.n, size=20):
                got = cached.route_to_node(int(source), target)
                expected = fresh.route_to_node(int(source), target)
                assert got.path == expected.path
                assert got.delivered == expected.delivered

    def test_invalidate_none_drops_every_column(self):
        graph = self._mutable_graph()
        cached = CachedGreedyRouter(graph)
        cached.route_to_node(0, 10)
        cached.route_to_node(0, 20)
        assert len(cached) == 2
        assert cached.invalidate(None) == 2
        assert len(cached) == 0
        assert cached.invalidations == 1
        # Routing afterwards rebuilds from the current adjacency.
        self._crash(graph, 10)
        cached.invalidate(None)
        route = cached.route_to_node(0, 10)
        assert not route.delivered  # node 10 is unreachable now

    def test_invalidate_with_no_columns_is_cheap_and_safe(self):
        graph = self._mutable_graph()
        cached = CachedGreedyRouter(graph)
        assert cached.invalidate([1, 2, 3]) == 0
        assert cached.invalidate([]) == 0

    def test_routes_never_enter_a_masked_node(self):
        graph = self._mutable_graph()
        cached = CachedGreedyRouter(graph)
        # Populate a column that (likely) routes through the middle.
        for source in range(0, graph.n, 5):
            cached.route_to_node(source, 59)
        victim = int(cached.route_to_node(0, 59).path[1])
        changed = self._crash(graph, victim)
        cached.invalidate(changed)
        for source in range(graph.n):
            path = cached.route_to_node(source, 59).path
            assert victim not in path[1:], (source, path)
