"""Unit tests for repro.analysis.lemma1."""

import numpy as np
import pytest

from repro.analysis import (
    contraction_factor,
    expected_update_matrix,
    monte_carlo_expected_matrix,
    paper_loose_bound,
    paper_tight_bound,
    verify_lemma1,
)
from repro.gossip import sample_alphas


class TestExpectedUpdateMatrix:
    def test_symmetric(self):
        alphas = sample_alphas(12, np.random.default_rng(3))
        matrix = expected_update_matrix(alphas)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(5)
        alphas = sample_alphas(8, rng)
        exact = expected_update_matrix(alphas)
        estimate = monte_carlo_expected_matrix(alphas, rng, samples=60_000)
        np.testing.assert_allclose(exact, estimate, atol=0.02)

    def test_rows_sum_to_one(self):
        # AᵀA preserves 1 in expectation? Not exactly — but E[AᵀA]·1 should
        # equal 1 because A·1's energy feeds back: verify via the formula.
        # (The update conserves the SUM: 1ᵀA = 1ᵀ, hence 1ᵀE[AᵀA]1 = ... )
        # What *is* exact: column sums against 1 give 1ᵀE[AᵀA] = E[(A·1)ᵀA].
        # We simply pin down the closed form numerically instead:
        alphas = np.full(6, 0.4)
        matrix = expected_update_matrix(alphas)
        # With equal alphas the matrix must be exchangeable: all diagonal
        # entries equal, all off-diagonal entries equal.
        diag = np.diag(matrix)
        off = matrix[~np.eye(6, dtype=bool)]
        assert np.allclose(diag, diag[0])
        assert np.allclose(off, off[0])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            expected_update_matrix(np.array([0.4]))
        with pytest.raises(ValueError):
            monte_carlo_expected_matrix(
                np.array([0.4, 0.4]), np.random.default_rng(1), samples=0
            )


class TestContractionFactor:
    def test_lemma1_loose_bound_holds(self):
        # The paper's Lemma 1: contraction < 1 − 1/(2n) for α ∈ (1/3, 1/2).
        rng = np.random.default_rng(7)
        for n in (4, 8, 16, 32, 64):
            alphas = sample_alphas(n, rng)
            assert contraction_factor(alphas) < paper_loose_bound(n)

    def test_tight_bound_approximately_holds(self):
        # The proof's intermediate constant 1 − 8/(9(n−1)).
        rng = np.random.default_rng(9)
        for n in (8, 24, 48):
            alphas = sample_alphas(n, rng)
            assert contraction_factor(alphas) <= paper_tight_bound(n) + 1e-9

    def test_alpha_half_gives_fastest_contraction(self):
        # α = 1/2 is plain averaging: (1−2α)² = 0 kills the diagonal term.
        n = 16
        fast = contraction_factor(np.full(n, 0.5))
        slow = contraction_factor(np.full(n, 0.34))
        assert fast < slow

    def test_alpha_outside_unit_interval_can_expand(self):
        # The instability the hierarchy guards against: with α > 1 the
        # expected update is no longer a contraction on 1⊥.
        n = 8
        factor = contraction_factor(np.full(n, 1.5))
        assert factor > 1.0

    def test_factor_below_one_for_valid_alphas(self):
        alphas = sample_alphas(20, np.random.default_rng(11))
        assert 0.0 < contraction_factor(alphas) < 1.0


class TestBoundsAndVerdicts:
    def test_bounds_ordering(self):
        for n in (4, 10, 100):
            # The proof's constant is stronger (smaller) than the headline.
            assert paper_tight_bound(n) < paper_loose_bound(n)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            paper_loose_bound(1)
        with pytest.raises(ValueError):
            paper_tight_bound(0)

    def test_verify_lemma1_verdict(self):
        alphas = sample_alphas(16, np.random.default_rng(13))
        verdict = verify_lemma1(alphas)
        assert verdict["n"] == 16
        assert verdict["satisfies_loose"]
        assert verdict["contraction_factor"] < verdict["loose_bound"]

    def test_empirical_decay_matches_spectral_factor(self):
        # Run the actual dynamics; the measured per-tick decay of E‖x‖²
        # should match the top eigenvalue of the projected E[AᵀA].
        from repro.gossip import AffineGossipKn
        from repro.routing import TransmissionCounter

        n, ticks, trials = 12, 300, 300
        rng = np.random.default_rng(17)
        alphas = sample_alphas(n, rng)
        factor = contraction_factor(alphas)
        ratios = []
        for _ in range(trials):
            algo = AffineGossipKn(n, alphas=alphas)
            x = rng.normal(size=n)
            x -= x.mean()
            start = (x**2).sum()
            counter = TransmissionCounter()
            for _t in range(ticks):
                algo.tick(int(rng.integers(n)), x, counter, rng)
            ratios.append((x**2).sum() / start)
        measured_rate = np.log(np.mean(ratios)) / ticks
        spectral_rate = np.log(factor)
        # Spectral factor is an upper bound on the worst direction; the
        # average-case measured rate should be at least as fast and within
        # a reasonable band of it.
        assert measured_rate <= spectral_rate * 0.5
