"""Observability contracts: trace identity, replay exactness, telemetry.

The recorder's headline guarantee is that tracing is *purely
observational*: a run under an active
:class:`~repro.observability.events.TraceRecorder` is identical in
values, ticks, and transmissions to the same run untraced (the trace-off
path shares the untraced code byte for byte — the recorder read is one
``is None`` branch).  On top of that, the replay engine must re-derive
every recorded number from the JSONL events alone, bitwise, including
fault metrics and per-column field errors.  This module asserts both
across the golden protocol registry, plus the telemetry satellites
(per-cell wall clock, route-cache counters, the ``CellRecord``
back-compat rules) and the trace-driven timeline renderer.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from protocol_equivalence import (
    CASES,
    assert_results_identical,
    case_names,
    initial_field_matrix,
    initial_values,
    multifield_native_case_names,
    run_engine,
)
from repro.engine.batching import run_batched
from repro.engine.executor import (
    CellRecord,
    cell_traceable,
    run_sweep_records,
)
from repro.engine.store import ResultStore
from repro.experiments.config import ExperimentConfig
from repro.experiments.seeds import spawn_rng
from repro.observability import (
    ReplayError,
    TraceRecorder,
    cache_stats,
    capture,
    collect_telemetry,
    replay_events,
    replay_file,
    validate_record,
    validate_result,
)
from repro.observability.events import load_trace
from repro.viz import render_timeline

STRIDES = (1, 4)

#: The faulted golden cases: replay must re-derive their fault metrics.
FAULTED = ("path-averaging-faulted", "randomized-faulted")


def run_traced(case, seed=7, check_stride=1, fields=None):
    """One engine run of ``case`` under a capture; returns the recorder too.

    Mirrors :func:`protocol_equivalence.run_engine` (same seeds, same
    initial state) so traced and untraced runs are directly comparable.
    """
    algorithm = case.factory()
    state = initial_values() if fields is None else initial_field_matrix(fields)
    with capture() as recorder:
        result = run_batched(
            algorithm,
            state,
            case.epsilon,
            spawn_rng(seed, "golden", case.name),
            check_stride=check_stride,
        )
    return algorithm, result, recorder


# -- trace identity + replay exactness ---------------------------------------


@pytest.mark.parametrize("check_stride", STRIDES)
@pytest.mark.parametrize("name", case_names(tick_driven=True))
def test_traced_run_is_identical_and_replays_bitwise(name, check_stride):
    """Trace-on identity *and* replay exactness for every tick-driven case.

    The untraced engine run is the reference; the traced run must match
    it bit for bit (the recorder never consumes randomness or changes a
    code path), and replaying the captured events must reconstruct the
    run's values, transmissions, ticks, error, and converged flag
    exactly.
    """
    case = CASES[name]
    baseline = run_engine(case, seed=7, check_stride=check_stride)
    _, traced, recorder = run_traced(case, seed=7, check_stride=check_stride)
    assert_results_identical(
        baseline, traced, f"{name}, stride {check_stride}, traced vs untraced"
    )
    assert recorder.events[0]["e"] == "start"
    assert recorder.events[-1]["e"] == "end"
    validate_result(replay_events(recorder.events), traced)


@pytest.mark.parametrize("check_stride", STRIDES)
@pytest.mark.parametrize("name", FAULTED)
def test_replay_rederives_fault_metrics(name, check_stride):
    """Aborts, wasted ticks, losses, churn, and live-node error — all
    recomputed from trace events alone, equal to the live overlay's."""
    case = CASES[name]
    algorithm, result, recorder = run_traced(
        case, seed=7, check_stride=check_stride
    )
    live = algorithm.fault_metrics(result.values, result.initial_values)
    replay = replay_events(recorder.events)
    assert replay.fault_metrics() == dict(live)


@pytest.mark.parametrize("check_stride", STRIDES)
@pytest.mark.parametrize(
    "name",
    [n for n in multifield_native_case_names() if CASES[n].tick_driven],
)
def test_multifield_replay_matches_column_errors(name, check_stride):
    """A k=8 matrix trace replays to the exact per-column final errors."""
    case = CASES[name]
    _, result, recorder = run_traced(
        case, seed=7, check_stride=check_stride, fields=8
    )
    replay = replay_events(recorder.events)
    validate_result(replay, result)
    assert replay.fields == 8
    np.testing.assert_array_equal(replay.field_errors, result.column_errors)


def test_trace_round_trips_through_jsonl(tmp_path):
    """write → load_trace → replay: the file is the trace, exactly."""
    _, result, recorder = run_traced(CASES["randomized"], check_stride=4)
    path = recorder.write(tmp_path / "trace.jsonl")
    assert load_trace(path) == recorder.events
    validate_result(replay_file(path), result)


# -- recorder discipline ------------------------------------------------------


@pytest.mark.filterwarnings("ignore::Warning")  # per-column fallback notice
@pytest.mark.parametrize("fields", [None, 2])
def test_nested_runs_suspend_the_recorder(fields):
    """Round-based delegation and the per-column multi-field fallback run
    whole runs inside the traced run; both suspend the recorder, so a
    capture around them yields an *empty* trace, never an interleaved one.
    """
    case = CASES["hierarchical"]
    _, result, recorder = run_traced(case, fields=fields)
    assert len(recorder) == 0
    assert result.error <= 1.0  # the run itself still completed


def test_cell_traceable_predicate():
    assert cell_traceable(CASES["randomized"].factory(), initial_values())
    assert cell_traceable(
        CASES["geographic-uniform"].factory(), initial_field_matrix(4)
    )
    assert not cell_traceable(CASES["hierarchical"].factory(), initial_values())


def test_capture_nesting_raises():
    with capture():
        with pytest.raises(RuntimeError, match="already active"):
            with capture():
                pass  # pragma: no cover


def test_annotate_requires_a_start_event():
    recorder = TraceRecorder()
    with pytest.raises(ValueError, match="no start event"):
        recorder.annotate(cell={"algorithm": "x", "n": 1, "trial": 0})


# -- tamper detection ---------------------------------------------------------


def _tamper_check_error(events):
    check = next(e for e in events if e["e"] == "check")
    check["error"] = check["error"] + 1e-12


def _tamper_drop_update(events):
    index = next(i for i, e in enumerate(events) if e["e"] == "pairs")
    del events[index]


def _tamper_end_transmissions(events):
    events[-1]["tx"]["total"] += 1


def _tamper_converged_flag(events):
    events[-1]["converged"] = not events[-1]["converged"]


def _tamper_final_values(events):
    events[-1]["values"][0] += 0.5


def _tamper_schema_version(events):
    events[0]["v"] = 999


def _tamper_truncate_end(events):
    events.pop()


@pytest.mark.parametrize(
    "tamper",
    [
        _tamper_check_error,
        _tamper_drop_update,
        _tamper_end_transmissions,
        _tamper_converged_flag,
        _tamper_final_values,
        _tamper_schema_version,
        _tamper_truncate_end,
    ],
)
def test_replay_detects_tampered_traces(tamper):
    """Any edit to what the trace *claims* contradicts the reconstruction."""
    _, _, recorder = run_traced(CASES["randomized"], check_stride=4)
    events = copy.deepcopy(recorder.events)
    tamper(events)
    with pytest.raises(ReplayError):
        replay_events(events)


def test_replay_rejects_interleaved_traces():
    _, _, recorder = run_traced(CASES["randomized"])
    events = copy.deepcopy(recorder.events)
    events.insert(2, copy.deepcopy(events[0]))
    with pytest.raises(ReplayError, match="second start"):
        replay_events(events)


# -- telemetry + CellRecord ---------------------------------------------------


def test_cache_stats_reaches_the_route_cache():
    # The memoized router only engages on the batched tick path (the
    # scalar loop keeps the plain router for legacy bit-identity).
    algorithm, _, _ = run_traced(CASES["path-averaging"], check_stride=4)
    stats = cache_stats(algorithm)
    assert stats is not None
    assert stats["cache_hits"] + stats["cache_misses"] > 0
    # Through the DynamicGossip + LossyRouter wrappers too.
    faulted, _, _ = run_traced(
        CASES["path-averaging-faulted"], check_stride=4
    )
    assert cache_stats(faulted) is not None
    # Cache-less protocols report nothing rather than zeros.
    assert cache_stats(CASES["randomized"].factory()) is None


def test_collect_telemetry_flat_mapping():
    telemetry = collect_telemetry(
        object(), wall_clock=2.0, ticks=1000, trace_events=42
    )
    assert telemetry["ticks_per_sec"] == 500.0
    assert telemetry["trace_events"] == 42.0
    assert telemetry["scalar_fallback"] == 0.0


_RECORD_KWARGS = dict(
    algorithm="randomized",
    n=8,
    trial=0,
    epsilon=0.1,
    transmissions={"near": 2, "total": 2},
    ticks=1,
    converged=True,
    error=0.05,
)


def test_cell_record_timing_excluded_from_equality():
    """Wall clock and telemetry never make two otherwise-equal cells
    differ — the serial-vs-parallel determinism tests depend on it."""
    plain = CellRecord(**_RECORD_KWARGS)
    timed = CellRecord(
        **_RECORD_KWARGS,
        wall_clock=1.25,
        telemetry={"ticks_per_sec": 0.8},
    )
    assert plain == timed


def test_cell_record_timing_round_trip_and_back_compat():
    timed = CellRecord(
        **_RECORD_KWARGS,
        wall_clock=0.5,
        telemetry={"ticks_per_sec": 2.0, "trace_events": 7.0},
    )
    payload = timed.to_dict()
    again = CellRecord.from_dict(payload)
    assert again.wall_clock == 0.5
    assert again.telemetry == {"ticks_per_sec": 2.0, "trace_events": 7.0}
    # A pre-telemetry store line (no timing keys) loads unchanged...
    legacy_payload = {
        k: v
        for k, v in payload.items()
        if k not in ("wall_clock", "telemetry")
    }
    legacy = CellRecord.from_dict(legacy_payload)
    assert legacy.wall_clock is None and legacy.telemetry is None
    # ...and serialises without inventing the keys.
    assert "wall_clock" not in legacy.to_dict()
    assert "telemetry" not in legacy.to_dict()


# -- the traced sweep path ----------------------------------------------------


def test_traced_sweep_writes_validating_traces(tmp_path):
    """End to end: sweep → JSONL traces beside the store → replay each
    trace and validate it against its stored cell record exactly."""
    config = ExperimentConfig(
        sizes=(32,),
        epsilon=0.3,
        trials=2,
        field="random",
        root_seed=11,
        algorithms=("randomized", "geographic", "hierarchical"),
    )
    store = ResultStore(tmp_path, config, check_stride=4)
    records = run_sweep_records(
        config, check_stride=4, store=store, trace=True
    )
    traces = sorted((store.directory / "traces").glob("*.jsonl"))
    # Tick-driven cells write traces; the round-based hierarchical
    # executor (whose nested runs suspend the recorder) writes none.
    assert len(traces) == 4
    assert all("hierarchical" not in trace.name for trace in traces)
    for trace in traces:
        start = load_trace(trace)[0]
        cell = start["cell"]
        record = records[(cell["algorithm"], cell["n"], cell["trial"])]
        validate_record(replay_file(trace), record)
        assert record.wall_clock is not None
        assert record.telemetry is not None
        assert record.telemetry["ticks_per_sec"] > 0
        assert record.telemetry["trace_events"] == float(len(load_trace(trace)))
    # Untraced cells still carry wall clock + telemetry (minus the count).
    hierarchical = records[("hierarchical", 32, 0)]
    assert hierarchical.wall_clock is not None
    assert "trace_events" not in hierarchical.telemetry


def test_trace_without_store_is_refused():
    config = ExperimentConfig(
        sizes=(32,), trials=1, algorithms=("randomized",)
    )
    with pytest.raises(ValueError, match="trace"):
        run_sweep_records(config, trace=True)


# -- the timeline renderer ----------------------------------------------------


def test_render_timeline_from_a_real_trace():
    _, _, recorder = run_traced(CASES["randomized"], check_stride=4)
    art = render_timeline(recorder.events)
    assert "n=48" in art
    assert "stride=4" in art
    assert "ticks" in art


def test_render_timeline_fault_lane():
    trace = [
        {
            "e": "start",
            "v": 1,
            "algorithm": "demo",
            "n": 4,
            "k": 1,
            "epsilon": 0.1,
            "stride": 1,
            "initial": [1.0, -1.0, 0.5, -0.5],
        },
        {"e": "check", "ticks": 10, "tx": 2, "error": 0.5},
        {"e": "epoch", "epoch": 1, "tick": 16, "crashed": [1], "recovered": []},
        {"e": "epoch", "epoch": 2, "tick": 32, "crashed": [], "recovered": [1]},
        {
            "e": "end",
            "ticks": 40,
            "tx": {"total": 2},
            "error": 0.25,
            "converged": False,
            "values": [1.0, -1.0, 0.5, -0.5],
        },
    ]
    art = render_timeline(trace)
    assert "faults" in art
    assert "x = crashes" in art


def test_render_timeline_rejects_non_traces():
    with pytest.raises(ValueError, match="no start event"):
        render_timeline([{"e": "check", "ticks": 1, "tx": 1, "error": 0.5}])


# -- the CLI surface ----------------------------------------------------------


def test_cli_trace_then_replay(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "run.jsonl"
    code = main(
        [
            "trace",
            "--algorithm",
            "randomized",
            "--n",
            "48",
            "--epsilon",
            "0.3",
            "--out",
            str(out),
        ]
    )
    assert code in (0, 1)
    assert out.exists()
    assert json.loads(out.read_text().splitlines()[0])["e"] == "start"
    assert main(["replay", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "traced run" in printed
    assert "replayed and validated" in printed


def test_cli_trace_refuses_round_based(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "--algorithm", "hierarchical", "--n", "48"])
    assert excinfo.value.code == 2


def test_cli_replay_fails_on_tampered_file(tmp_path, capsys):
    from repro.cli import main

    _, _, recorder = run_traced(CASES["randomized"])
    events = copy.deepcopy(recorder.events)
    events[-1]["tx"]["total"] += 1
    path = tmp_path / "bad.jsonl"
    path.write_text(
        "".join(json.dumps(event) + "\n" for event in events),
        encoding="utf-8",
    )
    assert main(["replay", str(path)]) == 1
    assert "FAIL" in capsys.readouterr().out
