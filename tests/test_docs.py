"""Docs-site tests: API generator coverage and docs/mkdocs consistency.

The CI docs job runs ``docs/gen_api_ref.py`` then ``mkdocs build
--strict``; mkdocs is not a runtime dependency, so these tests cover the
parts that matter locally: the generator runs, every public symbol of
the strict packages is documented (the acceptance bar for the rendered
API reference), and the pages mkdocs.yml's nav references are exactly
the pages the generator emits.
"""

import importlib.util
import pathlib
import re
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent
DOCS = REPO / "docs"


@pytest.fixture(scope="module")
def gen_api_ref():
    spec = importlib.util.spec_from_file_location(
        "gen_api_ref", DOCS / "gen_api_ref.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def generated(gen_api_ref, tmp_path_factory):
    out = tmp_path_factory.mktemp("api")
    missing = gen_api_ref.generate(out)
    return out, missing


class TestApiReference:
    def test_strict_packages_fully_documented(self, generated):
        """Every gossip/engine/routing public symbol has a docstring."""
        _, missing = generated
        assert missing == [], f"undocumented public symbols: {missing}"

    def test_one_page_per_package_plus_index(self, gen_api_ref, generated):
        out, _ = generated
        pages = sorted(p.name for p in out.glob("*.md"))
        expected = sorted(
            [pkg.replace(".", "-") + ".md" for pkg in gen_api_ref.PACKAGES]
            + ["index.md"]
        )
        assert pages == expected

    def test_new_protocol_and_zoo_symbols_rendered(self, generated):
        out, _ = generated
        gossip = (out / "repro-gossip.md").read_text(encoding="utf-8")
        assert "PathAveragingGossip" in gossip
        assert "tick_block" in gossip
        graphs = (out / "repro-graphs.md").read_text(encoding="utf-8")
        assert "build_topology" in graphs
        dynamics = (out / "repro-dynamics.md").read_text(encoding="utf-8")
        assert "DynamicSubstrate" in dynamics
        assert "FaultSpec" in dynamics
        assert "LossChannel" in dynamics
        assert "watts_strogatz_graph" in graphs

    def test_multifield_symbols_rendered(self, generated):
        out, _ = generated
        engine = (out / "repro-engine.md").read_text(encoding="utf-8")
        assert "MultiFieldFallbackWarning" in engine
        assert "multifield_capability" in engine
        workloads = (out / "repro-workloads.md").read_text(encoding="utf-8")
        assert "build_field_matrix" in workloads
        assert "quantile_indicator_stack" in workloads
        metrics = (out / "repro-metrics.md").read_text(encoding="utf-8")
        assert "primary_field" in metrics
        assert "column_errors" in metrics

    def test_sweep_service_symbols_rendered(self, generated):
        """repro.engine is strict, so the queue/service modules ride the
        same docstring bar as the rest of the engine."""
        out, _ = generated
        engine = (out / "repro-engine.md").read_text(encoding="utf-8")
        assert "repro.engine.queue" in engine
        assert "repro.engine.service" in engine
        assert "LeaseQueue" in engine
        assert "run_distributed_sweep" in engine
        assert "ShardDivergenceError" in engine
        assert "canonical_record_bytes" in engine
        observability = (out / "repro-observability.md").read_text(
            encoding="utf-8"
        )
        assert "service_telemetry" in observability
        experiments = (out / "repro-experiments.md").read_text(
            encoding="utf-8"
        )
        assert "render_partial_markdown" in experiments

    def test_classmethods_and_properties_rendered(self, generated):
        """vars() yields raw descriptors; the generator must not drop them."""
        out, _ = generated
        graphs = (out / "repro-graphs.md").read_text(encoding="utf-8")
        assert "RandomGeometricGraph.sample_connected" in graphs  # classmethod
        assert "RandomGeometricGraph.n` *(property)*" in graphs
        routing = (out / "repro-routing.md").read_text(encoding="utf-8")
        assert "CachedGreedyRouter.hit_rate` *(property)*" in routing

    def test_cli_entry_reports_coverage(self, gen_api_ref, tmp_path, capsys):
        assert gen_api_ref.main(["--out", str(tmp_path)]) == 0
        assert "API reference written" in capsys.readouterr().out


class TestDocsSite:
    def test_nav_pages_exist_or_are_generated(self, gen_api_ref):
        """Every nav entry is a committed page or a generator output."""
        nav_paths = re.findall(
            r":\s*([\w/-]+\.md)\s*$",
            (REPO / "mkdocs.yml").read_text(encoding="utf-8"),
            flags=re.MULTILINE,
        )
        assert nav_paths, "mkdocs.yml nav parsed empty"
        generated = {
            "api/" + pkg.replace(".", "-") + ".md"
            for pkg in gen_api_ref.PACKAGES
        } | {"api/index.md"}
        for path in nav_paths:
            assert (DOCS / path).exists() or path in generated, (
                f"nav references {path}, which neither exists in docs/ nor "
                "is produced by docs/gen_api_ref.py"
            )

    def test_batching_page_backs_the_warning_message(self):
        """The ScalarFallbackWarning names this page; keep it load-bearing."""
        page = (DOCS / "batching.md").read_text(encoding="utf-8")
        assert "ScalarFallbackWarning" in page
        assert "tick_block" in page
        assert "protocol_batching" in page

    def test_matrix_page_covers_every_registered_name(self):
        from repro.experiments.config import ALGORITHMS
        from repro.graphs.generators import TOPOLOGIES

        page = (DOCS / "matrix.md").read_text(encoding="utf-8")
        for name in list(ALGORITHMS) + list(TOPOLOGIES):
            assert f"`{name}`" in page, f"matrix page missing {name!r}"

    def test_sweep_service_page_backs_the_code_references(self):
        """queue.py/service.py docstrings point here for the full lease
        lifecycle and failure matrix; keep the page load-bearing."""
        page = (DOCS / "sweep_service.md").read_text(encoding="utf-8")
        for anchor in (
            "Lease lifecycle",
            "heartbeat",
            "reclaim",
            "Shard-merge semantics",
            "ShardDivergenceError",
            "Failure matrix",
            "serve-sweep",
            "store-diff",
        ):
            assert anchor in page, f"sweep_service.md missing {anchor!r}"
        matrix = (DOCS / "matrix.md").read_text(encoding="utf-8")
        assert "sweep_service.md" in matrix  # the service column's footnote
