"""Unit tests for repro.experiments (config, seeds, runner, tables)."""

import numpy as np
import pytest

from repro.experiments import (
    ALGORITHMS,
    ExperimentConfig,
    aggregate_trials,
    derive_seed,
    fit_loglog_slope,
    format_table,
    format_value,
    make_algorithm,
    run_convergence,
    run_scaling_sweep,
    spawn_rng,
)
from repro.graphs import RandomGeometricGraph


class TestSeeds:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_distinct_tags_distinct_seeds(self):
        seeds = {derive_seed(7, tag) for tag in ("a", "b", "c", 1, 2, 3)}
        assert len(seeds) == 6

    def test_spawn_rng_reproducible(self):
        a = spawn_rng(3, "x").random(4)
        b = spawn_rng(3, "x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_rejects_negative_root(self):
        with pytest.raises(ValueError):
            derive_seed(-1, "a")


class TestConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert "hierarchical" in config.algorithms

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(sizes=())
        with pytest.raises(ValueError):
            ExperimentConfig(sizes=(4,))
        with pytest.raises(ValueError):
            ExperimentConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(trials=0)
        with pytest.raises(ValueError):
            ExperimentConfig(algorithms=("telepathy",))

    def test_registry_and_factory(self):
        rng = np.random.default_rng(79)
        graph = RandomGeometricGraph.sample_connected(64, rng, radius_constant=3.0)
        for name in ALGORITHMS:
            algorithm = make_algorithm(name, graph)
            assert hasattr(algorithm, "run")
        with pytest.raises(ValueError):
            make_algorithm("nope", graph)


class TestRunner:
    def test_run_convergence_shares_instance(self):
        config = ExperimentConfig(
            sizes=(64,),
            epsilon=0.3,
            trials=1,
            radius_constant=3.0,
            algorithms=("randomized", "geographic"),
        )
        runs = run_convergence(config, 64)
        assert [r.algorithm for r in runs] == ["randomized", "geographic"]
        # Same placement & field => identical initial values.
        np.testing.assert_array_equal(
            runs[0].result.initial_values, runs[1].result.initial_values
        )
        assert all(r.converged for r in runs)

    def test_run_convergence_deterministic(self):
        config = ExperimentConfig(
            sizes=(64,), epsilon=0.3, trials=1, radius_constant=3.0,
            algorithms=("randomized",),
        )
        first = run_convergence(config, 64)[0]
        second = run_convergence(config, 64)[0]
        assert first.transmissions == second.transmissions

    def test_scaling_sweep_shape(self):
        config = ExperimentConfig(
            sizes=(64, 128),
            epsilon=0.3,
            trials=2,
            radius_constant=3.0,
            algorithms=("geographic",),
        )
        sweep = run_scaling_sweep(config)
        assert set(sweep) == {"geographic"}
        points = sweep["geographic"]
        assert [p.n for p in points] == [64, 128]
        assert all(p.trials == 2 for p in points)
        assert all(p.converged_fraction == 1.0 for p in points)

    def test_aggregate_trials_statistics(self):
        config = ExperimentConfig(
            sizes=(64,), epsilon=0.3, trials=1, radius_constant=3.0,
            algorithms=("randomized",),
        )
        results = [run_convergence(config, 64, t)[0].result for t in range(3)]
        point = aggregate_trials("randomized", 64, results)
        counts = [r.total_transmissions for r in results]
        assert point.transmissions_mean == pytest.approx(np.mean(counts))
        assert point.transmissions_std == pytest.approx(np.std(counts))

    def test_aggregate_requires_results(self):
        with pytest.raises(ValueError):
            aggregate_trials("x", 10, [])


class TestSlopeFit:
    def test_exact_power_law(self):
        sizes = np.array([100, 200, 400, 800])
        costs = 3.0 * sizes.astype(float) ** 1.5
        assert fit_loglog_slope(sizes, costs) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loglog_slope(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_loglog_slope(np.array([1.0, 2.0]), np.array([0.0, 1.0]))


class TestTables:
    def test_format_value_kinds(self):
        assert format_value(True) == "yes"
        assert format_value(12345) == "12,345"
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value("abc") == "abc"

    def test_format_table_alignment(self):
        table = format_table(["n", "cost"], [[10, 1.5], [20, 3.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("cost")
        assert set(lines[1]) <= {"-", "+"}

    def test_format_table_title(self):
        table = format_table(["a"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_format_table_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        table = format_table(["a", "b"], [])
        assert "a" in table
