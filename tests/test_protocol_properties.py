"""Seed-sweep property tests: invariants of every protocol's fast path.

Two physical invariants hold for all gossip protocols in the library,
scalar or batched, on healthy and on pathological instances:

* **Sum conservation** — convex averaging, cross-weighted affine updates
  and antisymmetric perturbations all conserve the global sum; aborted
  (voided) exchanges must leave it untouched too.
* **Error monotone on average** — the normalized error, averaged over
  independent seeds, decreases through a run (individual seeds may wiggle;
  the perturbed affine dynamics have a noise floor, hence "on average").

Both are checked across a sweep of seeds for every tick-driven protocol
in the shared golden registry, driving the protocols exactly the way the
batched engine does (``split_streams`` + ``tick_block``), and separately
on a routing-void instance where greedy forwarding fails.
"""

import numpy as np
import pytest

from protocol_equivalence import (
    CASES,
    case_names,
    initial_field_matrix,
    initial_values,
)
from repro.engine.batching import run_batched, split_streams
from repro.gossip.geographic import GeographicGossip
from repro.gossip.spatial import SpatialGossip
from repro.graphs.rgg import RandomGeometricGraph
from repro.metrics.error import column_errors, normalized_error
from repro.routing.cost import TransmissionCounter

SEEDS = range(5)
WINDOWS = 8
WINDOW_TICKS = 250
FIELDS = 4


def _windowed_errors(case, seed):
    """Drive tick_block the way the engine does; error after each window."""
    algorithm = case.factory()
    initial = initial_values()
    values = initial.copy()
    counter = TransmissionCounter()
    owner_rng, protocol_rng = split_streams(
        np.random.default_rng([seed, 1234])
    )
    errors = [normalized_error(values, initial)]
    sums = [values.sum()]
    for _ in range(WINDOWS):
        owners = owner_rng.integers(algorithm.n, size=WINDOW_TICKS)
        algorithm.tick_block(owners, values, counter, protocol_rng)
        errors.append(normalized_error(values, initial))
        sums.append(values.sum())
    return np.array(errors), np.array(sums), counter


@pytest.mark.parametrize("name", case_names(tick_driven=True))
def test_sum_conserved_through_every_window(name):
    case = CASES[name]
    reference = initial_values().sum()
    for seed in SEEDS:
        _, sums, counter = _windowed_errors(case, seed)
        np.testing.assert_allclose(
            sums, reference, rtol=0, atol=1e-9 * max(1.0, abs(reference))
        )
        assert counter.total > 0  # the windows actually exchanged


@pytest.mark.parametrize("name", case_names(tick_driven=True))
def test_error_monotone_on_average(name):
    case = CASES[name]
    curves = np.array([_windowed_errors(case, seed)[0] for seed in SEEDS])
    averaged = curves.mean(axis=0)
    assert averaged[0] == pytest.approx(1.0)
    # Monotone on average: tiny per-window upticks (noise floors, routing
    # randomness) are tolerated; systematic growth is not.
    assert np.all(np.diff(averaged) <= 1e-3 * averaged[:-1] + 5e-5)
    assert averaged[-1] < 0.8 * averaged[0]


class TestRoutingVoids:
    """Voided routes abort exchanges without touching the sum."""

    @pytest.fixture(scope="class")
    def void_graph(self):
        # Two radio islands: every cross-island greedy route dies at the
        # island boundary, so roughly half of all uniform targets void.
        rng = np.random.default_rng(5)
        left = 0.3 * rng.random((16, 2))
        right = 0.3 * rng.random((16, 2)) + 0.7
        return RandomGeometricGraph.build(
            np.vstack([left, right]), radius=0.25
        )

    @pytest.mark.parametrize(
        "factory",
        [
            lambda g: GeographicGossip(g, target_mode="uniform"),
            lambda g: GeographicGossip(g, target_mode="position"),
            lambda g: SpatialGossip(g, rho=1.0),
        ],
        ids=["geographic-uniform", "geographic-position", "spatial"],
    )
    def test_batched_voids_abort_and_conserve_sum(self, void_graph, factory):
        for seed in SEEDS:
            algorithm = factory(void_graph)
            initial = np.random.default_rng(seed).normal(size=void_graph.n)
            values = initial.copy()
            counter = TransmissionCounter()
            owner_rng, protocol_rng = split_streams(
                np.random.default_rng([seed, 77])
            )
            owners = owner_rng.integers(void_graph.n, size=600)
            algorithm.tick_block(owners, values, counter, protocol_rng)
            assert algorithm.failed_exchanges > 0  # voids were exercised
            assert values.sum() == pytest.approx(initial.sum(), abs=1e-9)
            # Within-island averaging still happened.
            assert normalized_error(values, initial) < 1.0

    def test_scalar_and_batched_voids_agree_on_failure_counts(
        self, void_graph
    ):
        """The batched path aborts exactly where the scalar walk would.

        Same pre-sampled owners and one shared uniform draw per tick: the
        batched uniform mode and a hand-rolled scalar replay with the same
        target mapping must fail the same exchanges.
        """
        owners = np.random.default_rng(3).integers(void_graph.n, size=400)
        picks = np.random.default_rng(9).random(len(owners))

        batched = GeographicGossip(void_graph, target_mode="uniform")
        batched_values = np.random.default_rng(1).normal(size=void_graph.n)
        scalar_values = batched_values.copy()

        class _Replay:
            """Feeds the pre-drawn picks to tick_block's single rng.random."""

            def __init__(self, picks):
                self.picks = picks

            def random(self, size=None):
                assert size == len(self.picks)
                return self.picks

        batched.tick_block(
            owners, batched_values, TransmissionCounter(), _Replay(picks)
        )

        scalar = GeographicGossip(void_graph, target_mode="uniform")
        counter = TransmissionCounter()
        last = void_graph.n - 1
        for node, pick in zip(owners.tolist(), picks.tolist()):
            target = int(pick * last)
            target = target + 1 if target >= node else target
            forward, backward = scalar.router.round_trip(node, target, counter)
            if not (forward.delivered and backward.delivered):
                scalar.failed_exchanges += 1
                continue
            average = 0.5 * (scalar_values[node] + scalar_values[target])
            scalar_values[node] = average
            scalar_values[target] = average

        assert batched.failed_exchanges == scalar.failed_exchanges
        np.testing.assert_array_equal(batched_values, scalar_values)


def _windowed_column_traces(case, seed, k=FIELDS):
    """Multi-field analogue of ``_windowed_errors``: per-column curves."""
    algorithm = case.factory()
    initial = initial_field_matrix(k)
    values = initial.copy()
    counter = TransmissionCounter()
    owner_rng, protocol_rng = split_streams(np.random.default_rng([seed, 1234]))
    errors = [column_errors(values, initial)]
    sums = [values.sum(axis=0)]
    for _ in range(WINDOWS):
        owners = owner_rng.integers(algorithm.n, size=WINDOW_TICKS)
        algorithm.tick_block(owners, values, counter, protocol_rng)
        errors.append(column_errors(values, initial))
        sums.append(values.sum(axis=0))
    return np.array(errors), np.array(sums), counter


class TestMultiFieldInvariants:
    """Per-column physics of stacked fields, fault-free and faulted.

    The registry's faulted cases run churn + link failures + per-hop
    loss, so these seed sweeps also pin the dynamics layer's (n, k)
    mass accounting: dead-owner tick drops and abort-and-charge paths
    must leave every column's sum untouched, not just column 0's.
    """

    @pytest.mark.parametrize("name", case_names(tick_driven=True))
    def test_every_column_sum_conserved_through_every_window(self, name):
        case = CASES[name]
        reference = initial_field_matrix(FIELDS).sum(axis=0)
        for seed in SEEDS:
            _, sums, counter = _windowed_column_traces(case, seed)
            # sums has shape (windows + 1, k): every window, every column.
            np.testing.assert_allclose(
                sums,
                np.broadcast_to(reference, sums.shape),
                rtol=0,
                atol=1e-9 * max(1.0, float(np.abs(reference).max())),
            )
            assert counter.total > 0  # the windows actually exchanged

    @pytest.mark.parametrize("name", case_names(tick_driven=True))
    def test_every_column_error_monotone_on_average(self, name):
        case = CASES[name]
        curves = np.array(
            [_windowed_column_traces(case, seed)[0] for seed in SEEDS]
        )
        averaged = curves.mean(axis=0)  # (windows + 1, k)
        np.testing.assert_allclose(averaged[0], 1.0, rtol=1e-12)
        # Monotone on average per column, same tolerance as the scalar
        # invariant: noise-floor wiggles pass, systematic growth fails.
        assert np.all(np.diff(averaged, axis=0) <= 1e-3 * averaged[:-1] + 5e-5)
        assert np.all(averaged[-1] < 0.8 * averaged[0])


def test_run_batched_converges_on_connected_instances():
    """End-to-end: every tick-driven protocol reaches ε under stride 4."""
    for name in case_names(tick_driven=True):
        case = CASES[name]
        result = run_batched(
            case.factory(),
            initial_values(),
            case.epsilon,
            np.random.default_rng([11, 13]),
            check_stride=4,
        )
        assert result.converged, name
        assert result.error <= case.epsilon, name
