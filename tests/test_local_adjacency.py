"""Unit tests for HierarchyTree.local_adjacency (the D10 Near scope)."""

import numpy as np
import pytest

from repro.geometry import random_points
from repro.graphs import RandomGeometricGraph
from repro.hierarchy import HierarchyTree


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(389)
    graph = RandomGeometricGraph.sample_connected(512, rng, radius_constant=2.0)
    tree = HierarchyTree.build(graph.positions)
    return graph, tree


class TestLocalAdjacency:
    def test_subset_of_graph_adjacency(self, world):
        graph, tree = world
        local = tree.local_adjacency(graph.neighbors)
        for sensor in range(graph.n):
            assert set(local[sensor].tolist()) <= set(
                int(v) for v in graph.neighbors[sensor]
            )

    def test_leaf_locality_when_possible(self, world):
        graph, tree = world
        local = tree.local_adjacency(graph.neighbors)
        leaf_of = {}
        for index, leaf in enumerate(tree.leaves()):
            for member in leaf.members:
                leaf_of[int(member)] = index
        for sensor in range(graph.n):
            same_leaf = [
                int(v)
                for v in graph.neighbors[sensor]
                if leaf_of[int(v)] == leaf_of[sensor]
            ]
            if same_leaf:
                assert sorted(local[sensor].tolist()) == sorted(same_leaf)

    def test_fallback_rescues_stranded_sensors(self, world):
        graph, tree = world
        strict = tree.local_adjacency(graph.neighbors, fallback=False)
        fallback = tree.local_adjacency(graph.neighbors, fallback=True)
        for sensor in range(graph.n):
            if graph.neighbors[sensor].size > 0:
                # With fallback nobody with graph neighbours is stranded.
                assert fallback[sensor].size > 0
            if strict[sensor].size > 0:
                np.testing.assert_array_equal(strict[sensor], fallback[sensor])

    def test_fallback_stays_within_an_ancestor(self, world):
        graph, tree = world
        strict = tree.local_adjacency(graph.neighbors, fallback=False)
        fallback = tree.local_adjacency(graph.neighbors, fallback=True)
        # Build ancestor membership sets per sensor.
        ancestors = {i: [] for i in range(graph.n)}
        for node in tree.all_squares():
            for member in node.members:
                ancestors[int(member)].append(node)
        for sensor in range(graph.n):
            if strict[sensor].size == 0 and fallback[sensor].size > 0:
                containing = [
                    set(int(m) for m in node.members)
                    for node in ancestors[sensor]
                ]
                chosen = set(fallback[sensor].tolist())
                assert any(chosen <= members for members in containing)

    def test_rejects_wrong_length(self, world):
        graph, tree = world
        with pytest.raises(ValueError):
            tree.local_adjacency(graph.neighbors[:-1])

    def test_flat_tree_equals_full_adjacency(self):
        rng = np.random.default_rng(397)
        positions = random_points(64, rng)
        graph = RandomGeometricGraph.build(positions, radius=0.3)
        tree = HierarchyTree(positions, [])  # root only
        local = tree.local_adjacency(graph.neighbors)
        for sensor in range(64):
            np.testing.assert_array_equal(
                np.sort(local[sensor]), graph.neighbors[sensor]
            )
