"""Unit tests for repro.gossip.hierarchical.rounds (the round executor)."""

import numpy as np
import pytest

from repro.gossip.hierarchical import (
    CoefficientMode,
    HierarchicalGossip,
    ProtocolParameters,
    RoundConfig,
)
from repro.graphs import RandomGeometricGraph
from repro.hierarchy import HierarchyTree


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(223)
    return RandomGeometricGraph.sample_connected(512, rng, radius_constant=2.0)


@pytest.fixture(scope="module")
def field(graph):
    return np.random.default_rng(227).normal(size=graph.n)


class TestConstruction:
    def test_default_tree_built(self, graph):
        algo = HierarchicalGossip(graph)
        assert algo.tree.levels >= 2

    def test_leaf_adjacency_restricted(self, graph):
        algo = HierarchicalGossip(graph)
        leaf_of = {}
        for index, leaf in enumerate(algo.tree.leaves()):
            for member in leaf.members:
                leaf_of[int(member)] = index
        for sensor in range(0, graph.n, 37):
            local = algo._leaf_neighbors[sensor]
            has_same_leaf_neighbor = any(
                leaf_of[int(v)] == leaf_of[sensor]
                for v in graph.neighbors[sensor]
            )
            if has_same_leaf_neighbor:
                # Restriction applies: all Near partners share the leaf.
                assert all(
                    leaf_of[int(v)] == leaf_of[sensor] for v in local
                )
            else:
                # D10 fallback: partners come from an ancestor square, so
                # they are still graph neighbours.
                assert set(local.tolist()) <= set(
                    int(v) for v in graph.neighbors[sensor]
                )

    def test_rejects_bad_values_shape(self, graph):
        algo = HierarchicalGossip(graph)
        with pytest.raises(ValueError):
            algo.run(np.zeros(graph.n + 1), 0.2, np.random.default_rng(1))

    def test_rejects_bad_epsilon(self, graph, field):
        algo = HierarchicalGossip(graph)
        with pytest.raises(ValueError):
            algo.run(field, 0.0, np.random.default_rng(1))


class TestConvergence:
    def test_converges_to_target(self, graph, field):
        algo = HierarchicalGossip(graph)
        result = algo.run(field, epsilon=0.2, rng=np.random.default_rng(3))
        assert result.converged
        assert result.error <= 0.2

    def test_sum_conserved_to_machine_precision(self, graph, field):
        algo = HierarchicalGossip(graph)
        result = algo.run(field, epsilon=0.2, rng=np.random.default_rng(5))
        assert result.values.sum() == pytest.approx(field.sum(), abs=1e-8)

    def test_transmission_categories_present(self, graph, field):
        algo = HierarchicalGossip(graph)
        result = algo.run(field, epsilon=0.25, rng=np.random.default_rng(7))
        for category in ("near", "far", "activation"):
            assert result.transmissions.get(category, 0) > 0, category

    def test_stats_recorded(self, graph, field):
        algo = HierarchicalGossip(graph)
        algo.run(field, epsilon=0.25, rng=np.random.default_rng(9))
        assert sum(algo.stats.exchanges_by_depth.values()) > 0
        assert sum(algo.stats.near_ticks_by_depth.values()) > 0
        assert algo.stats.routing_failures == 0

    def test_spike_field_converges(self, graph):
        # The hardest workload: all mass on one sensor.
        spike = np.zeros(graph.n)
        spike[17] = 1.0
        algo = HierarchicalGossip(graph)
        result = algo.run(spike, epsilon=0.3, rng=np.random.default_rng(11))
        assert result.converged

    def test_already_converged_input_costs_nothing(self, graph):
        algo = HierarchicalGossip(graph)
        result = algo.run(
            np.full(graph.n, 2.5), epsilon=0.2, rng=np.random.default_rng(13)
        )
        assert result.converged
        assert result.total_transmissions == 0

    def test_trace_monotone_transmissions(self, graph, field):
        algo = HierarchicalGossip(graph)
        result = algo.run(field, epsilon=0.25, rng=np.random.default_rng(15))
        tx, _ = result.trace.as_arrays()
        assert (np.diff(tx) >= 0).all()


class TestCoefficientModes:
    @pytest.mark.parametrize(
        "mode",
        [
            CoefficientMode.CLAMPED,
            CoefficientMode.ACTUAL_MIN,
            CoefficientMode.CONVEX,
        ],
    )
    def test_all_stable_modes_converge(self, graph, field, mode):
        algo = HierarchicalGossip(graph, config=RoundConfig(coefficient_mode=mode))
        result = algo.run(field, epsilon=0.3, rng=np.random.default_rng(17))
        assert result.converged, mode

    def test_convex_mode_worse_than_affine_at_tight_epsilon(self, graph, field):
        # The paper's point: a convex supernode update moves O(1) mass per
        # exchange where affine moves O(E#).  At ε small enough that
        # cross-square mass must actually travel (ε ≪ sqrt(#leaves/n)),
        # convex updates either miss the target or need far more
        # transmissions.
        epsilon = 0.08
        affine = HierarchicalGossip(
            graph, config=RoundConfig(coefficient_mode=CoefficientMode.CLAMPED)
        )
        affine_result = affine.run(
            field, epsilon=epsilon, rng=np.random.default_rng(19)
        )
        convex = HierarchicalGossip(
            graph, config=RoundConfig(coefficient_mode=CoefficientMode.CONVEX)
        )
        convex_result = convex.run(
            field, epsilon=epsilon, rng=np.random.default_rng(19),
            max_root_rounds=1,
        )
        assert affine_result.converged
        assert (not convex_result.converged) or (
            convex_result.total_transmissions
            > affine_result.total_transmissions
        )

    def test_paper_expected_mode_runs(self, graph, field):
        # With default (practical) leaf sizes this may or may not converge
        # within one round (E10 studies exactly that); here we only require
        # the executor to finish and conserve the sum.
        algo = HierarchicalGossip(
            graph,
            config=RoundConfig(coefficient_mode=CoefficientMode.PAPER_EXPECTED),
        )
        result = algo.run(
            field, epsilon=0.3, rng=np.random.default_rng(21), max_root_rounds=1
        )
        assert result.values.sum() == pytest.approx(field.sum(), abs=1e-6)


class TestConfigurations:
    def test_non_adaptive_runs_prescribed_counts(self, graph, field):
        parameters = ProtocolParameters.practical(graph.n, 0.3, decay=0.3)
        algo = HierarchicalGossip(
            graph, parameters=parameters, config=RoundConfig(adaptive=False)
        )
        result = algo.run(
            field, epsilon=0.3, rng=np.random.default_rng(23), max_root_rounds=1
        )
        # Non-adaptive rounds cannot stop early, so they do strictly more
        # work than adaptive ones on the same instance.
        adaptive = HierarchicalGossip(graph, parameters=parameters)
        adaptive_result = adaptive.run(
            field, epsilon=0.3, rng=np.random.default_rng(23)
        )
        assert result.total_transmissions > adaptive_result.total_transmissions
        assert result.converged

    def test_global_targets_ablation_runs(self, graph, field):
        algo = HierarchicalGossip(
            graph, config=RoundConfig(sibling_targets=False)
        )
        result = algo.run(field, epsilon=0.3, rng=np.random.default_rng(25))
        assert result.values.sum() == pytest.approx(field.sum(), abs=1e-6)

    def test_explicit_tree_is_used(self, graph, field):
        tree = HierarchyTree.build(graph.positions, leaf_threshold=64.0)
        algo = HierarchicalGossip(graph, tree=tree)
        assert algo.tree is tree
        result = algo.run(field, epsilon=0.3, rng=np.random.default_rng(27))
        assert result.converged
