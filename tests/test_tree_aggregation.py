"""Unit tests for repro.gossip.tree_aggregation (the Θ(n) reference)."""

import numpy as np
import pytest

from repro.gossip import transmission_lower_bound, tree_aggregate
from repro.graphs import (
    RandomGeometricGraph,
    grid_graph_adjacency,
    ring_graph_adjacency,
)
from repro.routing import TransmissionCounter


class TestLowerBound:
    def test_value(self):
        assert transmission_lower_bound(100) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            transmission_lower_bound(0)


class TestTreeAggregate:
    def test_exact_average_on_grid(self):
        adjacency = grid_graph_adjacency(5, 5)
        rng = np.random.default_rng(17)
        values = rng.normal(size=25)
        result = tree_aggregate(adjacency, values)
        assert result.exact
        np.testing.assert_allclose(result.values, values.mean())

    def test_cost_is_3n_minus_2(self):
        adjacency = ring_graph_adjacency(40)
        result = tree_aggregate(adjacency, np.arange(40.0))
        assert result.transmissions == 3 * 40 - 2
        assert result.covered == 40

    def test_cost_within_constant_of_lower_bound(self):
        n = 200
        rng = np.random.default_rng(19)
        graph = RandomGeometricGraph.sample_connected(n, rng)
        result = tree_aggregate(graph.neighbors, rng.normal(size=n))
        assert result.transmissions < 3.0 * transmission_lower_bound(n)

    def test_counter_categories(self):
        adjacency = grid_graph_adjacency(3, 3)
        counter = TransmissionCounter()
        result = tree_aggregate(adjacency, np.arange(9.0), counter=counter)
        assert counter.total == result.transmissions
        assert counter.by_category["flood"] == 9
        assert counter.by_category["convergecast"] == 8
        assert counter.by_category["broadcast"] == 8

    def test_nonzero_root(self):
        adjacency = grid_graph_adjacency(4, 4)
        values = np.arange(16.0)
        result = tree_aggregate(adjacency, values, root=7)
        assert result.exact
        assert result.average == pytest.approx(values.mean())

    def test_disconnected_graph_partial(self):
        adjacency = [
            np.array([1]), np.array([0]),  # component A
            np.array([3]), np.array([2]),  # component B
        ]
        values = np.array([0.0, 2.0, 10.0, 20.0])
        result = tree_aggregate(adjacency, values, root=0)
        assert not result.exact
        assert result.covered == 2
        np.testing.assert_allclose(result.values[:2], 1.0)
        np.testing.assert_allclose(result.values[2:], values[2:])

    def test_original_values_untouched(self):
        adjacency = ring_graph_adjacency(5)
        values = np.arange(5.0)
        saved = values.copy()
        tree_aggregate(adjacency, values)
        np.testing.assert_array_equal(values, saved)

    def test_validation(self):
        adjacency = ring_graph_adjacency(4)
        with pytest.raises(ValueError):
            tree_aggregate(adjacency, np.arange(5.0))
        with pytest.raises(ValueError):
            tree_aggregate(adjacency, np.arange(4.0), root=4)

    def test_beats_every_gossip_algorithm(self):
        # Context for E7: coordination buys a 10-100x saving over gossip;
        # gossip's value is needing no tree, no root, no fragile state.
        from repro.gossip import GeographicGossip

        n = 256
        rng = np.random.default_rng(23)
        graph = RandomGeometricGraph.sample_connected(n, rng)
        values = rng.normal(size=n)
        tree_cost = tree_aggregate(graph.neighbors, values).transmissions
        gossip_cost = (
            GeographicGossip(graph)
            .run(values, 0.1, np.random.default_rng(29))
            .total_transmissions
        )
        assert tree_cost < gossip_cost
