"""Golden-trace equivalence suite: every protocol × the engine contracts.

Parametrized over the shared registry in ``protocol_equivalence.py``:

* stride-1 runs are bit-identical to the legacy scalar loop;
* stride-k runs are a pure function of ``(seed, stride)`` — invariant to
  the engine's internal block chunking and reproducible across fresh
  protocol instances.

A new protocol only needs a ``ProtocolCase`` entry in the registry to be
covered by the whole battery.
"""

import pytest

from protocol_equivalence import (
    CASES,
    assert_block_size_invariant,
    assert_stride1_bit_identical,
    assert_strided_deterministic,
    case_names,
)


@pytest.mark.parametrize("name", case_names())
def test_stride1_bit_identical_to_legacy_loop(name):
    assert_stride1_bit_identical(CASES[name])


@pytest.mark.parametrize("name", case_names(tick_driven=True))
def test_block_size_invariance(name):
    assert_block_size_invariant(CASES[name])


@pytest.mark.parametrize("name", case_names(tick_driven=True))
@pytest.mark.parametrize("check_stride", [2, 8])
def test_strided_runs_deterministic(name, check_stride):
    assert_strided_deterministic(CASES[name], check_stride=check_stride)


def test_registry_covers_every_registered_algorithm():
    """The sweep registry's protocols all appear in the golden registry."""
    from repro.experiments.config import ALGORITHM_CLASSES

    covered = {type(case.factory()) for case in CASES.values()}
    assert set(ALGORITHM_CLASSES.values()) <= covered
