"""Golden-trace equivalence suite: every protocol × the engine contracts.

Parametrized over the shared registry in ``protocol_equivalence.py``:

* stride-1 runs are bit-identical to the legacy scalar loop;
* stride-k runs are a pure function of ``(seed, stride)`` — invariant to
  the engine's internal block chunking and reproducible across fresh
  protocol instances;
* multi-field ``(n, k)`` runs replay the scalar run as their column 0 —
  bit-identical to the legacy loop at stride 1, invariant to ``k`` at
  any stride, and deterministic across fresh instances.

The registry includes fully faulted cases (churn + link failures + loss
on a pinned schedule), so every contract also covers the dynamics layer.
A new protocol only needs a ``ProtocolCase`` entry in the registry to be
covered by the whole battery.
"""

import pytest

from protocol_equivalence import (
    CASES,
    assert_block_size_invariant,
    assert_column0_k_invariant,
    assert_multifield_column0_bit_identical,
    assert_multifield_strided_deterministic,
    assert_stride1_bit_identical,
    assert_strided_deterministic,
    case_names,
    multifield_native_case_names,
)


@pytest.mark.parametrize("name", case_names())
def test_stride1_bit_identical_to_legacy_loop(name):
    assert_stride1_bit_identical(CASES[name])


@pytest.mark.parametrize("name", case_names(tick_driven=True))
def test_block_size_invariance(name):
    assert_block_size_invariant(CASES[name])


@pytest.mark.parametrize("name", case_names(tick_driven=True))
@pytest.mark.parametrize("check_stride", [2, 8])
def test_strided_runs_deterministic(name, check_stride):
    assert_strided_deterministic(CASES[name], check_stride=check_stride)


def test_registry_covers_every_registered_algorithm():
    """The sweep registry's protocols all appear in the golden registry."""
    from repro.experiments.config import ALGORITHM_CLASSES

    covered = {type(case.factory()) for case in CASES.values()}
    assert set(ALGORITHM_CLASSES.values()) <= covered


class TestMultiField:
    """Contract 3: the scalar run replays as column 0 of any (n, k) run.

    Runs over *every* registry case — including the faulted
    configurations, so churn masking, link failures, and per-hop loss
    are all exercised with matrix state.
    """

    @pytest.mark.parametrize("name", multifield_native_case_names())
    def test_column0_bit_identical_to_legacy_scalar_run(self, name):
        assert_multifield_column0_bit_identical(CASES[name], k=8)

    @pytest.mark.parametrize("name", case_names(tick_driven=True))
    def test_column0_invariant_to_field_count_when_strided(self, name):
        assert_column0_k_invariant(CASES[name], check_stride=4, k_pair=(1, 8))

    @pytest.mark.parametrize("name", case_names(tick_driven=True))
    def test_multifield_strided_runs_deterministic(self, name):
        assert_multifield_strided_deterministic(CASES[name], k=8)

    @pytest.mark.parametrize("name", case_names(tick_driven=True))
    def test_multifield_block_size_invariance(self, name):
        """The block-size contract holds with matrix state too."""
        from protocol_equivalence import assert_results_identical, run_engine

        reference = run_engine(CASES[name], 7, 4, block_size=1, fields=4)
        other = run_engine(CASES[name], 7, 4, block_size=8192, fields=4)
        assert_results_identical(
            reference, other, f"{name}, k=4, block 1 vs 8192"
        )

    def test_registry_capabilities_are_pinned(self):
        """Tick-driven protocols are native; hierarchical is per-column
        by design (its adaptive round structure is a one-field oracle —
        see tests/test_multifield.py for its fallback battery).  Any
        drift here is a deliberate decision, not an accident."""
        from repro.experiments.config import ALGORITHM_CLASSES, multifield_support

        support = multifield_support(tuple(ALGORITHM_CLASSES))
        assert support.pop("hierarchical") == "per-column"
        assert set(support.values()) == {"native"}, support
