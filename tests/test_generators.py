"""Unit tests for repro.graphs.generators (adjacency API + topology zoo)."""

import numpy as np
import pytest

from repro.graphs import (
    RandomGeometricGraph,
    TOPOLOGIES,
    build_topology,
    complete_graph_adjacency,
    erdos_renyi_adjacency,
    grid2d_graph,
    grid_graph_adjacency,
    is_connected,
    ring_graph_adjacency,
    topology_names,
    torus_rgg_graph,
    watts_strogatz_graph,
)


def assert_symmetric(adjacency):
    for i, adj in enumerate(adjacency):
        for j in adj:
            assert i in adjacency[int(j)], f"edge {i}-{j} not symmetric"


class TestCompleteGraph:
    def test_degrees(self):
        adj = complete_graph_adjacency(6)
        assert all(len(a) == 5 for a in adj)

    def test_no_self_loops(self):
        adj = complete_graph_adjacency(4)
        for i, a in enumerate(adj):
            assert i not in a

    def test_symmetric(self):
        assert_symmetric(complete_graph_adjacency(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            complete_graph_adjacency(0)


class TestRing:
    def test_degrees_are_two(self):
        adj = ring_graph_adjacency(9)
        assert all(len(a) == 2 for a in adj)

    def test_wraps_around(self):
        adj = ring_graph_adjacency(5)
        assert 4 in adj[0] and 1 in adj[0]

    def test_connected(self):
        assert is_connected(ring_graph_adjacency(20))

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            ring_graph_adjacency(2)


class TestGrid:
    def test_corner_and_interior_degrees(self):
        adj = grid_graph_adjacency(3, 4)
        assert len(adj[0]) == 2  # corner
        assert len(adj[5]) == 4  # interior (row 1, col 1)

    def test_node_count(self):
        assert len(grid_graph_adjacency(5, 7)) == 35

    def test_connected_and_symmetric(self):
        adj = grid_graph_adjacency(4, 4)
        assert is_connected(adj)
        assert_symmetric(adj)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            grid_graph_adjacency(0, 3)

    def test_single_row_is_path(self):
        adj = grid_graph_adjacency(1, 4)
        assert len(adj[0]) == 1
        assert len(adj[1]) == 2


class TestErdosRenyi:
    def test_p_one_gives_complete(self):
        rng = np.random.default_rng(41)
        adj = erdos_renyi_adjacency(6, 1.0, rng)
        assert all(len(a) == 5 for a in adj)

    def test_p_zero_gives_empty(self):
        rng = np.random.default_rng(43)
        adj = erdos_renyi_adjacency(6, 0.0, rng)
        assert all(len(a) == 0 for a in adj)

    def test_edge_density_close_to_p(self):
        rng = np.random.default_rng(47)
        n, p = 300, 0.1
        adj = erdos_renyi_adjacency(n, p, rng)
        edges = sum(len(a) for a in adj) / 2
        possible = n * (n - 1) / 2
        assert abs(edges / possible - p) < 0.01

    def test_symmetric(self):
        rng = np.random.default_rng(53)
        assert_symmetric(erdos_renyi_adjacency(40, 0.2, rng))

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_adjacency(5, 1.5, np.random.default_rng(1))


# -- the positioned topology zoo --------------------------------------------


def _assert_valid_substrate(graph):
    """Structural invariants every zoo member owes the protocols."""
    assert isinstance(graph, RandomGeometricGraph)
    assert graph.positions.shape == (graph.n, 2)
    assert np.all(graph.positions >= 0.0) and np.all(graph.positions <= 1.0)
    assert graph.radius > 0
    for i, adj in enumerate(graph.neighbors):
        assert adj.dtype == np.int64
        assert i not in adj, f"self-loop at {i}"
        assert len(set(adj.tolist())) == len(adj), f"duplicate edge at {i}"
        for j in adj:
            assert i in graph.neighbors[int(j)], f"edge {i}-{j} not symmetric"


class TestTopologyZoo:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_connected_valid_substrate(self, name):
        graph = build_topology(name, 50, np.random.default_rng(3))
        assert graph.n == 50
        _assert_valid_substrate(graph)
        assert is_connected(graph.neighbors)

    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_deterministic_by_seed(self, name):
        first = build_topology(name, 40, np.random.default_rng(5))
        second = build_topology(name, 40, np.random.default_rng(5))
        np.testing.assert_array_equal(first.positions, second.positions)
        for a, b in zip(first.neighbors, second.neighbors):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", ["rgg", "torus-rgg", "erdos-renyi"])
    def test_different_seeds_differ(self, name):
        first = build_topology(name, 40, np.random.default_rng(5))
        second = build_topology(name, 40, np.random.default_rng(6))
        assert not np.array_equal(first.positions, second.positions)

    def test_smallworld_seed_drives_rewiring_not_positions(self):
        first = build_topology("smallworld", 40, np.random.default_rng(5))
        second = build_topology("smallworld", 40, np.random.default_rng(6))
        np.testing.assert_array_equal(first.positions, second.positions)
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(first.neighbors, second.neighbors)
        )

    def test_registry_and_names_agree(self):
        assert topology_names() == sorted(TOPOLOGIES)
        assert "rgg" in TOPOLOGIES

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology("moebius", 32, np.random.default_rng(0))


class TestTorusRgg:
    def test_superset_of_flat_rgg_on_same_positions(self):
        """Torus distance ≤ flat distance: wrap edges only add adjacency."""
        rng = np.random.default_rng(17)
        torus = torus_rgg_graph(80, rng, radius=0.25)
        flat = RandomGeometricGraph.build(torus.positions, 0.25)
        assert torus.edge_count() >= flat.edge_count()
        for i in range(80):
            assert set(flat.neighbors[i]) <= set(torus.neighbors[i].tolist())

    def test_degree_bounds_tighter_than_flat(self):
        """No boundary nodes: every disc has full wrap-around area."""
        torus = torus_rgg_graph(300, np.random.default_rng(23), radius=0.15)
        degrees = torus.degrees()
        # E[deg] = (n-1)·πr² ≈ 21; the min never collapses to the flat
        # graph's corner regime (quarter of the disc).
        assert degrees.min() >= 5
        assert degrees.max() <= 60


class TestGrid2d:
    def test_near_square_factorisation(self):
        graph = grid2d_graph(12)
        degrees = graph.degrees()
        assert graph.n == 12
        assert set(degrees.tolist()) <= {2, 3, 4}
        assert int(degrees.max()) == 4  # 3x4 has interior nodes

    def test_prime_size_degenerates_to_path(self):
        graph = grid2d_graph(13)
        degrees = sorted(graph.degrees().tolist())
        assert degrees == [1, 1] + [2] * 11

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            grid2d_graph(1)


class TestWattsStrogatz:
    def test_beta_zero_is_pure_ring_lattice(self):
        graph = watts_strogatz_graph(30, np.random.default_rng(1), k=4, beta=0.0)
        assert all(deg == 4 for deg in graph.degrees().tolist())
        assert is_connected(graph.neighbors)

    def test_rewiring_preserves_edge_count(self):
        rng = np.random.default_rng(2)
        graph = watts_strogatz_graph(40, rng, k=6, beta=0.5)
        assert graph.edge_count() == 40 * 6 // 2

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, rng, k=3)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz_graph(6, rng, k=6)  # n <= k
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, rng, k=4, beta=1.5)


class TestZooEngineIntegration:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_sweep_cells_run_and_are_deterministic(self, topology):
        """Every protocol×topology pair is one reproducible sweep cell."""
        from repro.engine.executor import run_sweep_records
        from repro.experiments import ExperimentConfig

        config = ExperimentConfig(
            sizes=(32,),
            epsilon=0.3,
            trials=1,
            topology=topology,
            algorithms=("randomized", "path-averaging"),
        )
        first = run_sweep_records(config)
        second = run_sweep_records(config)
        assert first == second
        for record in first.values():
            assert record.total_transmissions > 0

    def test_config_rejects_unknown_topology(self):
        from repro.experiments import ExperimentConfig

        with pytest.raises(ValueError, match="unknown topology"):
            ExperimentConfig(sizes=(32,), topology="hypercube")
