"""Unit tests for repro.graphs.generators."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph_adjacency,
    erdos_renyi_adjacency,
    grid_graph_adjacency,
    is_connected,
    ring_graph_adjacency,
)


def assert_symmetric(adjacency):
    for i, adj in enumerate(adjacency):
        for j in adj:
            assert i in adjacency[int(j)], f"edge {i}-{j} not symmetric"


class TestCompleteGraph:
    def test_degrees(self):
        adj = complete_graph_adjacency(6)
        assert all(len(a) == 5 for a in adj)

    def test_no_self_loops(self):
        adj = complete_graph_adjacency(4)
        for i, a in enumerate(adj):
            assert i not in a

    def test_symmetric(self):
        assert_symmetric(complete_graph_adjacency(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            complete_graph_adjacency(0)


class TestRing:
    def test_degrees_are_two(self):
        adj = ring_graph_adjacency(9)
        assert all(len(a) == 2 for a in adj)

    def test_wraps_around(self):
        adj = ring_graph_adjacency(5)
        assert 4 in adj[0] and 1 in adj[0]

    def test_connected(self):
        assert is_connected(ring_graph_adjacency(20))

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            ring_graph_adjacency(2)


class TestGrid:
    def test_corner_and_interior_degrees(self):
        adj = grid_graph_adjacency(3, 4)
        assert len(adj[0]) == 2  # corner
        assert len(adj[5]) == 4  # interior (row 1, col 1)

    def test_node_count(self):
        assert len(grid_graph_adjacency(5, 7)) == 35

    def test_connected_and_symmetric(self):
        adj = grid_graph_adjacency(4, 4)
        assert is_connected(adj)
        assert_symmetric(adj)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            grid_graph_adjacency(0, 3)

    def test_single_row_is_path(self):
        adj = grid_graph_adjacency(1, 4)
        assert len(adj[0]) == 1
        assert len(adj[1]) == 2


class TestErdosRenyi:
    def test_p_one_gives_complete(self):
        rng = np.random.default_rng(41)
        adj = erdos_renyi_adjacency(6, 1.0, rng)
        assert all(len(a) == 5 for a in adj)

    def test_p_zero_gives_empty(self):
        rng = np.random.default_rng(43)
        adj = erdos_renyi_adjacency(6, 0.0, rng)
        assert all(len(a) == 0 for a in adj)

    def test_edge_density_close_to_p(self):
        rng = np.random.default_rng(47)
        n, p = 300, 0.1
        adj = erdos_renyi_adjacency(n, p, rng)
        edges = sum(len(a) for a in adj) / 2
        possible = n * (n - 1) / 2
        assert abs(edges / possible - p) < 0.01

    def test_symmetric(self):
        rng = np.random.default_rng(53)
        assert_symmetric(erdos_renyi_adjacency(40, 0.2, rng))

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_adjacency(5, 1.5, np.random.default_rng(1))
