"""Unit tests for repro.hierarchy.addresses."""

import pytest

from repro.hierarchy import SquareAddress


class TestSquareAddress:
    def test_root(self):
        root = SquareAddress()
        assert root.is_root
        assert root.depth == 0
        assert str(root) == "□"

    def test_child_and_parent_inverse(self):
        addr = SquareAddress().child(3).child(1)
        assert addr.depth == 2
        assert addr.indices == (3, 1)
        assert addr.parent == SquareAddress((3,))
        assert addr.parent.parent == SquareAddress()

    def test_root_parent_is_root(self):
        assert SquareAddress().parent == SquareAddress()

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            SquareAddress((-1,))
        with pytest.raises(ValueError):
            SquareAddress().child(-2)

    def test_str_format(self):
        assert str(SquareAddress((3, 0, 2))) == "□[3.0.2]"

    def test_hashable(self):
        seen = {SquareAddress((1, 2)), SquareAddress((1, 2)), SquareAddress((2, 1))}
        assert len(seen) == 2

    def test_ancestry(self):
        root = SquareAddress()
        child = root.child(5)
        grandchild = child.child(0)
        assert root.is_ancestor_of(child)
        assert root.is_ancestor_of(grandchild)
        assert child.is_ancestor_of(grandchild)
        assert not grandchild.is_ancestor_of(child)
        assert not child.is_ancestor_of(child)

    def test_ancestry_requires_prefix(self):
        assert not SquareAddress((1,)).is_ancestor_of(SquareAddress((2, 0)))

    def test_siblings(self):
        a = SquareAddress((4, 1))
        b = SquareAddress((4, 2))
        c = SquareAddress((3, 2))
        assert a.is_sibling_of(b)
        assert not a.is_sibling_of(a)
        assert not a.is_sibling_of(c)
        assert not SquareAddress().is_sibling_of(SquareAddress())
