"""Daemon-mode sweep service: priorities, backpressure, robustness.

Three layers on top of ``test_sweep_service.py``'s chaos battery:

* **Priority queue semantics** — format-2 pending buckets drain
  strictly high-before-low, admission past ``max_pending`` is
  all-or-nothing (:class:`QueueFull` admits *nothing*), re-registration
  is idempotent, and a different config mapping to the same content key
  is refused before it can mix stores.
* **Daemon lifecycle** — a live :func:`run_sweep_daemon` session
  accepts a second grid at a different priority mid-run, serves its
  cells first, exposes per-priority queue depth on ``/metrics`` and the
  drain state on ``/healthz``, and — after ``request_drain`` — merges
  stores byte-identical to serial runs of the same grids.  A SIGKILL
  chaos variant proves the guarantee survives worker death.
* **Coordinator robustness regressions** — the chaos timer runs on the
  monotonic clock (a backwards wall-clock jump can no longer suppress
  an injected kill), and a single dead worker in a three-worker fleet
  is respawned individually instead of waiting for total fleet death.
"""

import json
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.engine.executor import execute_cell, expand_grid
from repro.engine.queue import LeaseQueue, QueueFull
from repro.engine.service import (
    diff_stores,
    enqueue_grid,
    run_distributed_sweep,
    run_sweep_daemon,
    service_manifest,
)
from repro.engine.store import ResultStore
from repro.experiments import ExperimentConfig

GRID_A = ExperimentConfig(
    sizes=(24, 32),
    epsilon=0.3,
    trials=1,
    radius_constant=3.0,
    algorithms=("randomized", "geographic"),
)  # 4 cells
GRID_B = ExperimentConfig(
    sizes=(24,),
    epsilon=0.25,
    trials=2,
    radius_constant=3.0,
    algorithms=("geographic",),
)  # 2 cells

KEY_A = service_manifest(GRID_A)["key"]
KEY_B = service_manifest(GRID_B)["key"]

_REAL_TIME = time.time  # pinned before any monkeypatching


@pytest.fixture(scope="module")
def serial_roots(tmp_path_factory):
    """Ground truth, each cell executed once: ``both`` holds serial runs
    of both grids in one store root, ``a_only`` just grid A."""
    both = tmp_path_factory.mktemp("serial-both")
    a_only = tmp_path_factory.mktemp("serial-a")
    for config, roots in ((GRID_A, (both, a_only)), (GRID_B, (both,))):
        stores = [ResultStore(root, config).open() for root in roots]
        for cell in expand_grid(config):
            record = execute_cell(config, cell)
            for store in stores:
                store.append(record)
    return {"both": both, "a_only": a_only}


def _wait_for(predicate, timeout, message):
    deadline = _REAL_TIME() + timeout
    while _REAL_TIME() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout}s waiting for {message}")


def _daemon_thread(store_root, queue_dir, **kwargs):
    """Run the daemon coordinator on a thread; surface result/error."""
    box = {"result": None, "error": None}

    def target():
        try:
            box["result"] = run_sweep_daemon(
                store_root, queue_dir=queue_dir, **kwargs
            )
        except BaseException as error:  # noqa: BLE001 — re-raised by test
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def _get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode()


class TestPriorityQueue:
    def test_high_priority_grid_drains_first(self, tmp_path):
        """Grid B registered *later* at p0 is claimed entirely before
        the p1 backlog of grid A continues."""
        queue = LeaseQueue.create(tmp_path / "q", [], ttl=10.0, daemon=True)
        queue.register_grid(
            service_manifest(GRID_A), expand_grid(GRID_A), priority=1
        )
        queue.register_grid(
            service_manifest(GRID_B), expand_grid(GRID_B), priority=0
        )
        order = []
        while True:
            lease = queue.claim("w")
            if lease is None:
                break
            order.append(lease.grid)
            queue.complete(lease)
        assert order == [KEY_B] * 2 + [KEY_A] * 4
        assert queue.drained()

    def test_admission_past_max_pending_is_all_or_nothing(self, tmp_path):
        queue = LeaseQueue.create(
            tmp_path / "q", [], ttl=10.0, daemon=True, max_pending=5
        )
        queue.register_grid(
            service_manifest(GRID_A), expand_grid(GRID_A), priority=1
        )
        with pytest.raises(QueueFull):
            queue.register_grid(
                service_manifest(GRID_B), expand_grid(GRID_B), priority=0
            )
        # Nothing from the refused grid landed: no descriptor, no cells.
        assert KEY_B not in queue.grids()
        assert queue.pending_depth() == 4
        assert queue.stats().pending_by_priority == (0, 4, 0)
        # Draining one cell makes room for the whole grid (4-1+2 == 5).
        queue.complete(queue.claim("w"))
        report = queue.register_grid(
            service_manifest(GRID_B), expand_grid(GRID_B), priority=0
        )
        assert report["enqueued"] == 2
        assert queue.pending_depth() == 5

    def test_reregistration_is_idempotent(self, tmp_path):
        queue = LeaseQueue.create(tmp_path / "q", [], ttl=10.0, daemon=True)
        first = queue.register_grid(
            service_manifest(GRID_A), expand_grid(GRID_A), priority=1
        )
        again = queue.register_grid(
            service_manifest(GRID_A), expand_grid(GRID_A), priority=1
        )
        assert first["enqueued"] == 4
        assert (again["enqueued"], again["skipped"]) == (0, 4)
        assert queue.pending_depth() == 4

    def test_conflicting_payload_for_one_key_is_refused(self, tmp_path):
        queue = LeaseQueue.create(tmp_path / "q", [], ttl=10.0, daemon=True)
        payload = service_manifest(GRID_A)
        queue.register_grid(payload, expand_grid(GRID_A), priority=1)
        forged = dict(service_manifest(GRID_B), key=payload["key"])
        with pytest.raises(ValueError, match="refusing"):
            queue.register_grid(forged, expand_grid(GRID_B), priority=1)

    def test_invalid_priority_is_rejected(self, tmp_path):
        queue = LeaseQueue.create(tmp_path / "q", [], ttl=10.0, daemon=True)
        with pytest.raises(ValueError, match="priority"):
            queue.register_grid(
                service_manifest(GRID_A), expand_grid(GRID_A), priority=5
            )

    def test_drain_marker_and_daemon_flag(self, tmp_path):
        queue = LeaseQueue.create(tmp_path / "q", [], ttl=10.0, daemon=True)
        assert queue.daemon
        assert not queue.drain_requested()
        queue.request_drain()
        assert queue.drain_requested()
        # Reopened handles see the marker: it lives on the filesystem.
        assert LeaseQueue.open(queue.root).drain_requested()


class TestBackpressure:
    def _bounded_queue(self, tmp_path, max_pending=1):
        return LeaseQueue.create(
            tmp_path / "q",
            [],
            ttl=10.0,
            daemon=True,
            max_pending=max_pending,
            payload={"service": "daemon", "store": str(tmp_path / "store")},
        )

    def test_enqueue_grid_raises_queuefull(self, tmp_path):
        queue = self._bounded_queue(tmp_path)
        with pytest.raises(QueueFull):
            enqueue_grid(queue.root, GRID_A, priority=0)

    def test_blocking_enqueue_times_out(self, tmp_path):
        queue = self._bounded_queue(tmp_path)
        with pytest.raises(QueueFull):
            enqueue_grid(
                queue.root,
                GRID_A,
                priority=0,
                block=True,
                block_poll_interval=0.05,
                block_timeout=0.2,
            )

    def test_cli_enqueue_exits_3(self, tmp_path):
        queue = self._bounded_queue(tmp_path)
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "enqueue",
                "--queue-dir",
                str(queue.root),
                "--sizes",
                "24,32",
                "--trials",
                "1",
                "--algorithms",
                "randomized,geographic",
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 3
        assert "max_pending" in result.stderr


class TestDaemonLifecycle:
    def test_mid_run_enqueue_priority_and_bit_identity(
        self, tmp_path, serial_roots
    ):
        """The tentpole end to end: grid A starts at p1, grid B arrives
        mid-run at p0 and is served first, per-priority depth shows on
        /metrics, /healthz follows the lifecycle, and after drain both
        merged stores equal the serial references byte for byte."""
        store_root = tmp_path / "store"
        queue_dir = tmp_path / "queue"
        urls = []
        thread, box = _daemon_thread(
            store_root,
            queue_dir,
            workers=1,
            ttl=5.0,
            heartbeat_interval=0.05,
            poll_interval=0.05,
            worker_throttle=0.25,
            metrics_port=0,
            on_metrics_url=urls.append,
            initial_grids=[(GRID_A, 1, False, 1)],
        )
        try:
            _wait_for(
                lambda: (queue_dir / "manifest.json").exists(),
                timeout=10,
                message="the daemon queue to appear",
            )
            queue = LeaseQueue.open(queue_dir)
            _wait_for(
                lambda: len(queue.done_cells()) >= 1,
                timeout=60,
                message="the first grid-A cell to finish",
            )
            report = enqueue_grid(queue_dir, GRID_B, priority=0)
            t_enqueued = _REAL_TIME()
            assert report["grid"] == KEY_B
            assert report["enqueued"] == 2

            _wait_for(lambda: urls, timeout=10, message="the metrics URL")
            _wait_for(
                lambda: 'repro_queue_depth{priority="p0"}'
                in _get(f"{urls[0]}/metrics"),
                timeout=10,
                message="the per-priority depth gauge",
            )
            health = json.loads(_get(f"{urls[0]}/healthz"))
            assert health["status"] == "ok"
            assert health["service"]["daemon"] is True
            assert health["queue"]["pending_by_priority"].keys() == {
                "p0",
                "p1",
                "p2",
            }

            queue.request_drain()
            try:
                draining = json.loads(_get(f"{urls[0]}/healthz"))
            except OSError:
                pass  # already shut down — drain won the race
            else:
                assert draining["status"] == "draining"
            thread.join(timeout=120)
            assert not thread.is_alive()
        finally:
            try:
                LeaseQueue.open(queue_dir).request_drain()
            except (FileNotFoundError, ValueError):
                pass  # the daemon never got as far as creating the queue
            thread.join(timeout=30)
        if box["error"] is not None:
            raise box["error"]
        assert set(box["result"]) == {KEY_A, KEY_B}

        # Priority inversion check: once grid B (p0) was on disk, every
        # claim had to drain it before returning to grid A's p1 backlog.
        log = queue.done_log()
        b_claims = [e["claimed_at"] for e in log if e["grid"] == KEY_B]
        a_after = [
            e["claimed_at"]
            for e in log
            if e["grid"] == KEY_A and e["claimed_at"] > t_enqueued + 0.2
        ]
        assert len(b_claims) == 2
        assert a_after, "expected grid-A cells still pending at enqueue time"
        assert max(b_claims) < min(a_after)

        assert diff_stores(serial_roots["both"], store_root) == []

    def test_daemon_sigkill_chaos_stays_bit_identical(
        self, tmp_path, serial_roots
    ):
        """Both grids queued, one worker SIGKILLed while holding a
        lease: reclamation + individual respawn must still drain to a
        store byte-identical to the serial references."""
        store_root = tmp_path / "store"
        queue_dir = tmp_path / "queue"
        thread, box = _daemon_thread(
            store_root,
            queue_dir,
            workers=2,
            ttl=0.6,
            heartbeat_interval=0.05,
            poll_interval=0.05,
            worker_throttle=0.4,
            chaos_kill_after=0.2,
            initial_grids=[(GRID_A, 1, False, 1), (GRID_B, 1, False, 0)],
        )
        try:
            _wait_for(
                lambda: (queue_dir / "manifest.json").exists(),
                timeout=10,
                message="the daemon queue to appear",
            )
            queue = LeaseQueue.open(queue_dir)
            _wait_for(
                lambda: queue.stats().reclamations >= 1,
                timeout=60,
                message="the chaos kill to force a reclamation",
            )
        finally:
            try:
                LeaseQueue.open(queue_dir).request_drain()
            except (FileNotFoundError, ValueError):
                pass  # the daemon never got as far as creating the queue
            thread.join(timeout=120)
        assert not thread.is_alive()
        if box["error"] is not None:
            raise box["error"]
        assert set(box["result"]) == {KEY_A, KEY_B}
        assert queue.stats().reclamations >= 1
        telemetry = json.loads((queue_dir / "telemetry.json").read_text())
        assert telemetry["service"]["daemon"] is True
        assert telemetry["service"]["respawns"] >= 1
        assert diff_stores(serial_roots["both"], store_root) == []


class TestCoordinatorRobustness:
    def test_chaos_timer_survives_wall_clock_jump(self, tmp_path, monkeypatch):
        """Regression: the chaos timer used to run on ``time.time()``,
        so a backwards wall-clock step (NTP, DST) silently suppressed
        the injected kill.  With the coordinator on the monotonic clock
        the kill — and the reclamation it forces — must still happen
        even when the wall clock jumps back an hour mid-session."""
        start = _REAL_TIME()

        def jumping():
            now = _REAL_TIME()
            return now - (3600.0 if now - start > 0.15 else 0.0)

        monkeypatch.setattr(time, "time", jumping)
        store = ResultStore(tmp_path / "store", GRID_A)
        records = run_distributed_sweep(
            GRID_A,
            store=store,
            queue_dir=tmp_path / "queue",
            workers=2,
            ttl=0.6,
            heartbeat_interval=0.05,
            poll_interval=0.05,
            worker_throttle=0.4,
            chaos_kill_after=0.3,
        )
        assert len(records) == len(expand_grid(GRID_A))
        queue = LeaseQueue.open(tmp_path / "queue")
        assert queue.stats().reclamations >= 1

    def test_one_dead_worker_is_respawned_individually(
        self, tmp_path, serial_roots
    ):
        """Regression: respawning used to trigger only once *every*
        worker had exited, so killing 1 of 3 degraded the fleet to 2
        forever.  Now the victim is replaced against the budget while
        its siblings keep running, and the sweep drains bit-identical."""
        store_root = tmp_path / "store"
        store = ResultStore(store_root, GRID_A)
        records = run_distributed_sweep(
            GRID_A,
            store=store,
            queue_dir=tmp_path / "queue",
            workers=3,
            ttl=0.6,
            heartbeat_interval=0.05,
            poll_interval=0.05,
            worker_throttle=0.4,
            chaos_kill_after=0.2,
        )
        assert len(records) == len(expand_grid(GRID_A))
        queue = LeaseQueue.open(tmp_path / "queue")
        assert queue.stats().reclamations >= 1
        telemetry = json.loads(
            (tmp_path / "queue" / "telemetry.json").read_text()
        )
        assert telemetry["service"]["respawns"] >= 1
        # A respawned worker carries its ancestor's id plus an r<n>
        # suffix — provenance stays readable in the shard layout.
        shard_owners = {
            p.name for p in (tmp_path / "queue" / "shards").iterdir()
        }
        assert any("r" in owner for owner in shard_owners)
        assert diff_stores(serial_roots["a_only"], store_root) == []
