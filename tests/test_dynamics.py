"""Tests for repro.dynamics: schedules, substrates, dynamic runs, wiring.

Covers the subsystem's load-bearing guarantees:

* schedules are a pure function of ``(spec, n, seed)``;
* a disabled spec makes the whole wrapper a bit-exact pass-through of
  the fault-free engine path, at every stride;
* mass is conserved over live nodes under churn, loss, and link
  failures;
* the engine/config/store integration is deterministic across serial
  and parallel executors and resumes safely.
"""

import dataclasses

import numpy as np
import pytest

from repro.dynamics import (
    FAULT_PRESETS,
    DynamicGossip,
    DynamicSubstrate,
    FaultSchedule,
    FaultSpec,
    LossChannel,
    live_node_error,
)
from repro.engine.batching import run_batched
from repro.engine.executor import build_cell_algorithm, execute_cell, SweepCell
from repro.engine.store import ResultStore, content_key
from repro.experiments import ExperimentConfig
from repro.gossip.geographic import GeographicGossip
from repro.gossip.hierarchical.rounds import HierarchicalGossip
from repro.gossip.path_averaging import PathAveragingGossip
from repro.gossip.randomized import RandomizedGossip
from repro.gossip.spatial import SpatialGossip
from repro.graphs.rgg import RandomGeometricGraph

HARSH = FaultSpec(
    churn_rate=0.1,
    recover_rate=0.3,
    link_failure_rate=0.1,
    loss_prob=0.08,
    epoch_ticks=64,
)


@pytest.fixture(scope="module")
def graph():
    return RandomGeometricGraph.sample_connected(
        48, np.random.default_rng(1), radius_constant=3.0
    )


@pytest.fixture(scope="module")
def values(graph):
    return np.random.default_rng(2).normal(size=graph.n)


class TestFaultSpec:
    def test_parse_aliases_and_presets(self):
        spec = FaultSpec.parse("churn=0.1,loss=0.05,epoch=128,floor=0.6")
        assert spec.churn_rate == 0.1
        assert spec.loss_prob == 0.05
        assert spec.epoch_ticks == 128
        assert spec.min_live_fraction == 0.6
        assert FaultSpec.parse("none") == FaultSpec()
        assert FaultSpec.parse("lossy") is FAULT_PRESETS["lossy"]
        # Full field names work too.
        assert FaultSpec.parse("loss_prob=0.05") == FaultSpec.parse("loss=0.05")

    def test_canonical_round_trips(self):
        spec = FaultSpec.parse("loss=0.05,churn=0.02")
        assert FaultSpec.parse(spec.canonical()) == spec
        assert FaultSpec().canonical() == "none"
        # Disabled however spelled renders as none.
        assert FaultSpec.parse("churn=0").canonical() == "none"

    def test_canonical_round_trips_extreme_values(self):
        # %g-style rendering would emit 'epoch=1e+06' (unparseable) and
        # truncate long floats (silent store-key collisions).
        spec = FaultSpec(loss_prob=0.123456789012, epoch_ticks=1_000_000)
        assert FaultSpec.parse(spec.canonical()) == spec
        near = FaultSpec(loss_prob=0.1234567890123)
        assert near.canonical() != FaultSpec(loss_prob=0.123456789012).canonical()

    @pytest.mark.parametrize(
        "text",
        ["churn=2", "loss=-0.1", "epoch=0", "floor=0", "telepathy=1", "churn", ""],
    )
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(ValueError):
            FaultSpec.parse(text)

    def test_enabled_flag(self):
        assert not FaultSpec().enabled
        assert FaultSpec(loss_prob=0.01).enabled
        assert FaultSpec(jitter_sigma=0.01).enabled


class TestFaultSchedule:
    def test_same_seed_same_events(self):
        a = FaultSchedule(HARSH, n=32, seed=7)
        b = FaultSchedule(HARSH, n=32, seed=7)
        for epoch in (1, 2, 9):
            left, right = a.epoch_events(epoch), b.epoch_events(epoch)
            np.testing.assert_array_equal(left.crash, right.crash)
            np.testing.assert_array_equal(left.recover, right.recover)
            np.testing.assert_array_equal(
                a.link_events(epoch, 50), b.link_events(epoch, 50)
            )

    def test_different_seeds_differ(self):
        a = FaultSchedule(HARSH, n=256, seed=7).epoch_events(1)
        b = FaultSchedule(HARSH, n=256, seed=8).epoch_events(1)
        assert not np.array_equal(a.crash, b.crash)

    def test_epoch_zero_is_pristine(self):
        with pytest.raises(ValueError):
            FaultSchedule(HARSH, n=8, seed=0).epoch_events(0)
        with pytest.raises(ValueError):
            FaultSchedule(HARSH, n=8, seed=0).link_events(0, 5)

    def test_disabled_spec_draws_nothing(self):
        schedule = FaultSchedule(FaultSpec(), n=8, seed=0)
        events = schedule.epoch_events(1)
        assert not events.crash.any()
        assert events.jitter is None
        assert schedule.link_events(1, 12) is None

    def test_link_stream_independent_of_node_stream(self):
        """Link draws must not shift the node draws (jitter resizing)."""
        schedule = FaultSchedule(HARSH, n=32, seed=7)
        crash_before = schedule.epoch_events(1).crash
        for edge_count in (10, 500):
            schedule.link_events(1, edge_count)
        np.testing.assert_array_equal(
            schedule.epoch_events(1).crash, crash_before
        )


class TestLossChannel:
    def test_zero_loss_consumes_no_randomness(self):
        channel = LossChannel(0.0, np.random.default_rng(3))
        assert channel.attempt(10) == (True, 10)
        assert channel._buffer.size == 0  # never refilled

    def test_loss_counts_the_lost_transmission(self):
        channel = LossChannel(1.0, np.random.default_rng(3))
        assert channel.attempt(5) == (False, 1)  # first send always lost
        assert channel.losses == 1

    def test_deterministic_stream(self):
        a = LossChannel(0.3, np.random.default_rng(11), buffer_size=4)
        b = LossChannel(0.3, np.random.default_rng(11), buffer_size=1024)
        outcomes_a = [a.attempt(3) for _ in range(200)]
        outcomes_b = [b.attempt(3) for _ in range(200)]
        assert outcomes_a == outcomes_b  # buffering is invisible


class TestDynamicSubstrate:
    def test_crashed_nodes_leave_every_adjacency_list(self, graph):
        spec = dataclasses.replace(HARSH, loss_prob=0.0)
        substrate = DynamicSubstrate(graph, spec, seed=5)
        substrate.advance_to(10 * spec.epoch_ticks)
        dead = np.nonzero(~substrate.live)[0]
        assert dead.size > 0, "harsh churn should have crashed someone"
        for node in dead:
            assert substrate.neighbors[node].size == 0
        for adj in substrate.neighbors:
            assert not np.isin(dead, adj).any()
        # The base graph is untouched.
        for i in range(graph.n):
            np.testing.assert_array_equal(
                graph.neighbors[i], substrate.base.neighbors[i]
            )

    def test_recovery_restores_adjacency(self, graph):
        spec = FaultSpec(churn_rate=0.5, recover_rate=1.0, epoch_ticks=16)
        substrate = DynamicSubstrate(graph, spec, seed=5)
        substrate.advance_to(16)
        assert substrate.crashes > 0
        substrate.advance_to(32)  # everyone recovers at the next boundary
        assert substrate.recoveries >= substrate.crashes // 2
        # After an all-recover epoch with no fresh crashes possible we
        # cannot assert full restoration (new crashes land each epoch),
        # but live nodes must see exactly their live base neighbours.
        for i in np.nonzero(substrate.live)[0]:
            expected = [
                j for j in graph.neighbors[i] if substrate.live[j]
            ]
            np.testing.assert_array_equal(substrate.neighbors[i], expected)

    def test_min_live_fraction_floor_holds(self, graph):
        spec = FaultSpec(
            churn_rate=1.0, recover_rate=0.0, epoch_ticks=8,
            min_live_fraction=0.75,
        )
        substrate = DynamicSubstrate(graph, spec, seed=5)
        substrate.advance_to(800)
        assert substrate.live_count == int(np.ceil(0.75 * graph.n))

    def test_link_failures_are_transient(self, graph):
        spec = FaultSpec(link_failure_rate=0.3, epoch_ticks=10)
        substrate = DynamicSubstrate(graph, spec, seed=9)
        substrate.advance_to(10)
        masked = sum(adj.size for adj in substrate.neighbors)
        full = sum(adj.size for adj in graph.neighbors)
        assert masked < full
        # Each epoch redraws; a later epoch keeps (different) links down
        # but healing is implicit — no failure accumulates forever.
        down_per_epoch = []
        for epoch in range(2, 8):
            substrate.advance_to(10 * epoch)
            down_per_epoch.append(
                full - sum(adj.size for adj in substrate.neighbors)
            )
        assert max(down_per_epoch) < full // 2

    def test_advance_is_idempotent(self, graph):
        substrate = DynamicSubstrate(graph, HARSH, seed=5)
        substrate.advance_to(3 * HARSH.epoch_ticks)
        live = substrate.live.copy()
        crashes = substrate.crashes
        substrate.advance_to(3 * HARSH.epoch_ticks)
        np.testing.assert_array_equal(substrate.live, live)
        assert substrate.crashes == crashes

    def test_jitter_composes_with_link_failures(self, graph, values):
        """Regression: link draws must size to the *post-jitter* edge list.

        The first cut drew link events from the pre-jitter edge count and
        indexed them with post-rebuild edge ids — an IndexError whenever
        jitter shrank the edge list.
        """
        spec = FaultSpec(
            jitter_sigma=0.05, link_failure_rate=0.2, epoch_ticks=32
        )
        substrate = DynamicSubstrate(graph, spec, seed=5)
        dynamic = DynamicGossip(
            RandomizedGossip(substrate.neighbors), substrate
        )
        result = run_batched(
            dynamic,
            values,
            0.2,
            np.random.default_rng(7),
            check_stride=4,
            max_ticks=2_000,
        )
        assert substrate.epoch >= 2
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-9)

    def test_jitter_moves_positions_and_rebuilds(self, graph):
        spec = FaultSpec(jitter_sigma=0.05, epoch_ticks=16)
        substrate = DynamicSubstrate(graph, spec, seed=5)
        before = substrate.positions.copy()
        substrate.advance_to(16)
        assert not np.array_equal(substrate.positions, before)
        assert (substrate.positions >= 0).all()
        assert (substrate.positions <= 1).all()
        # Adjacency reflects the new geometry.
        rebuilt = RandomGeometricGraph.build(
            substrate.positions.copy(), graph.radius
        )
        for i in range(graph.n):
            np.testing.assert_array_equal(
                substrate.neighbors[i], rebuilt.neighbors[i]
            )

    def test_schedule_size_mismatch_rejected(self, graph):
        with pytest.raises(ValueError):
            DynamicSubstrate(graph, FaultSchedule(HARSH, n=graph.n + 1, seed=0))


def _protocol_makers():
    return {
        "randomized": lambda g: RandomizedGossip(g.neighbors),
        "geographic": lambda g: GeographicGossip(g),
        "geographic-position": lambda g: GeographicGossip(
            g, target_mode="position"
        ),
        "spatial": lambda g: SpatialGossip(g, rho=2.0),
        "path-averaging": lambda g: PathAveragingGossip(g),
        "path-averaging-position": lambda g: PathAveragingGossip(
            g, target_mode="position"
        ),
    }


class TestDynamicGossip:
    @pytest.mark.parametrize("name", sorted(_protocol_makers()))
    @pytest.mark.parametrize("check_stride", [1, 4])
    def test_disabled_spec_is_bit_identical(
        self, graph, values, name, check_stride
    ):
        """The acceptance bar: zero faults == the fault-free engine path."""
        maker = _protocol_makers()[name]
        substrate = DynamicSubstrate(graph, FaultSpec(), seed=9)
        dynamic = run_batched(
            DynamicGossip(maker(substrate), substrate),
            values,
            0.25,
            np.random.default_rng(7),
            check_stride=check_stride,
        )
        plain = run_batched(
            maker(graph),
            values,
            0.25,
            np.random.default_rng(7),
            check_stride=check_stride,
        )
        np.testing.assert_array_equal(dynamic.values, plain.values)
        assert dynamic.transmissions == plain.transmissions
        assert dynamic.ticks == plain.ticks
        assert dynamic.error == plain.error
        assert [(p.transmissions, p.ticks, p.error) for p in dynamic.trace.points] == [
            (p.transmissions, p.ticks, p.error) for p in plain.trace.points
        ]

    @pytest.mark.parametrize("name", sorted(_protocol_makers()))
    def test_mass_conserved_under_harsh_faults(self, graph, values, name):
        maker = _protocol_makers()[name]
        substrate = DynamicSubstrate(graph, HARSH, seed=9)
        dynamic = DynamicGossip(maker(substrate), substrate)
        result = run_batched(
            dynamic,
            values,
            0.2,
            np.random.default_rng(7),
            check_stride=4,
            max_ticks=5_000,
        )
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-8)
        metrics = dynamic.fault_metrics(result.values, values)
        assert metrics["crashes"] >= metrics["recoveries"]
        assert 0.0 <= metrics["live_fraction"] <= 1.0

    def test_loss_charges_route_lost_and_aborts(self, graph, values):
        spec = FaultSpec(loss_prob=0.15)
        substrate = DynamicSubstrate(graph, spec, seed=9)
        dynamic = DynamicGossip(PathAveragingGossip(substrate), substrate)
        result = run_batched(
            dynamic,
            values,
            0.2,
            np.random.default_rng(7),
            check_stride=4,
            max_ticks=3_000,
        )
        assert result.transmissions.get("route_lost", 0) > 0
        assert dynamic.aborted_routes > 0
        assert substrate.channel.losses > 0

    def test_randomized_loss_charges_near_lost(self, graph, values):
        spec = FaultSpec(loss_prob=0.2)
        substrate = DynamicSubstrate(graph, spec, seed=9)
        dynamic = DynamicGossip(
            RandomizedGossip(substrate.neighbors), substrate
        )
        result = run_batched(
            dynamic,
            values,
            0.2,
            np.random.default_rng(7),
            check_stride=4,
            max_ticks=3_000,
        )
        assert result.transmissions.get("near_lost", 0) > 0
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-9)

    def test_dead_owners_waste_ticks(self, graph, values):
        spec = FaultSpec(churn_rate=0.5, recover_rate=0.0, epoch_ticks=32)
        substrate = DynamicSubstrate(graph, spec, seed=9)
        dynamic = DynamicGossip(
            RandomizedGossip(substrate.neighbors), substrate
        )
        run_batched(
            dynamic,
            values,
            0.01,
            np.random.default_rng(7),
            check_stride=4,
            max_ticks=2_000,
        )
        assert dynamic.wasted_ticks > 0
        assert dynamic.ticks_elapsed == 2_000

    def test_rejects_round_based_protocols(self, graph):
        substrate = DynamicSubstrate(graph, HARSH, seed=9)
        with pytest.raises(TypeError):
            DynamicGossip(HierarchicalGossip(graph), substrate)

    def test_rejects_protocols_without_a_radio_model(self, graph):
        """Regression: affine writes to arbitrary nodes — under churn it
        would mutate crashed nodes' frozen values, so it is rejected."""
        from repro.gossip.affine import AffineGossipKn, sample_alphas

        substrate = DynamicSubstrate(graph, HARSH, seed=9)
        affine = AffineGossipKn(
            graph.n, alphas=sample_alphas(graph.n, np.random.default_rng(3))
        )
        with pytest.raises(TypeError, match="supports_dynamics"):
            DynamicGossip(affine, substrate)

    def test_live_node_error_ignores_the_dead(self):
        initial = np.array([1.0, -1.0, 5.0, -5.0])
        values = np.array([0.0, 0.0, 42.0, -42.0])
        live = np.array([True, True, False, False])
        assert live_node_error(values, initial, live) == 0.0
        assert live_node_error(values, initial, ~live) > 1.0


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def config(self):
        return ExperimentConfig(
            sizes=(48, 64),
            epsilon=0.3,
            trials=2,
            radius_constant=3.0,
            algorithms=("randomized", "geographic", "path-averaging"),
            faults="churn=0.05,recover=0.3,loss=0.05,epoch=128",
        )

    def test_config_validates_fault_spec(self):
        with pytest.raises(ValueError):
            ExperimentConfig(faults="telepathy=1")
        with pytest.raises(ValueError):
            # hierarchical is round-based: no tick loop to fault.
            ExperimentConfig(
                algorithms=("hierarchical",), faults="loss=0.05"
            )
        with pytest.raises(ValueError):
            # affine has no radio model for faults to act on.
            ExperimentConfig(algorithms=("affine",), faults="loss=0.05")
        # Fault-free hierarchical/affine stay fine.
        ExperimentConfig(
            algorithms=("hierarchical", "affine"), faults="none"
        )

    def test_build_cell_algorithm_shares_scenario_across_protocols(
        self, config, graph
    ):
        a = build_cell_algorithm(config, graph, "randomized", 48, 0)
        b = build_cell_algorithm(config, graph, "geographic", 48, 0)
        assert isinstance(a, DynamicGossip) and isinstance(b, DynamicGossip)
        assert a.substrate.schedule.seed == b.substrate.schedule.seed
        other_trial = build_cell_algorithm(config, graph, "randomized", 48, 1)
        assert (
            other_trial.substrate.schedule.seed != a.substrate.schedule.seed
        )

    def test_serial_and_parallel_sweeps_identical(self, config):
        """Satellite: identical fault schedules across executors."""
        from repro.engine.executor import run_sweep_records

        serial = run_sweep_records(config, workers=1, check_stride=4)
        parallel = run_sweep_records(config, workers=2, check_stride=4)
        assert serial.keys() == parallel.keys()
        for key, record in serial.items():
            assert record == parallel[key], key

    def test_cell_records_carry_fault_metrics(self, config):
        record = execute_cell(
            config, SweepCell("path-averaging", 48, 0), check_stride=4
        )
        assert record.faults is not None
        for field in (
            "aborted_routes",
            "wasted_ticks",
            "lost_transmissions",
            "crashes",
            "recoveries",
            "live_fraction",
            "live_node_error",
        ):
            assert field in record.faults
        clone = type(record).from_dict(record.to_dict())
        assert clone == record

    def test_fault_free_records_omit_fault_payload(self):
        config = ExperimentConfig(
            sizes=(48,), epsilon=0.3, trials=1, radius_constant=3.0,
            algorithms=("randomized",),
        )
        record = execute_cell(config, SweepCell("randomized", 48, 0))
        assert record.faults is None
        assert "faults" not in record.to_dict()

    def test_content_key_covers_fault_spec(self, config):
        fault_free = dataclasses.replace(config, faults="none")
        assert content_key(config) != content_key(fault_free)
        # Equivalent spellings share one key; disabled spellings keep the
        # legacy key so historical stores stay resumable.
        assert content_key(config) == content_key(
            dataclasses.replace(
                config, faults="churn_rate=0.05,recover_rate=0.3,"
                "loss_prob=0.05,epoch_ticks=128"
            )
        )
        assert content_key(fault_free) == content_key(
            dataclasses.replace(config, faults="churn=0")
        )

    def test_store_resume_round_trip(self, config, tmp_path):
        """Satellite: a faulted sweep resumes from its store untouched."""
        from repro.engine.executor import run_sweep_records

        small = dataclasses.replace(config, sizes=(48,), trials=1)
        store = ResultStore(tmp_path, small, check_stride=4)
        first = run_sweep_records(
            small, workers=1, check_stride=4, store=store
        )
        fresh_flags = []
        resumed = run_sweep_records(
            small,
            workers=1,
            check_stride=4,
            store=ResultStore(tmp_path, small, check_stride=4),
            on_record=lambda record, fresh: fresh_flags.append(fresh),
        )
        assert resumed == first
        assert fresh_flags and not any(fresh_flags)  # nothing recomputed
