"""Integration tests: whole-pipeline behaviour across modules.

These exercise the public API end to end: build a graph, pick a workload,
run all three algorithms, compare costs, audit transmission accounting,
and check the experiment harness wiring — the same path the benchmarks
take, at test-friendly sizes.
"""

import numpy as np
import pytest

from repro import (
    AsyncHierarchicalProtocol,
    GeographicGossip,
    HierarchicalGossip,
    HierarchyTree,
    RandomizedGossip,
    RandomGeometricGraph,
    normalized_error,
)
from repro.experiments import ExperimentConfig, run_convergence
from repro.workloads import FIELD_GENERATORS


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(83)
    graph = RandomGeometricGraph.sample_connected(256, rng, radius_constant=2.2)
    field = np.random.default_rng(89).normal(size=graph.n)
    return graph, field


class TestThreeAlgorithmsOneWorld:
    def test_all_converge_to_same_average(self, world):
        graph, field = world
        target = field.mean()
        epsilon = 0.15
        results = {}
        results["randomized"] = RandomizedGossip(graph.neighbors).run(
            field, epsilon, np.random.default_rng(1)
        )
        results["geographic"] = GeographicGossip(graph).run(
            field, epsilon, np.random.default_rng(2)
        )
        results["hierarchical"] = HierarchicalGossip(graph).run(
            field, epsilon, np.random.default_rng(3)
        )
        for name, result in results.items():
            assert result.converged, name
            assert result.values.mean() == pytest.approx(target, abs=1e-6), name
            assert normalized_error(result.values, field) <= epsilon, name

    def test_costs_are_positive_and_audited(self, world):
        graph, field = world
        result = HierarchicalGossip(graph).run(
            field, 0.2, np.random.default_rng(5)
        )
        snapshot = result.transmissions
        categories = {k: v for k, v in snapshot.items() if k != "total"}
        assert sum(categories.values()) == snapshot["total"]
        assert snapshot["total"] == result.total_transmissions

    def test_every_workload_averages(self, world):
        graph, _ = world
        rng = np.random.default_rng(7)
        for name, generator in FIELD_GENERATORS.items():
            field = generator(graph.positions, rng)
            result = GeographicGossip(graph).run(
                field, 0.25, np.random.default_rng(11)
            )
            assert result.converged, name
            assert result.values.mean() == pytest.approx(
                field.mean(), abs=1e-9
            ), name


class TestHierarchyProtocolAgreement:
    def test_round_and_async_executors_agree(self):
        # Both executors implement the same protocol; on the same world
        # they must reach the same average within tolerance.
        rng = np.random.default_rng(97)
        graph = RandomGeometricGraph.sample_connected(128, rng, radius_constant=2.5)
        tree = HierarchyTree.build(graph.positions, leaf_threshold=16.0)
        field = np.random.default_rng(101).normal(size=graph.n)
        epsilon = 0.3
        round_result = HierarchicalGossip(graph, tree=tree).run(
            field, epsilon, np.random.default_rng(13)
        )
        async_result = AsyncHierarchicalProtocol(graph, tree=tree).run(
            field, epsilon, np.random.default_rng(17)
        )
        assert round_result.converged and async_result.converged
        assert round_result.values.mean() == pytest.approx(
            async_result.values.mean(), abs=1e-9
        )

    def test_hierarchy_shared_between_algorithms(self):
        rng = np.random.default_rng(103)
        graph = RandomGeometricGraph.sample_connected(128, rng, radius_constant=2.5)
        tree = HierarchyTree.build(graph.positions, leaf_threshold=16.0)
        a = HierarchicalGossip(graph, tree=tree)
        b = AsyncHierarchicalProtocol(graph, tree=tree)
        assert a.tree is b.tree


class TestHarnessEndToEnd:
    def test_run_convergence_all_three(self):
        config = ExperimentConfig(
            sizes=(128,),
            epsilon=0.3,
            trials=1,
            radius_constant=2.5,
            field="plume",
        )
        runs = run_convergence(config, 128)
        assert len(runs) == 3
        assert all(r.converged for r in runs)
        by_name = {r.algorithm: r for r in runs}
        # Routed/hierarchical algorithms must not exceed the flat baseline
        # by an order of magnitude even at this small n.
        assert (
            by_name["geographic"].transmissions
            < 10 * by_name["randomized"].transmissions
        )

    def test_seeded_reruns_identical(self):
        config = ExperimentConfig(
            sizes=(128,), epsilon=0.3, trials=1, radius_constant=2.5,
            algorithms=("hierarchical",),
        )
        first = run_convergence(config, 128)[0]
        second = run_convergence(config, 128)[0]
        assert first.transmissions == second.transmissions
        np.testing.assert_array_equal(
            first.result.values, second.result.values
        )
