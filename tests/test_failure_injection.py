"""Failure-injection tests: degraded substrates must degrade gracefully.

The paper assumes the w.h.p. regime (connected graph, no routing voids,
occupancy concentration).  A production library must also behave sanely
when those assumptions break: conserve mass, report non-convergence
instead of hanging, and keep accounting consistent.

Two kinds of degradation are covered: *static* pathologies (disconnected
graphs, empty hierarchy squares — the historical cases below) and
*dynamic* ones driven through :mod:`repro.dynamics` — nodes crashing mid
run, recovering, and the surviving population still converging.
"""

import numpy as np
import pytest

from repro import (
    GeographicGossip,
    HierarchicalGossip,
    RandomizedGossip,
    RandomGeometricGraph,
)
from repro.dynamics import DynamicGossip, DynamicSubstrate, FaultSpec, live_node_error
from repro.engine.batching import run_batched
from repro.gossip.hierarchical import RoundConfig
from repro.gossip.path_averaging import PathAveragingGossip
from repro.hierarchy import HierarchyTree
from repro.routing import GreedyRouter, RejectionSampler


def two_cluster_graph():
    """Two dense clusters with no edges between them (disconnected)."""
    rng = np.random.default_rng(263)
    left = 0.2 * rng.random((30, 2)) + np.array([0.05, 0.4])
    right = 0.2 * rng.random((30, 2)) + np.array([0.75, 0.4])
    positions = np.vstack([left, right])
    return RandomGeometricGraph.build(positions, radius=0.22)


class TestDisconnectedGraph:
    def test_randomized_reports_non_convergence(self):
        graph = two_cluster_graph()
        values = np.concatenate([np.zeros(30), np.ones(30)])
        result = RandomizedGossip(graph.neighbors).run(
            values, epsilon=0.01, rng=np.random.default_rng(1), max_ticks=30_000
        )
        assert not result.converged
        assert result.values.sum() == pytest.approx(values.sum(), rel=1e-9)
        # Each cluster internally averaged towards its own mean.
        assert result.values[:30].std() < 0.2
        assert result.values[30:].std() < 0.2

    def test_geographic_conserves_sum_despite_voids(self):
        graph = two_cluster_graph()
        values = np.concatenate([np.zeros(30), np.ones(30)])
        algo = GeographicGossip(graph)
        result = algo.run(
            values, epsilon=0.01, rng=np.random.default_rng(3), max_ticks=5_000
        )
        assert not result.converged
        assert algo.failed_exchanges > 0  # cross-cluster routes failed
        assert result.values.sum() == pytest.approx(values.sum(), rel=1e-9)


class TestHierarchicalDegradation:
    def test_empty_squares_skipped(self):
        # All sensors in one corner: most level-1 squares empty.
        rng = np.random.default_rng(269)
        positions = 0.2 * rng.random((64, 2))
        graph = RandomGeometricGraph.build(positions, radius=0.08)
        tree = HierarchyTree(positions, [16])
        empty = [s for s in tree.squares_at_depth(1) if s.occupancy == 0]
        assert empty, "layout should produce empty squares"
        algo = HierarchicalGossip(graph, tree=tree)
        values = rng.normal(size=64)
        result = algo.run(values, epsilon=0.5, rng=np.random.default_rng(5))
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-9)

    def test_stranded_sensor_caps_round_and_reports(self):
        # A sensor with no same-leaf neighbours cannot join Near gossip;
        # the leaf round must cap out, not loop forever.
        rng = np.random.default_rng(271)
        graph = RandomGeometricGraph.sample_connected(256, rng, radius_constant=2.0)
        algo = HierarchicalGossip(
            graph, config=RoundConfig(hard_cap_factor=2.0)
        )
        stranded = [
            s for s in range(graph.n) if algo._leaf_neighbors[s].size == 0
        ]
        values = rng.normal(size=graph.n)
        result = algo.run(
            values, epsilon=0.01, rng=np.random.default_rng(7), max_root_rounds=1
        )
        # Run always terminates; with stranded sensors a very tight target
        # may be unreachable, but accounting must stay consistent.
        categories = {
            k: v for k, v in result.transmissions.items() if k != "total"
        }
        assert sum(categories.values()) == result.total_transmissions
        if stranded and not result.converged:
            assert algo.stats.cap_hits > 0

    def test_single_occupied_child_settles(self):
        # Degenerate hierarchy: only one child holds sensors.
        rng = np.random.default_rng(277)
        positions = np.column_stack(
            [0.24 * rng.random(40), 0.24 * rng.random(40)]
        )
        graph = RandomGeometricGraph.build(positions, radius=0.1)
        tree = HierarchyTree(positions, [16])
        algo = HierarchicalGossip(graph, tree=tree)
        values = rng.normal(size=40)
        result = algo.run(values, epsilon=0.4, rng=np.random.default_rng(9))
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-9)


class TestDynamicChurn:
    """Crash mid-run, recover, converge on survivors — the dynamic cases."""

    @pytest.fixture(scope="class")
    def graph(self):
        return RandomGeometricGraph.sample_connected(
            64, np.random.default_rng(283), radius_constant=3.0
        )

    @pytest.fixture(scope="class")
    def values(self, graph):
        return np.random.default_rng(293).normal(size=graph.n)

    def test_crash_then_recover_converges_globally(self, graph, values):
        """With full recovery the whole population still reaches ε."""
        spec = FaultSpec(churn_rate=0.2, recover_rate=0.9, epoch_ticks=128)
        substrate = DynamicSubstrate(graph, spec, seed=31)
        dynamic = DynamicGossip(
            RandomizedGossip(substrate.neighbors), substrate
        )
        result = run_batched(
            dynamic, values, 0.1, np.random.default_rng(3), check_stride=4
        )
        assert substrate.crashes > 0 and substrate.recoveries > 0
        assert result.converged
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-9)

    def test_permanent_crashes_converge_on_survivors(self, graph, values):
        """No recovery: global error stalls but the live population agrees."""
        spec = FaultSpec(
            churn_rate=0.3,
            recover_rate=0.0,
            epoch_ticks=256,
            min_live_fraction=0.6,
        )
        substrate = DynamicSubstrate(graph, spec, seed=31)
        dynamic = DynamicGossip(
            RandomizedGossip(substrate.neighbors), substrate
        )
        result = run_batched(
            dynamic,
            values,
            0.01,
            np.random.default_rng(3),
            check_stride=4,
            max_ticks=60_000,
        )
        live = substrate.live
        assert (~live).any(), "permanent churn should leave crashed nodes"
        # Total mass (live + frozen) is invariant ...
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-9)
        # ... the survivors agree among themselves ...
        assert result.values[live].std() < 1e-3
        assert live_node_error(result.values, values, live) < 0.01
        # ... while the stale frozen values keep the *global* criterion out
        # of reach (the oracular error includes the dead).
        assert not result.converged

    def test_routed_protocol_survives_churn_and_loss(self, graph, values):
        """Routes sever mid-transaction; accounting stays consistent."""
        spec = FaultSpec(
            churn_rate=0.1,
            recover_rate=0.4,
            link_failure_rate=0.1,
            loss_prob=0.1,
            epoch_ticks=128,
        )
        substrate = DynamicSubstrate(graph, spec, seed=31)
        dynamic = DynamicGossip(PathAveragingGossip(substrate), substrate)
        result = run_batched(
            dynamic,
            values,
            0.15,
            np.random.default_rng(3),
            check_stride=4,
            max_ticks=20_000,
        )
        assert dynamic.aborted_routes > 0
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-8)
        categories = {
            k: v for k, v in result.transmissions.items() if k != "total"
        }
        assert sum(categories.values()) == result.total_transmissions
        assert result.transmissions.get("route_lost", 0) > 0


class TestRoutingDegradation:
    def test_round_trip_on_disconnected_pair_fails_cleanly(self):
        graph = two_cluster_graph()
        router = GreedyRouter(graph)
        forward, backward = router.round_trip(0, 59)
        assert not forward.delivered
        # Costs still accounted: the packet travelled some hops.
        assert forward.hops >= 0 and backward.hops >= 0

    def test_rejection_sampler_with_duplicate_points(self):
        positions = np.vstack([np.full((5, 2), 0.5), np.random.default_rng(11).random((5, 2))])
        sampler = RejectionSampler(positions)
        node, proposals = sampler.sample(np.random.default_rng(13))
        assert 0 <= node < 10
        assert proposals >= 1
        assert sampler.target_distribution().sum() == pytest.approx(1.0)
