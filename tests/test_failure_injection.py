"""Failure-injection tests: degraded substrates must degrade gracefully.

The paper assumes the w.h.p. regime (connected graph, no routing voids,
occupancy concentration).  A production library must also behave sanely
when those assumptions break: conserve mass, report non-convergence
instead of hanging, and keep accounting consistent.
"""

import numpy as np
import pytest

from repro import (
    GeographicGossip,
    HierarchicalGossip,
    RandomizedGossip,
    RandomGeometricGraph,
)
from repro.gossip.hierarchical import RoundConfig
from repro.hierarchy import HierarchyTree
from repro.routing import GreedyRouter, RejectionSampler


def two_cluster_graph():
    """Two dense clusters with no edges between them (disconnected)."""
    rng = np.random.default_rng(263)
    left = 0.2 * rng.random((30, 2)) + np.array([0.05, 0.4])
    right = 0.2 * rng.random((30, 2)) + np.array([0.75, 0.4])
    positions = np.vstack([left, right])
    return RandomGeometricGraph.build(positions, radius=0.22)


class TestDisconnectedGraph:
    def test_randomized_reports_non_convergence(self):
        graph = two_cluster_graph()
        values = np.concatenate([np.zeros(30), np.ones(30)])
        result = RandomizedGossip(graph.neighbors).run(
            values, epsilon=0.01, rng=np.random.default_rng(1), max_ticks=30_000
        )
        assert not result.converged
        assert result.values.sum() == pytest.approx(values.sum(), rel=1e-9)
        # Each cluster internally averaged towards its own mean.
        assert result.values[:30].std() < 0.2
        assert result.values[30:].std() < 0.2

    def test_geographic_conserves_sum_despite_voids(self):
        graph = two_cluster_graph()
        values = np.concatenate([np.zeros(30), np.ones(30)])
        algo = GeographicGossip(graph)
        result = algo.run(
            values, epsilon=0.01, rng=np.random.default_rng(3), max_ticks=5_000
        )
        assert not result.converged
        assert algo.failed_exchanges > 0  # cross-cluster routes failed
        assert result.values.sum() == pytest.approx(values.sum(), rel=1e-9)


class TestHierarchicalDegradation:
    def test_empty_squares_skipped(self):
        # All sensors in one corner: most level-1 squares empty.
        rng = np.random.default_rng(269)
        positions = 0.2 * rng.random((64, 2))
        graph = RandomGeometricGraph.build(positions, radius=0.08)
        tree = HierarchyTree(positions, [16])
        empty = [s for s in tree.squares_at_depth(1) if s.occupancy == 0]
        assert empty, "layout should produce empty squares"
        algo = HierarchicalGossip(graph, tree=tree)
        values = rng.normal(size=64)
        result = algo.run(values, epsilon=0.5, rng=np.random.default_rng(5))
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-9)

    def test_stranded_sensor_caps_round_and_reports(self):
        # A sensor with no same-leaf neighbours cannot join Near gossip;
        # the leaf round must cap out, not loop forever.
        rng = np.random.default_rng(271)
        graph = RandomGeometricGraph.sample_connected(256, rng, radius_constant=2.0)
        algo = HierarchicalGossip(
            graph, config=RoundConfig(hard_cap_factor=2.0)
        )
        stranded = [
            s for s in range(graph.n) if algo._leaf_neighbors[s].size == 0
        ]
        values = rng.normal(size=graph.n)
        result = algo.run(
            values, epsilon=0.01, rng=np.random.default_rng(7), max_root_rounds=1
        )
        # Run always terminates; with stranded sensors a very tight target
        # may be unreachable, but accounting must stay consistent.
        categories = {
            k: v for k, v in result.transmissions.items() if k != "total"
        }
        assert sum(categories.values()) == result.total_transmissions
        if stranded and not result.converged:
            assert algo.stats.cap_hits > 0

    def test_single_occupied_child_settles(self):
        # Degenerate hierarchy: only one child holds sensors.
        rng = np.random.default_rng(277)
        positions = np.column_stack(
            [0.24 * rng.random(40), 0.24 * rng.random(40)]
        )
        graph = RandomGeometricGraph.build(positions, radius=0.1)
        tree = HierarchyTree(positions, [16])
        algo = HierarchicalGossip(graph, tree=tree)
        values = rng.normal(size=40)
        result = algo.run(values, epsilon=0.4, rng=np.random.default_rng(9))
        assert result.values.sum() == pytest.approx(values.sum(), abs=1e-9)


class TestRoutingDegradation:
    def test_round_trip_on_disconnected_pair_fails_cleanly(self):
        graph = two_cluster_graph()
        router = GreedyRouter(graph)
        forward, backward = router.round_trip(0, 59)
        assert not forward.delivered
        # Costs still accounted: the packet travelled some hops.
        assert forward.hops >= 0 and backward.hops >= 0

    def test_rejection_sampler_with_duplicate_points(self):
        positions = np.vstack([np.full((5, 2), 0.5), np.random.default_rng(11).random((5, 2))])
        sampler = RejectionSampler(positions)
        node, proposals = sampler.sample(np.random.default_rng(13))
        assert 0 <= node < 10
        assert proposals >= 1
        assert sampler.target_distribution().sum() == pytest.approx(1.0)
