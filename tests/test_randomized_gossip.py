"""Unit tests for repro.gossip.randomized (Boyd et al. baseline)."""

import numpy as np
import pytest

from repro.gossip import RandomizedGossip
from repro.graphs import (
    RandomGeometricGraph,
    complete_graph_adjacency,
    ring_graph_adjacency,
)


@pytest.fixture(scope="module")
def rgg():
    rng = np.random.default_rng(107)
    return RandomGeometricGraph.sample_connected(128, rng, radius_constant=2.5)


class TestRandomizedGossip:
    def test_converges_on_rgg(self, rgg):
        algo = RandomizedGossip(rgg.neighbors)
        rng = np.random.default_rng(109)
        x0 = rng.normal(size=rgg.n)
        result = algo.run(x0, epsilon=0.05, rng=rng)
        assert result.converged
        assert result.error <= 0.05

    def test_sum_conserved_exactly(self, rgg):
        algo = RandomizedGossip(rgg.neighbors)
        rng = np.random.default_rng(113)
        x0 = rng.normal(size=rgg.n)
        result = algo.run(x0, epsilon=0.1, rng=rng)
        assert result.values.sum() == pytest.approx(x0.sum(), rel=1e-9)

    def test_two_transmissions_per_exchange(self, rgg):
        algo = RandomizedGossip(rgg.neighbors)
        rng = np.random.default_rng(127)
        result = algo.run(rng.normal(size=rgg.n), epsilon=0.3, rng=rng)
        assert result.transmissions["near"] == result.total_transmissions
        assert result.total_transmissions == 2 * result.ticks

    def test_converges_on_complete_graph(self):
        algo = RandomizedGossip(complete_graph_adjacency(32))
        rng = np.random.default_rng(131)
        result = algo.run(rng.normal(size=32), epsilon=0.05, rng=rng)
        assert result.converged

    def test_slow_on_ring(self):
        # The ring mixes in Θ(n²) — the run should need far more exchanges
        # per node than the complete graph at equal n and ε.
        n = 32
        rng = np.random.default_rng(137)
        x0 = rng.normal(size=n)
        ring = RandomizedGossip(ring_graph_adjacency(n)).run(
            x0, epsilon=0.1, rng=np.random.default_rng(1)
        )
        complete = RandomizedGossip(complete_graph_adjacency(n)).run(
            x0, epsilon=0.1, rng=np.random.default_rng(1)
        )
        assert ring.total_transmissions > 2 * complete.total_transmissions

    def test_isolated_node_tick_is_noop(self):
        neighbors = [np.array([1]), np.array([0]), np.array([], dtype=np.int64)]
        algo = RandomizedGossip(neighbors)
        values = np.array([0.0, 1.0, 5.0])
        from repro.routing import TransmissionCounter

        counter = TransmissionCounter()
        algo.tick(2, values, counter, np.random.default_rng(3))
        assert values[2] == 5.0
        assert counter.total == 0

    def test_values_stay_in_convex_hull(self, rgg):
        algo = RandomizedGossip(rgg.neighbors)
        rng = np.random.default_rng(139)
        x0 = rng.uniform(0.0, 10.0, size=rgg.n)
        result = algo.run(x0, epsilon=0.05, rng=rng)
        assert result.values.min() >= x0.min() - 1e-9
        assert result.values.max() <= x0.max() + 1e-9
