"""Unit tests for repro.graphs.cellgrid."""

import numpy as np
import pytest

from repro.geometry import random_points
from repro.graphs import CellGrid


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestConstruction:
    def test_rejects_bad_cell_side(self, rng):
        with pytest.raises(ValueError):
            CellGrid(random_points(10, rng), cell_side=0.0)

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError):
            CellGrid(np.zeros((5, 3)), cell_side=0.1)

    def test_every_point_bucketed_once(self, rng):
        pts = random_points(400, rng)
        grid = CellGrid(pts, cell_side=0.13)
        seen = np.concatenate(
            [grid.cell_members(c) for c in range(len(grid.partition))]
        )
        assert len(seen) == 400
        assert sorted(seen.tolist()) == list(range(400))

    def test_members_are_in_their_cell(self, rng):
        pts = random_points(200, rng)
        grid = CellGrid(pts, cell_side=0.2)
        for c in range(len(grid.partition)):
            cell = grid.partition.cell(c)
            for i in grid.cell_members(c):
                assert cell.contains(pts[i])

    def test_cell_side_never_below_request(self, rng):
        grid = CellGrid(random_points(10, rng), cell_side=0.3)
        assert grid.partition.cell_side >= 0.3


class TestWithinQueries:
    def test_matches_brute_force(self, rng):
        pts = random_points(300, rng)
        radius = 0.08
        grid = CellGrid(pts, cell_side=radius)
        for _ in range(30):
            q = rng.random(2)
            found = set(grid.within(q, radius).tolist())
            dists = np.hypot(pts[:, 0] - q[0], pts[:, 1] - q[1])
            expected = set(np.nonzero(dists <= radius)[0].tolist())
            assert found == expected

    def test_radius_larger_than_cell_rejected(self, rng):
        grid = CellGrid(random_points(50, rng), cell_side=0.1)
        with pytest.raises(ValueError):
            grid.within(np.array([0.5, 0.5]), radius=0.5)

    def test_empty_region_query(self):
        pts = np.array([[0.9, 0.9]])
        grid = CellGrid(pts, cell_side=0.1)
        assert grid.within(np.array([0.1, 0.1]), 0.1).size == 0


class TestNearestQueries:
    def test_matches_brute_force(self, rng):
        pts = random_points(250, rng)
        grid = CellGrid(pts, cell_side=0.07)
        for _ in range(50):
            q = rng.random(2)
            found = grid.nearest(q)
            dists = np.hypot(pts[:, 0] - q[0], pts[:, 1] - q[1])
            assert dists[found] == pytest.approx(dists.min())

    def test_single_point(self):
        grid = CellGrid(np.array([[0.2, 0.8]]), cell_side=0.25)
        assert grid.nearest(np.array([0.9, 0.1])) == 0

    def test_nearest_far_from_populated_cells(self, rng):
        # All points clustered in one corner; query from the opposite corner
        # must still find the true nearest (exercises the ring search).
        pts = 0.05 * random_points(40, rng)
        grid = CellGrid(pts, cell_side=0.04)
        q = np.array([0.99, 0.99])
        found = grid.nearest(q)
        dists = np.hypot(pts[:, 0] - q[0], pts[:, 1] - q[1])
        assert dists[found] == pytest.approx(dists.min())

    def test_empty_grid_raises(self):
        grid = CellGrid(np.empty((0, 2)), cell_side=0.2)
        with pytest.raises(ValueError):
            grid.nearest(np.array([0.5, 0.5]))
