"""ASCII renderers for fields, curves and hierarchies.

All functions return plain strings (they never print), sized for a
standard terminal.  Character ramps use ASCII only, so output survives
any locale.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["render_field", "render_curve", "render_hierarchy", "render_timeline"]

#: Dark-to-bright character ramp for heat-maps.
_RAMP = " .:-=+*#%@"


def render_field(
    positions: np.ndarray,
    values: np.ndarray,
    width: int = 48,
    height: int = 24,
) -> str:
    """Heat-map of sensor ``values`` over the unit square.

    Each character cell shows the mean value of the sensors inside it
    (blank where no sensor lies).  Rows print top-down (y decreasing), so
    the picture matches the usual orientation of the unit square.
    """
    positions = np.asarray(positions, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if len(positions) != len(values):
        raise ValueError(
            f"{len(positions)} positions vs {len(values)} values"
        )
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be positive")
    cols = np.clip((positions[:, 0] * width).astype(int), 0, width - 1)
    rows = np.clip((positions[:, 1] * height).astype(int), 0, height - 1)
    sums = np.zeros((height, width))
    counts = np.zeros((height, width))
    np.add.at(sums, (rows, cols), values)
    np.add.at(counts, (rows, cols), 1.0)
    occupied = counts > 0
    means = np.where(occupied, sums / np.maximum(counts, 1.0), np.nan)
    finite = means[occupied]
    low = float(finite.min()) if finite.size else 0.0
    high = float(finite.max()) if finite.size else 1.0
    span = (high - low) or 1.0
    lines = []
    for r in range(height - 1, -1, -1):
        chars = []
        for c in range(width):
            if not occupied[r, c]:
                chars.append(" ")
            else:
                level = (means[r, c] - low) / span
                chars.append(_RAMP[min(int(level * (len(_RAMP) - 1)), len(_RAMP) - 1)])
        lines.append("|" + "".join(chars) + "|")
    header = "+" + "-" * width + "+"
    legend = f"  range: [{low:.3g}, {high:.3g}]   '{_RAMP[0]}' low ... '{_RAMP[-1]}' high"
    return "\n".join([header, *lines, header, legend])


def render_curve(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 60,
    height: int = 16,
    logy: bool = True,
    label: str = "",
) -> str:
    """A scatter-style curve, optionally log-scaled on y.

    Designed for convergence traces: ``x`` = transmissions, ``y`` = error.
    Non-positive ``y`` values are dropped when ``logy`` is set.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need matching x/y arrays with at least two points")
    if logy:
        keep = y > 0
        x, y = x[keep], np.log10(y[keep])
        if x.size < 2:
            raise ValueError("fewer than two positive y values for a log plot")
    x_low, x_high = float(x.min()), float(x.max())
    y_low, y_high = float(y.min()), float(y.max())
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = min(int((xi - x_low) / x_span * (width - 1)), width - 1)
        row = min(int((yi - y_low) / y_span * (height - 1)), height - 1)
        grid[height - 1 - row][col] = "*"
    top = f"{10**y_high:.2g}" if logy else f"{y_high:.3g}"
    bottom = f"{10**y_low:.2g}" if logy else f"{y_low:.3g}"
    lines = [f"{label}" if label else ""]
    for index, row in enumerate(grid):
        margin = top if index == 0 else (bottom if index == height - 1 else "")
        lines.append(f"{margin:>9} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':>10} {x_low:.3g}" + " " * max(1, width - 18) + f"{x_high:.3g}")
    return "\n".join(line for line in lines if line != "")


def render_timeline(
    events: list,
    width: int = 64,
    height: int = 12,
) -> str:
    """Error decay plus crash/recover epochs from one structured trace.

    Takes the event list of a
    :class:`~repro.observability.events.TraceRecorder` (or a file loaded
    via :func:`~repro.observability.events.load_trace`) and draws the
    recorded convergence checks as a log-scaled error curve over the
    tick axis, with a fault lane underneath marking each epoch
    transition: ``x`` = crashes only, ``o`` = recoveries only, ``#`` =
    both at one boundary.  Fault-free traces render without the lane.
    """
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be positive")
    start = events[0] if events else {}
    if start.get("e") != "start":
        raise ValueError("not a trace: the event list has no start event")
    points = [(0, None)]  # tick 0's error comes from the initial state: 1.0
    epochs = []
    end_ticks = 0
    for event in events:
        kind = event.get("e")
        if kind == "check":
            points.append((int(event["ticks"]), float(event["error"])))
        elif kind == "epoch":
            epochs.append(
                (
                    int(event["tick"]),
                    bool(event["crashed"]),
                    bool(event["recovered"]),
                )
            )
        elif kind == "end":
            end_ticks = int(event["ticks"])
            points.append((end_ticks, float(event["error"])))
    points[0] = (0, 1.0)
    if len(points) < 2:
        raise ValueError(
            "trace records no convergence checks; nothing to draw"
        )
    ticks = np.array([p[0] for p in points], dtype=np.float64)
    errors = np.array([p[1] for p in points], dtype=np.float64)
    keep = errors > 0
    ticks, errors = ticks[keep], np.log10(errors[keep])
    if ticks.size < 2:
        raise ValueError("fewer than two positive errors for a log plot")
    tick_high = float(max(ticks.max(), end_ticks)) or 1.0
    y_low, y_high = float(errors.min()), float(errors.max())
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for tick, log_error in zip(ticks, errors):
        col = min(int(tick / tick_high * (width - 1)), width - 1)
        row = min(int((log_error - y_low) / y_span * (height - 1)), height - 1)
        grid[height - 1 - row][col] = "*"
    label = (
        f"{start.get('algorithm', '?')}  n={start.get('n', '?')}"
        f"  k={start.get('k', 1)}  eps={start.get('epsilon', '?')}"
        f"  stride={start.get('stride', 1)}"
    )
    lines = [label, f"{10**y_high:.2g}".rjust(9) + " |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    lines.append(f"{10**y_low:.2g}".rjust(9) + " |" + "".join(grid[-1]))
    lines.append(" " * 10 + "+" + "-" * width)
    if epochs:
        lane = [" "] * width
        for tick, crashed, recovered in epochs:
            col = min(int(tick / tick_high * (width - 1)), width - 1)
            mark = "#" if crashed and recovered else ("x" if crashed else "o")
            lane[col] = "#" if lane[col] not in (" ", mark) else mark
        lines.append(f"{'faults':>9} |" + "".join(lane))
    lines.append(
        f"{'ticks':>10} 0" + " " * max(1, width - 12)
        + f"{int(tick_high)}"
    )
    if epochs:
        lines.append("  x = crashes, o = recoveries, # = both at one epoch")
    return "\n".join(lines)


def render_hierarchy(tree, width: int = 48, height: int = 24) -> str:
    """The square hierarchy: grid lines per level plus supernode markers.

    Depth-1 boundaries draw as ``+``/lines; supernodes print as digits —
    their Level (capped at 9).  Accepts a
    :class:`~repro.hierarchy.tree.HierarchyTree`.
    """
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be positive")
    canvas = [[" "] * width for _ in range(height)]
    # Level-1 grid lines.
    if tree.factors:
        k = int(round(math.sqrt(tree.factors[0])))
        for line in range(1, k):
            col = min(int(line / k * width), width - 1)
            for r in range(height):
                canvas[r][col] = "|" if canvas[r][col] == " " else canvas[r][col]
            row = min(int(line / k * height), height - 1)
            for c in range(width):
                canvas[row][c] = "-" if canvas[row][c] == " " else "+"
    # Supernodes, deepest drawn first so higher levels overwrite.
    for node in sorted(tree.all_squares(), key=lambda s: -s.depth):
        if node.supernode < 0:
            continue
        x, y = tree.positions[node.supernode]
        col = min(int(x * width), width - 1)
        row = min(int(y * height), height - 1)
        level = min(tree.levels - node.depth, 9)
        canvas[height - 1 - row][col] = str(level)
    header = "+" + "-" * width + "+"
    body = ["|" + "".join(row) + "|" for row in canvas]
    legend = "  digits = supernode Levels (paper §4.1); lines = level-1 squares"
    return "\n".join([header, *body, header, legend])
