"""Terminal-native visualisation (no plotting dependencies).

Sensor fields, convergence curves and hierarchy layouts rendered as
ASCII/Unicode blocks — enough to eyeball a run from an SSH session:

* :func:`~repro.viz.ascii.render_field` — a field heat-map over the unit
  square;
* :func:`~repro.viz.ascii.render_curve` — log-scale convergence curves;
* :func:`~repro.viz.ascii.render_hierarchy` — the square hierarchy with
  supernode positions;
* :func:`~repro.viz.ascii.render_timeline` — a structured trace's error
  decay and crash/recover epochs over the tick axis.
"""

from repro.viz.ascii import (
    render_curve,
    render_field,
    render_hierarchy,
    render_timeline,
)

__all__ = [
    "render_curve",
    "render_field",
    "render_hierarchy",
    "render_timeline",
]
