"""Error metrics and convergence traces.

The paper's performance criterion (Section 2.1): drive
``‖x(t)‖ < ε·‖x(0)‖`` where values are centred so the true average is zero.
:mod:`repro.metrics.error` provides that norm and related diagnostics;
:mod:`repro.metrics.trace` records (transmissions, error) curves for the
convergence experiments.
"""

from repro.metrics.error import (
    consensus_value,
    deviation_norm,
    max_deviation,
    normalized_error,
    variance,
)
from repro.metrics.trace import ConvergenceTrace, TracePoint

__all__ = [
    "ConvergenceTrace",
    "TracePoint",
    "consensus_value",
    "deviation_norm",
    "max_deviation",
    "normalized_error",
    "variance",
]
