"""Error metrics and convergence traces.

The paper's performance criterion (Section 2.1): drive
``‖x(t)‖ < ε·‖x(0)‖`` where values are centred so the true average is zero.
:mod:`repro.metrics.error` provides that norm and related diagnostics;
:mod:`repro.metrics.trace` records (transmissions, error) curves for the
convergence experiments.
"""

from repro.metrics.error import (
    column_errors,
    consensus_value,
    deviation_norm,
    field_count,
    max_deviation,
    normalized_error,
    primary_field,
    result_column_errors,
    variance,
)
from repro.metrics.trace import ConvergenceTrace, TracePoint

__all__ = [
    "ConvergenceTrace",
    "TracePoint",
    "column_errors",
    "consensus_value",
    "deviation_norm",
    "field_count",
    "max_deviation",
    "normalized_error",
    "primary_field",
    "result_column_errors",
    "variance",
]
