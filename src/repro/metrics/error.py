"""Distance-to-average metrics.

The paper centres values ("Without loss of generality, we assume
x̄(0) = 0") and studies ``‖x(t)‖``.  Simulations keep raw sensor values, so
the metrics here subtract the *initial* mean — which every sum-conserving
protocol preserves — making ``deviation_norm`` the paper's ``‖x(t)‖``
exactly.

**Multi-field state.**  Gossip state is either a scalar field (one value
per node, shape ``(n,)``) or a stacked field matrix (``k`` concurrent
measurements per node, shape ``(n, k)``).  All protocols apply the same
mixing operation to every column, so the paper's scalar theory applies
column by column.  The oracular stopping rule tracks the **primary
field** — column 0 — exactly as the scalar engine always has:
:func:`primary_field` extracts it as a *contiguous* 1-D array, so every
reduction over it (sums, norms) runs the identical NumPy kernel the
scalar path runs, and column 0 of a ``k``-field run stays bit-identical
to the legacy scalar run (the golden-trace suite asserts this).
:func:`column_errors` reports the per-column errors of the secondary
fields, which contract at the same rate because they share the mixing
matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "consensus_value",
    "deviation_norm",
    "normalized_error",
    "variance",
    "max_deviation",
    "field_count",
    "primary_field",
    "column_errors",
    "result_column_errors",
]


def field_count(values: np.ndarray) -> int:
    """Number of stacked fields: 1 for ``(n,)`` state, ``k`` for ``(n, k)``.

    >>> import numpy as np
    >>> field_count(np.zeros(5))
    1
    >>> field_count(np.zeros((5, 3)))
    3
    """
    values = np.asarray(values)
    if values.ndim == 1:
        return 1
    if values.ndim == 2 and values.shape[1] >= 1:
        return int(values.shape[1])
    raise ValueError(
        f"gossip state must have shape (n,) or (n, k), got {values.shape}"
    )


def primary_field(values: np.ndarray) -> np.ndarray:
    """Column 0 of the state as a contiguous 1-D array.

    Scalar (1-D) state is returned unchanged — no copy, so the legacy
    code path is untouched.  Matrix state yields a *contiguous copy* of
    its first column: NumPy's strided axis reductions accumulate in a
    different order than its contiguous 1-D reductions, so operating on
    a strided column view would break the column-0 bit-identity
    guarantee (``tests/test_multifield.py`` checks the kernel identity
    directly).
    """
    values = np.asarray(values)
    if values.ndim == 1:
        return values
    if values.ndim == 2 and values.shape[1] >= 1:
        return np.ascontiguousarray(values[:, 0])
    raise ValueError(
        f"gossip state must have shape (n,) or (n, k), got {values.shape}"
    )


def column_errors(values: np.ndarray, initial_values: np.ndarray) -> np.ndarray:
    """Per-column :func:`normalized_error` of an ``(n, k)`` field matrix.

    Each column is reduced through the same contiguous 1-D kernels the
    scalar metric uses, so ``column_errors(X, X0)[0]`` equals
    ``normalized_error(X[:, 0], X0[:, 0])`` bit for bit.  1-D state
    returns a length-1 array.
    """
    values = np.asarray(values, dtype=np.float64)
    initial_values = np.asarray(initial_values, dtype=np.float64)
    if values.shape != initial_values.shape:
        raise ValueError(
            f"state and initial state shapes differ: {values.shape} vs "
            f"{initial_values.shape}"
        )
    if values.ndim == 1:
        return np.array([normalized_error(values, initial_values)])
    if values.ndim != 2 or values.shape[1] < 1:
        raise ValueError(
            f"gossip state must have shape (n,) or (n, k), got {values.shape}"
        )
    current = np.ascontiguousarray(values.T)
    initial = np.ascontiguousarray(initial_values.T)
    return np.array(
        [
            normalized_error(current[j], initial[j])
            for j in range(values.shape[1])
        ]
    )


def result_column_errors(
    values: np.ndarray, initial_values: np.ndarray
) -> np.ndarray | None:
    """The ``GossipRunResult.column_errors`` construction rule, in one place.

    Matrix state yields :func:`column_errors`; scalar state yields
    ``None`` (scalar results never grew the field, so pre-multi-field
    consumers see exactly what they always saw).  Every run-result build
    site — the legacy scalar loop, the batched engine, the hierarchical
    executor — goes through here so the rule can never desynchronize
    between them.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        return None
    return column_errors(values, initial_values)


def consensus_value(values: np.ndarray) -> float:
    """The average the protocol should converge to."""
    return float(np.mean(values))


def deviation_norm(values: np.ndarray, mean: float | None = None) -> float:
    """ℓ₂ norm of the deviation from the mean — the paper's ``‖x(t)‖``.

    ``mean`` defaults to the current mean; sum-conserving protocols keep
    that equal to the initial mean, but pass the initial mean explicitly
    when auditing protocols that may leak mass.
    """
    if mean is None:
        mean = consensus_value(values)
    return float(np.linalg.norm(values - mean))


def normalized_error(values: np.ndarray, initial_values: np.ndarray) -> float:
    """``‖x(t)‖ / ‖x(0)‖`` with both deviations taken about the initial mean.

    This is the ε of the paper's problem statement: the algorithm succeeds
    once ``normalized_error ≤ ε``.  Degenerate inputs (initially consensual)
    return 0: any consensus-preserving run is vacuously converged.

    ``(n, k)`` field matrices reduce to their **primary field** (column
    0, via :func:`primary_field`) — the multi-field engine's oracular
    stopping rule; per-column errors are :func:`column_errors`.  Mixing
    a 1-D state with a 2-D one is rejected: silently flattening a matrix
    into the scalar norms would return a plausible-looking wrong number.
    """
    values = np.asarray(values)
    initial_values = np.asarray(initial_values)
    if values.ndim == 2 or initial_values.ndim == 2:
        if values.shape != initial_values.shape:
            raise ValueError(
                f"state and initial state shapes differ: {values.shape} vs "
                f"{initial_values.shape} — compare matching layouts (for "
                "one column of a matrix, slice both sides, or use "
                "column_errors)"
            )
        return normalized_error(
            primary_field(values), primary_field(initial_values)
        )
    initial_mean = consensus_value(initial_values)
    initial_norm = deviation_norm(initial_values, initial_mean)
    if initial_norm == 0.0:
        return 0.0
    return deviation_norm(values, initial_mean) / initial_norm


def variance(values: np.ndarray) -> float:
    """Population variance — ``‖x − x̄‖²/n``, the per-sensor energy."""
    return float(np.var(values))


def max_deviation(values: np.ndarray, mean: float | None = None) -> float:
    """ℓ∞ distance from the mean (stricter than the paper's ℓ₂ criterion)."""
    if mean is None:
        mean = consensus_value(values)
    return float(np.max(np.abs(values - mean)))
