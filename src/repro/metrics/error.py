"""Distance-to-average metrics.

The paper centres values ("Without loss of generality, we assume
x̄(0) = 0") and studies ``‖x(t)‖``.  Simulations keep raw sensor values, so
the metrics here subtract the *initial* mean — which every sum-conserving
protocol preserves — making ``deviation_norm`` the paper's ``‖x(t)‖``
exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "consensus_value",
    "deviation_norm",
    "normalized_error",
    "variance",
    "max_deviation",
]


def consensus_value(values: np.ndarray) -> float:
    """The average the protocol should converge to."""
    return float(np.mean(values))


def deviation_norm(values: np.ndarray, mean: float | None = None) -> float:
    """ℓ₂ norm of the deviation from the mean — the paper's ``‖x(t)‖``.

    ``mean`` defaults to the current mean; sum-conserving protocols keep
    that equal to the initial mean, but pass the initial mean explicitly
    when auditing protocols that may leak mass.
    """
    if mean is None:
        mean = consensus_value(values)
    return float(np.linalg.norm(values - mean))


def normalized_error(values: np.ndarray, initial_values: np.ndarray) -> float:
    """``‖x(t)‖ / ‖x(0)‖`` with both deviations taken about the initial mean.

    This is the ε of the paper's problem statement: the algorithm succeeds
    once ``normalized_error ≤ ε``.  Degenerate inputs (initially consensual)
    return 0: any consensus-preserving run is vacuously converged.
    """
    initial_mean = consensus_value(initial_values)
    initial_norm = deviation_norm(initial_values, initial_mean)
    if initial_norm == 0.0:
        return 0.0
    return deviation_norm(values, initial_mean) / initial_norm


def variance(values: np.ndarray) -> float:
    """Population variance — ``‖x − x̄‖²/n``, the per-sensor energy."""
    return float(np.var(values))


def max_deviation(values: np.ndarray, mean: float | None = None) -> float:
    """ℓ∞ distance from the mean (stricter than the paper's ℓ₂ criterion)."""
    if mean is None:
        mean = consensus_value(values)
    return float(np.max(np.abs(values - mean)))
