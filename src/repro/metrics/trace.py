"""Convergence traces: error as a function of transmissions.

Every gossip run can record a :class:`ConvergenceTrace` — the (cumulative
transmissions, clock ticks, normalized error) curve that experiments E7/E8
plot.  Recording every tick would dominate runtime at large ``n``, so the
trace thins itself geometrically: points are kept only when transmissions
grow by ``thinning`` (default 1%) since the last kept point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TracePoint", "ConvergenceTrace"]


@dataclass(frozen=True)
class TracePoint:
    """One sample of a convergence curve."""

    transmissions: int
    ticks: int
    error: float


@dataclass
class ConvergenceTrace:
    """A thinned (transmissions → error) curve.

    Parameters
    ----------
    thinning:
        Minimum relative growth in transmissions between kept points;
        0 keeps every offered point.
    """

    thinning: float = 0.01
    points: list[TracePoint] = field(default_factory=list)

    def record(self, transmissions: int, ticks: int, error: float) -> bool:
        """Offer a sample; returns True if it was kept."""
        if self.points:
            last = self.points[-1].transmissions
            if transmissions < last * (1.0 + self.thinning):
                return False
        self.points.append(TracePoint(transmissions, ticks, error))
        return True

    def force_record(self, transmissions: int, ticks: int, error: float) -> None:
        """Record unconditionally (used for the final state of a run)."""
        self.points.append(TracePoint(transmissions, ticks, error))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def final_error(self) -> float:
        if not self.points:
            raise ValueError("trace is empty")
        return self.points[-1].error

    @property
    def final_transmissions(self) -> int:
        if not self.points:
            raise ValueError("trace is empty")
        return self.points[-1].transmissions

    def transmissions_to_reach(self, error: float) -> int | None:
        """First recorded transmission count with error ≤ ``error``."""
        for point in self.points:
            if point.error <= error:
                return point.transmissions
        return None

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(transmissions, errors) as parallel arrays for plotting/fitting."""
        tx = np.array([p.transmissions for p in self.points], dtype=np.int64)
        err = np.array([p.error for p in self.points], dtype=np.float64)
        return tx, err

    def decay_rate_per_transmission(self) -> float:
        """Fitted exponential decay rate of the error curve.

        Least-squares slope of ``log(error)`` against transmissions over
        the recorded points with positive error; useful for comparing
        convergence speeds without choosing a single ε.
        """
        tx, err = self.as_arrays()
        keep = err > 0
        if keep.sum() < 2:
            raise ValueError("need at least two positive-error points to fit")
        slope = np.polyfit(tx[keep], np.log(err[keep]), deg=1)[0]
        return float(-slope)
