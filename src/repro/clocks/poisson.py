"""Poisson clocks for asynchronous gossip.

Model (paper, Section 2): "each node or sensor has a clock that is a Poisson
process with rate 1, and these processes are independent.  This model is
equivalent to having a single clock that is Poisson of rate n, and assigning
clock ticks to nodes uniformly at random."  Communication and packet
forwarding are instantaneous relative to the mean slot length ``1/n``.

Simulators in this library consume :class:`GlobalClock` (the rate-``n``
view); :class:`PoissonClock` exists for the per-node view and for the
equivalence test between the two models.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Iterator

import numpy as np

__all__ = ["Tick", "PoissonClock", "GlobalClock", "merge_ticks"]


@dataclass(frozen=True, order=True)
class Tick:
    """One clock tick: the global time at which ``node``'s clock fired."""

    time: float
    node: int


class PoissonClock:
    """A single node's rate-``rate`` Poisson clock."""

    def __init__(self, node: int, rng: np.random.Generator, rate: float = 1.0):
        if rate <= 0:
            raise ValueError(f"clock rate must be positive, got {rate}")
        self.node = node
        self.rate = rate
        self._rng = rng
        self.now = 0.0

    def next_tick(self) -> Tick:
        """Advance to (and return) the next tick of this clock."""
        self.now += self._rng.exponential(1.0 / self.rate)
        return Tick(self.now, self.node)

    def ticks_until(self, horizon: float) -> Iterator[Tick]:
        """All ticks with time ≤ ``horizon``."""
        while True:
            tick = self.next_tick()
            if tick.time > horizon:
                # Rewind so the clock can continue past the horizon later.
                self.now = tick.time
                return
            yield tick


class GlobalClock:
    """The equivalent global rate-``n`` Poisson clock.

    Each tick advances global time by an Exp(n) increment and belongs to a
    uniformly random node.  This is the driver used by every asynchronous
    simulator in the library.
    """

    def __init__(self, n: int, rng: np.random.Generator, rate_per_node: float = 1.0):
        if n <= 0:
            raise ValueError(f"need a positive node count, got {n}")
        if rate_per_node <= 0:
            raise ValueError(f"clock rate must be positive, got {rate_per_node}")
        self.n = n
        self.rate = n * rate_per_node
        self._rng = rng
        self.now = 0.0
        self.tick_count = 0

    def next_tick(self) -> Tick:
        """Advance to the next global tick; returns its time and owner node."""
        self.now += self._rng.exponential(1.0 / self.rate)
        self.tick_count += 1
        return Tick(self.now, int(self._rng.integers(self.n)))

    def next_owner(self) -> int:
        """Just the owner of the next tick (when wall time is irrelevant).

        Most transmission-count experiments only need the sequence of
        activated nodes; skipping the exponential draw halves RNG cost.
        """
        self.tick_count += 1
        return int(self._rng.integers(self.n))


def merge_ticks(clocks: list[PoissonClock], horizon: float) -> list[Tick]:
    """Chronological merge of several per-node clocks up to ``horizon``.

    Provided to validate the paper's equivalence claim: the merged stream of
    ``n`` independent rate-1 clocks is statistically a rate-``n`` Poisson
    stream with uniformly random owners (verified in the test-suite).
    """
    heap: list[Tick] = []
    for clock in clocks:
        tick = clock.next_tick()
        if tick.time <= horizon:
            heappush(heap, tick)
    merged: list[Tick] = []
    while heap:
        tick = heappop(heap)
        merged.append(tick)
        following = clocks[_clock_index(clocks, tick.node)].next_tick()
        if following.time <= horizon:
            heappush(heap, following)
    return merged


def _clock_index(clocks: list[PoissonClock], node: int) -> int:
    for index, clock in enumerate(clocks):
        if clock.node == node:
            return index
    raise ValueError(f"no clock belongs to node {node}")
