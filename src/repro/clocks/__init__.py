"""The paper's asynchronous time model (Section 2).

Each sensor has an independent rate-1 Poisson clock; equivalently a single
global rate-``n`` Poisson clock whose ticks are assigned to nodes uniformly
at random.  :class:`~repro.clocks.poisson.GlobalClock` implements the global
view used by the simulators; :class:`~repro.clocks.poisson.PoissonClock` the
per-node view; :func:`~repro.clocks.poisson.merge_ticks` demonstrates (and
the tests verify) the equivalence between the two.
"""

from repro.clocks.poisson import GlobalClock, PoissonClock, Tick, merge_ticks

__all__ = ["GlobalClock", "PoissonClock", "Tick", "merge_ticks"]
