"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows without writing any code:

* ``run``      — one algorithm, one field, one graph; prints the outcome
  and an ASCII view of the field before/after.
* ``sweep``    — the scaling sweep (experiment E7) at chosen sizes.
* ``inspect``  — build and display the hierarchy for a placement.

``run`` and ``sweep`` execute through :mod:`repro.engine`: ``--check-stride``
selects the batched tick path (``1`` = the bit-identical legacy loop),
``--workers`` fans sweep grid cells across processes (identical results at
any worker count), and ``--store-dir``/``--resume`` persist finished cells
so an interrupted sweep continues instead of restarting.

Examples::

    python -m repro run --algorithm hierarchical --n 512 --epsilon 0.15
    python -m repro sweep --sizes 128,256,512 --epsilon 0.2 --trials 2
    python -m repro sweep --sizes 256,512,1024 --workers 4 --check-stride 8 \
        --store-dir results --resume
    python -m repro inspect --n 1024 --leaf-threshold 24
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.dynamics import FaultSpec
from repro.engine import ResultStore, build_faulted_algorithm, run_batched
from repro.experiments import (
    ALGORITHMS,
    ExperimentConfig,
    fault_incompatible,
    fit_loglog_slope,
    format_table,
    make_algorithm,
    run_scaling_sweep,
    spawn_rng,
)
from repro.graphs.generators import (
    build_topology,
    topology_names,
    topology_seed_tags,
)
from repro.graphs.rgg import RandomGeometricGraph
from repro.hierarchy.tree import HierarchyTree
from repro.metrics.error import primary_field
from repro.viz import render_field, render_hierarchy
from repro.workloads.fields import FIELD_GENERATORS, WORKLOADS, build_field_matrix

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (clean usage errors)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_multifield_flags(parser: argparse.ArgumentParser) -> None:
    """The multi-field flags shared by ``run`` and ``sweep``."""
    parser.add_argument(
        "--fields",
        type=_positive_int,
        default=1,
        help="number of stacked fields per node (1 = the scalar engine, "
        "bit for bit; k > 1 runs an (n, k) matrix through one gossip "
        "pass — see docs/workloads.md)",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        default="ensemble",
        help="stacking scheme for --fields > 1: independent 'ensemble' "
        "draws of --field, or 'quantile'/'histogram' indicator stacks "
        "over it",
    )


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """The fault-dynamics flags shared by ``run`` and ``sweep``."""
    parser.add_argument(
        "--faults",
        default="none",
        help="fault regime: a preset (none, lossy, churny, harsh) or a "
        "spec string like 'churn=0.02,loss=0.05,epoch=256' "
        "(see docs/dynamics.md)",
    )
    parser.add_argument(
        "--churn-rate",
        type=float,
        default=None,
        help="override the spec's per-epoch node crash probability",
    )
    parser.add_argument(
        "--loss-prob",
        type=float,
        default=None,
        help="override the spec's per-hop message-loss probability",
    )


def _fault_spec(args: argparse.Namespace) -> FaultSpec:
    """Compose --faults with the explicit override flags.

    Malformed specs exit with a clean usage error instead of a traceback.
    """
    import dataclasses

    try:
        spec = FaultSpec.parse(args.faults)
        if args.churn_rate is not None:
            spec = dataclasses.replace(spec, churn_rate=args.churn_rate)
        if args.loss_prob is not None:
            spec = dataclasses.replace(spec, loss_prob=args.loss_prob)
    except ValueError as error:
        _usage_error(str(error))
    return spec


def _usage_error(message: str) -> None:
    """Print a clean CLI error and exit 2 (no traceback)."""
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _reject_fault_incompatible(spec: FaultSpec, algorithms) -> None:
    """Exit cleanly when faults are combined with unsupported protocols."""
    if not spec.enabled:
        return
    try:
        unsupported = fault_incompatible(tuple(algorithms))
    except ValueError as error:
        _usage_error(str(error))
    if unsupported:
        _usage_error(
            f"fault dynamics ({spec.canonical()!r}) are not supported by "
            f"{unsupported} (round-based, or no radio model) — pick "
            "tick-driven protocols via --algorithm(s) or drop --faults"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Geographic gossip via affine combinations — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one instance")
    run.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="hierarchical",
    )
    run.add_argument("--n", type=int, default=512)
    run.add_argument("--epsilon", type=float, default=0.2)
    run.add_argument(
        "--topology",
        choices=topology_names(),
        default="rgg",
        help="graph family from the topology zoo (default: flat RGG)",
    )
    run.add_argument(
        "--field", choices=sorted(FIELD_GENERATORS), default="random"
    )
    run.add_argument("--seed", type=int, default=20070801)
    run.add_argument(
        "--show-field", action="store_true", help="ASCII field before/after"
    )
    run.add_argument(
        "--check-stride",
        type=_positive_int,
        default=1,
        help="engine error-check stride (1 = legacy bit-identical loop)",
    )
    _add_multifield_flags(run)
    _add_fault_flags(run)

    sweep = sub.add_parser("sweep", help="scaling sweep (experiment E7)")
    sweep.add_argument("--sizes", default="128,256,512")
    sweep.add_argument("--epsilon", type=float, default=0.2)
    sweep.add_argument("--trials", type=int, default=2)
    sweep.add_argument(
        "--topology",
        choices=topology_names(),
        default="rgg",
        help="graph family from the topology zoo (default: flat RGG)",
    )
    sweep.add_argument(
        "--field", choices=sorted(FIELD_GENERATORS), default="gradient"
    )
    sweep.add_argument("--seed", type=int, default=20070801)
    sweep.add_argument(
        "--algorithms", default="randomized,geographic,hierarchical"
    )
    sweep.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="parallel grid-cell workers (results identical at any count)",
    )
    sweep.add_argument(
        "--check-stride",
        type=_positive_int,
        default=1,
        help="engine error-check stride (1 = legacy bit-identical loop)",
    )
    sweep.add_argument(
        "--store-dir",
        default=None,
        help="persist finished cells under this directory (JSON lines)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="with --store-dir: reuse already-finished cells instead of "
        "starting fresh",
    )
    _add_multifield_flags(sweep)
    _add_fault_flags(sweep)

    inspect = sub.add_parser("inspect", help="build and display a hierarchy")
    inspect.add_argument("--n", type=int, default=1024)
    inspect.add_argument("--leaf-threshold", type=float, default=None)
    inspect.add_argument("--seed", type=int, default=20070801)
    return parser


def _command_run(args: argparse.Namespace) -> int:
    graph = build_topology(
        args.topology,
        args.n,
        spawn_rng(
            args.seed, "cli-graph", *topology_seed_tags(args.topology, args.n)
        ),
    )
    field_rng = spawn_rng(args.seed, "cli-field", args.field)
    if args.fields == 1:
        values = FIELD_GENERATORS[args.field](graph.positions, field_rng)
    else:
        values = build_field_matrix(
            args.workload, args.field, graph.positions, field_rng, args.fields
        )
    if args.show_field:
        print("initial field:")
        print(render_field(graph.positions, primary_field(values)))
    spec = _fault_spec(args)
    _reject_fault_incompatible(spec, [args.algorithm])
    if spec.enabled:
        # The engine's per-cell fault wiring, as trial 0: the run faces
        # the same fault *scenario* as sweep trial 0 at this seed (graph,
        # field, and run streams keep their own cli-* tags).
        algorithm = build_faulted_algorithm(
            args.algorithm, graph, spec, args.seed, args.n, 0
        )
    else:
        algorithm = make_algorithm(args.algorithm, graph)
    result = run_batched(
        algorithm,
        values,
        args.epsilon,
        spawn_rng(args.seed, "cli-run", args.algorithm),
        check_stride=args.check_stride,
    )
    field_rows = []
    if result.column_errors is not None:
        field_rows = [["fields", f"{args.fields} ({args.workload})"]] + [
            [f"  field {index} error", error]
            for index, error in enumerate(result.column_errors)
        ]
    fault_rows = []
    if spec.enabled:
        fault_rows = [["faults", spec.canonical()]] + [
            [f"  {metric}", value]
            for metric, value in sorted(
                algorithm.fault_metrics(
                    result.values, result.initial_values
                ).items()
            )
        ]
    print(
        format_table(
            ["metric", "value"],
            [
                ["algorithm", args.algorithm],
                ["topology", args.topology],
                ["n", args.n],
                ["converged", result.converged],
                ["final error", result.error],
                ["transmissions", result.total_transmissions],
                *[
                    [f"  {cat}", count]
                    for cat, count in sorted(result.transmissions.items())
                    if cat != "total"
                ],
                *field_rows,
                *fault_rows,
            ],
            title=f"run to ε={args.epsilon} on a '{args.field}' field",
        )
    )
    if args.show_field:
        print("\nfinal field:")
        print(render_field(graph.positions, primary_field(result.values)))
    return 0 if result.converged else 1


def _command_sweep(args: argparse.Namespace) -> int:
    sizes = tuple(int(s) for s in args.sizes.split(","))
    algorithms = tuple(a.strip() for a in args.algorithms.split(","))
    spec = _fault_spec(args)
    _reject_fault_incompatible(spec, algorithms)
    try:
        config = ExperimentConfig(
            sizes=sizes,
            epsilon=args.epsilon,
            trials=args.trials,
            field=args.field,
            root_seed=args.seed,
            algorithms=algorithms,
            topology=args.topology,
            faults=spec.canonical(),
            fields=args.fields,
            workload=args.workload,
        )
    except ValueError as error:
        _usage_error(str(error))
    store = None
    if args.store_dir is not None:
        store = ResultStore(args.store_dir, config, args.check_stride)
        already = len(store.load_records()) if args.resume else 0
        if not args.resume:
            store.reset()
        print(
            f"store: {store.directory}"
            + (f" (resuming past {already} finished cells)" if already else "")
        )
    elif args.resume:
        print("--resume requires --store-dir", file=sys.stderr)
        return 2
    sweep = run_scaling_sweep(
        config,
        workers=args.workers,
        check_stride=args.check_stride,
        store=store,
    )
    rows = []
    for n in sizes:
        row = [n]
        for name in algorithms:
            point = next(p for p in sweep[name] if p.n == n)
            row.append(int(point.transmissions_mean))
        rows.append(row)
    print(
        format_table(
            ["n", *algorithms],
            rows,
            title=(
                f"mean transmissions to ε={args.epsilon} on "
                f"'{args.topology}' ({args.trials} trials)"
                + (
                    f", {config.fields} '{config.workload}' fields"
                    if config.fields > 1
                    else ""
                )
                + (
                    f", faults '{config.faults}'"
                    if config.fault_spec().enabled
                    else ""
                )
            ),
        )
    )
    if len(sizes) >= 2:
        slopes = []
        for name in algorithms:
            points = sweep[name]
            slopes.append(
                [
                    name,
                    fit_loglog_slope(
                        np.array([p.n for p in points], dtype=float),
                        np.array([p.transmissions_mean for p in points]),
                    ),
                ]
            )
        print()
        print(format_table(["algorithm", "log-log slope"], slopes))
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    rng = spawn_rng(args.seed, "cli-inspect", args.n)
    graph = RandomGeometricGraph.sample_connected(args.n, rng)
    tree = HierarchyTree.build(
        graph.positions, leaf_threshold=args.leaf_threshold
    )
    print(
        format_table(
            ["depth", "squares", "E#", "min #", "mean #", "max #", "empty"],
            [
                [
                    r["depth"],
                    r["squares"],
                    r["expected"],
                    r["min"],
                    r["mean"],
                    r["max"],
                    r["empty"],
                ]
                for r in tree.occupancy_report()
            ],
            title=(
                f"hierarchy at n={args.n}: factors {tree.factors}, "
                f"ℓ={tree.levels}"
            ),
        )
    )
    print()
    print(render_hierarchy(tree))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "sweep": _command_sweep,
        "inspect": _command_inspect,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
