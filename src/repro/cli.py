"""Command-line interface: ``python -m repro <command>``.

Eleven commands cover the common workflows without writing any code:

* ``run``         — one algorithm, one field, one graph; prints the
  outcome and an ASCII view of the field before/after.
* ``sweep``       — the scaling sweep (experiment E7) at chosen sizes.
* ``serve-sweep`` — the same sweep, distributed: a coordinator enqueues
  cells on a file-backed lease queue and spawns crash-surviving worker
  processes (:mod:`repro.engine.service`); results are bit-identical to
  ``sweep`` at any worker count, even across worker kills.  With
  ``--daemon`` the session outlives its first grid: the fleet keeps
  serving until ``repro drain`` (or SIGTERM), accepting new grids from
  ``repro enqueue`` with priority classes (``p0`` drains before ``p1``
  before ``p2``) and bounded admission (``--max-pending``).
* ``work``        — one worker process; attaches to a queue directory
  and pulls cells until the queue drains — or, on a daemon queue, until
  drain is requested (``serve-sweep`` spawns these, but extra workers
  can be pointed at the same queue from other shells or hosts sharing
  the filesystem).
* ``enqueue``     — admit another sweep grid into a running daemon
  session, at a chosen ``--priority``; exits 3 (backpressure) when the
  queue's ``--max-pending`` bound would be exceeded, unless ``--block``.
* ``drain``       — flip a daemon session's drain marker: workers finish
  the backlog and exit, the coordinator merges and shuts down
  (``--wait`` blocks until the backlog is done).
* ``inspect``     — build and display the hierarchy for a placement.
* ``trace``       — one run under the structured event recorder; writes
  the JSONL trace and draws its convergence/fault timeline.
* ``profile``     — one run under the span profiler and metrics
  registry (:mod:`repro.observability`); prints the per-phase hotpath
  table and the counters the run moved — numbers identical to ``run``
  at the same flags.
* ``replay``      — re-derive a trace's numbers from its events alone
  (:mod:`repro.observability.replay`) and check them against the stored
  cell records when the trace lives under a sweep store; ``--workers``
  fans the traces across processes (identical output and summary).
* ``store-diff``  — compare two result-store roots record by record
  (canonical bytes, timing/telemetry excluded); exits 1 on any
  difference.  The distributed ≡ serial assertion as a shell command.

``run`` and ``sweep`` execute through :mod:`repro.engine`: ``--check-stride``
selects the batched tick path (``1`` = the bit-identical legacy loop),
``--workers`` fans sweep grid cells across processes (identical results at
any worker count), and ``--store-dir``/``--resume`` persist finished cells
so an interrupted sweep continues instead of restarting.  ``sweep
--trace`` additionally writes each fresh cell's event stream under
``<store>/traces/`` (requires ``--store-dir``), and ``sweep
--trial-batch`` advances all trials of each ``(algorithm, n)`` slice in
one tensorized kernel pass (:mod:`repro.engine.tensor`) with identical
results and store keys.

Examples::

    python -m repro run --algorithm hierarchical --n 512 --epsilon 0.15
    python -m repro sweep --sizes 128,256,512 --epsilon 0.2 --trials 2
    python -m repro sweep --sizes 256,512,1024 --workers 4 --check-stride 8 \
        --store-dir results --resume
    python -m repro inspect --n 1024 --leaf-threshold 24
    python -m repro trace --algorithm geographic --n 256 --out run.jsonl
    python -m repro replay run.jsonl
    python -m repro sweep --sizes 128,256 --store-dir results --trace
    python -m repro replay results
    python -m repro serve-sweep --sizes 128,256 --workers 3 \
        --store-dir results --resume --metrics-port 9100
    python -m repro serve-sweep --sizes 128,256 --store-dir results \
        --daemon --max-pending 64 --metrics-port 9100
    python -m repro enqueue --queue-dir results/_service_queue \
        --sizes 512 --algorithms hierarchical --priority 0
    python -m repro drain --queue-dir results/_service_queue --wait
    python -m repro profile --algorithm geographic --n 512
    python -m repro store-diff results other-results
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from pathlib import Path

from repro.dynamics import FaultSpec
from repro.engine import ResultStore, build_faulted_algorithm, run_batched
from repro.engine.executor import CellRecord, cell_traceable
from repro.experiments import (
    ALGORITHMS,
    ExperimentConfig,
    fault_incompatible,
    fit_loglog_slope,
    format_table,
    make_algorithm,
    run_scaling_sweep,
    spawn_rng,
)
from repro.graphs.generators import (
    build_topology,
    topology_names,
    topology_seed_tags,
)
from repro.graphs.rgg import RandomGeometricGraph
from repro.hierarchy.tree import HierarchyTree
from repro.metrics.error import primary_field
from repro.observability import ReplayError, events, replay_events, validate_record
from repro.viz import render_field, render_hierarchy, render_timeline
from repro.workloads.fields import FIELD_GENERATORS, WORKLOADS, build_field_matrix

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (clean usage errors)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_multifield_flags(parser: argparse.ArgumentParser) -> None:
    """The multi-field flags shared by ``run`` and ``sweep``."""
    parser.add_argument(
        "--fields",
        type=_positive_int,
        default=1,
        help="number of stacked fields per node (1 = the scalar engine, "
        "bit for bit; k > 1 runs an (n, k) matrix through one gossip "
        "pass — see docs/workloads.md)",
    )
    parser.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        default="ensemble",
        help="stacking scheme for --fields > 1: independent 'ensemble' "
        "draws of --field, or 'quantile'/'histogram' indicator stacks "
        "over it",
    )


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """The fault-dynamics flags shared by ``run`` and ``sweep``."""
    parser.add_argument(
        "--faults",
        default="none",
        help="fault regime: a preset (none, lossy, churny, harsh) or a "
        "spec string like 'churn=0.02,loss=0.05,epoch=256' "
        "(see docs/dynamics.md)",
    )
    parser.add_argument(
        "--churn-rate",
        type=float,
        default=None,
        help="override the spec's per-epoch node crash probability",
    )
    parser.add_argument(
        "--loss-prob",
        type=float,
        default=None,
        help="override the spec's per-hop message-loss probability",
    )


def _fault_spec(args: argparse.Namespace) -> FaultSpec:
    """Compose --faults with the explicit override flags.

    Malformed specs exit with a clean usage error instead of a traceback.
    """
    import dataclasses

    try:
        spec = FaultSpec.parse(args.faults)
        if args.churn_rate is not None:
            spec = dataclasses.replace(spec, churn_rate=args.churn_rate)
        if args.loss_prob is not None:
            spec = dataclasses.replace(spec, loss_prob=args.loss_prob)
    except ValueError as error:
        _usage_error(str(error))
    return spec


def _usage_error(message: str) -> None:
    """Print a clean CLI error and exit 2 (no traceback)."""
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _reject_fault_incompatible(spec: FaultSpec, algorithms) -> None:
    """Exit cleanly when faults are combined with unsupported protocols."""
    if not spec.enabled:
        return
    try:
        unsupported = fault_incompatible(tuple(algorithms))
    except ValueError as error:
        _usage_error(str(error))
    if unsupported:
        _usage_error(
            f"fault dynamics ({spec.canonical()!r}) are not supported by "
            f"{unsupported} (round-based, or no radio model) — pick "
            "tick-driven protocols via --algorithm(s) or drop --faults"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Geographic gossip via affine combinations — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one instance")
    run.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="hierarchical",
    )
    run.add_argument("--n", type=int, default=512)
    run.add_argument("--epsilon", type=float, default=0.2)
    run.add_argument(
        "--topology",
        choices=topology_names(),
        default="rgg",
        help="graph family from the topology zoo (default: flat RGG)",
    )
    run.add_argument(
        "--field", choices=sorted(FIELD_GENERATORS), default="random"
    )
    run.add_argument("--seed", type=int, default=20070801)
    run.add_argument(
        "--show-field", action="store_true", help="ASCII field before/after"
    )
    run.add_argument(
        "--check-stride",
        type=_positive_int,
        default=1,
        help="engine error-check stride (1 = legacy bit-identical loop)",
    )
    _add_multifield_flags(run)
    _add_fault_flags(run)

    def _add_sweep_grid_flags(parser: argparse.ArgumentParser) -> None:
        """The sweep-grid flags ``sweep`` and ``serve-sweep`` share, so a
        distributed session accepts exactly the serial sweep's config."""
        parser.add_argument("--sizes", default="128,256,512")
        parser.add_argument("--epsilon", type=float, default=0.2)
        parser.add_argument("--trials", type=int, default=2)
        parser.add_argument(
            "--topology",
            choices=topology_names(),
            default="rgg",
            help="graph family from the topology zoo (default: flat RGG)",
        )
        parser.add_argument(
            "--field", choices=sorted(FIELD_GENERATORS), default="gradient"
        )
        parser.add_argument("--seed", type=int, default=20070801)
        parser.add_argument(
            "--algorithms", default="randomized,geographic,hierarchical"
        )
        parser.add_argument(
            "--check-stride",
            type=_positive_int,
            default=1,
            help="engine error-check stride (1 = legacy bit-identical loop)",
        )
        _add_multifield_flags(parser)
        _add_fault_flags(parser)

    sweep = sub.add_parser("sweep", help="scaling sweep (experiment E7)")
    _add_sweep_grid_flags(sweep)
    sweep.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="parallel grid-cell workers (results identical at any count)",
    )
    sweep.add_argument(
        "--store-dir",
        default=None,
        help="persist finished cells under this directory (JSON lines)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="with --store-dir: reuse already-finished cells instead of "
        "starting fresh",
    )
    sweep.add_argument(
        "--trace",
        action="store_true",
        help="with --store-dir: write each fresh cell's structured event "
        "stream under <store>/traces/ (validate with 'repro replay')",
    )
    sweep.add_argument(
        "--trial-batch",
        action="store_true",
        help="advance all trials of each (algorithm, n) slice in one "
        "tensorized kernel pass where eligible (same results and store "
        "keys; ineligible cells fall back per-cell with a warning)",
    )

    serve = sub.add_parser(
        "serve-sweep",
        help="the scaling sweep, distributed across crash-surviving worker "
        "processes via a file-backed lease queue (bit-identical to 'sweep')",
    )
    _add_sweep_grid_flags(serve)
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="worker processes to spawn (results identical at any count)",
    )
    serve.add_argument(
        "--store-dir",
        required=True,
        help="the canonical result store the shards merge into",
    )
    serve.add_argument(
        "--queue-dir",
        default=None,
        help="lease queue + per-worker shard directory (default: "
        "<store-dir>/_service_queue)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="reuse already-finished cells (including shards a crashed "
        "session left in the queue dir) instead of starting fresh",
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=10.0,
        help="seconds without a heartbeat before a lease counts as stale "
        "and may be reclaimed",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between a worker's heartbeats on its held lease",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="idle-poll interval for workers and the coordinator",
    )
    serve.add_argument(
        "--worker-throttle",
        type=float,
        default=0.0,
        help="chaos/testing knob: each worker sleeps this many seconds "
        "inside every leased window before executing (numbers unaffected)",
    )
    serve.add_argument(
        "--chaos-kill-after",
        type=float,
        default=None,
        help="chaos/testing knob: SIGKILL one live worker this many "
        "seconds into the session and let reclamation recover it",
    )
    serve.add_argument(
        "--max-respawns",
        type=_positive_int,
        default=None,
        help="replacement workers to spawn when the whole fleet has died "
        "with cells unfinished (default: --workers)",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="write each cell's structured event stream under the shard "
        "stores; merged into <store>/<key>/traces/ "
        "(validate with 'repro replay')",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve live GET /metrics (Prometheus text exposition) and "
        "GET /healthz from the coordinator on this loopback port while "
        "the sweep runs (0 = pick an ephemeral port; printed at startup)",
    )
    serve.add_argument(
        "--daemon",
        action="store_true",
        help="long-lived mode: keep the fleet serving after this grid "
        "drains, accepting further grids from 'repro enqueue' until "
        "'repro drain' or SIGTERM",
    )
    serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        help="daemon admission bound: refuse enqueues that would push "
        "the unfinished backlog past this many cells ('repro enqueue' "
        "exits 3)",
    )
    serve.add_argument(
        "--priority",
        type=int,
        choices=(0, 1, 2),
        default=1,
        help="daemon priority class for this first grid (p0 drains "
        "before p1 before p2)",
    )

    work = sub.add_parser(
        "work",
        help="one sweep-service worker: attach to a queue directory and "
        "pull cells until the queue drains — or, on a daemon queue, "
        "until drain is requested ('serve-sweep' spawns these)",
    )
    work.add_argument(
        "--queue-dir",
        required=True,
        help="the lease queue a 'serve-sweep' session created",
    )
    work.add_argument(
        "--worker-id",
        default=None,
        help="shard / lease-owner identity (default: pid-based; must be "
        "unique per live worker on the queue)",
    )
    work.add_argument("--heartbeat-interval", type=float, default=1.0)
    work.add_argument("--poll-interval", type=float, default=0.2)
    work.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        help="chaos/testing knob: sleep this many seconds inside each "
        "leased window before executing",
    )

    enqueue = sub.add_parser(
        "enqueue",
        help="admit another sweep grid into a running daemon session "
        "('serve-sweep --daemon'); exits 3 when --max-pending would be "
        "exceeded (backpressure)",
    )
    enqueue.add_argument(
        "--queue-dir",
        required=True,
        help="the daemon session's lease queue",
    )
    _add_sweep_grid_flags(enqueue)
    enqueue.add_argument(
        "--priority",
        type=int,
        choices=(0, 1, 2),
        default=1,
        help="priority class (p0 drains before p1 before p2)",
    )
    enqueue.add_argument(
        "--trace",
        action="store_true",
        help="write each cell's structured event stream under the shard "
        "stores (merged into the grid's canonical traces/)",
    )
    enqueue.add_argument(
        "--store-dir",
        default=None,
        help="override the canonical store root (default: the one the "
        "daemon recorded in its queue manifest)",
    )
    enqueue.add_argument(
        "--block",
        action="store_true",
        help="instead of exiting 3 on backpressure, wait for the backlog "
        "to drain below --max-pending and then enqueue",
    )

    drain = sub.add_parser(
        "drain",
        help="ask a daemon session to finish its backlog and shut down "
        "(workers exit once drained; the coordinator merges and stops)",
    )
    drain.add_argument(
        "--queue-dir",
        required=True,
        help="the daemon session's lease queue",
    )
    drain.add_argument(
        "--wait",
        action="store_true",
        help="block until the backlog is fully drained",
    )
    drain.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="with --wait: seconds between drain checks",
    )

    inspect = sub.add_parser("inspect", help="build and display a hierarchy")
    inspect.add_argument("--n", type=int, default=1024)
    inspect.add_argument("--leaf-threshold", type=float, default=None)
    inspect.add_argument("--seed", type=int, default=20070801)

    trace = sub.add_parser(
        "trace",
        help="run one algorithm under the event recorder; write the JSONL "
        "trace and draw its timeline",
    )
    trace.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="randomized",
        help="tick-driven protocols only (round-based runs suspend the "
        "recorder)",
    )
    trace.add_argument("--n", type=int, default=256)
    trace.add_argument("--epsilon", type=float, default=0.2)
    trace.add_argument(
        "--topology",
        choices=topology_names(),
        default="rgg",
        help="graph family from the topology zoo (default: flat RGG)",
    )
    trace.add_argument(
        "--field", choices=sorted(FIELD_GENERATORS), default="random"
    )
    trace.add_argument("--seed", type=int, default=20070801)
    trace.add_argument(
        "--check-stride",
        type=_positive_int,
        default=1,
        help="engine error-check stride (1 = legacy bit-identical loop)",
    )
    trace.add_argument(
        "--out",
        default="trace.jsonl",
        help="where to write the JSONL event stream",
    )
    _add_multifield_flags(trace)
    _add_fault_flags(trace)

    profile = sub.add_parser(
        "profile",
        help="run one algorithm under the span profiler + metrics "
        "registry and print the per-phase hotpath table (numbers "
        "identical to 'run' at the same flags)",
    )
    profile.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="geographic",
    )
    profile.add_argument("--n", type=int, default=512)
    profile.add_argument("--epsilon", type=float, default=0.2)
    profile.add_argument(
        "--topology",
        choices=topology_names(),
        default="rgg",
        help="graph family from the topology zoo (default: flat RGG)",
    )
    profile.add_argument(
        "--field", choices=sorted(FIELD_GENERATORS), default="random"
    )
    profile.add_argument("--seed", type=int, default=20070801)
    profile.add_argument(
        "--check-stride",
        type=_positive_int,
        default=4,
        help="engine error-check stride (default 4: stride 1 delegates "
        "to the uninstrumented legacy loop, which records no engine "
        "spans)",
    )
    _add_multifield_flags(profile)
    _add_fault_flags(profile)

    replay = sub.add_parser(
        "replay",
        help="re-derive a trace's numbers from its events and cross-check "
        "them (bitwise) against what it recorded",
    )
    replay.add_argument(
        "path",
        help="a .jsonl trace file, a directory of traces, or a sweep "
        "store root (every **/traces/*.jsonl is validated against its "
        "stored cell record)",
    )
    replay.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="replay traces across this many processes (output lines "
        "stay in input order; the summary is identical at any count)",
    )

    diff = sub.add_parser(
        "store-diff",
        help="compare two result-store roots record by record (canonical "
        "bytes; timing/telemetry excluded) — exit 1 on any difference",
    )
    diff.add_argument("left", help="first store root")
    diff.add_argument("right", help="second store root")
    return parser


def _build_run_instance(args: argparse.Namespace):
    """Graph, field, fault spec, and algorithm for one CLI run.

    The one instance-building path ``run`` and ``trace`` share, so a
    traced run reproduces the plain run at the same flags bit for bit.
    """
    graph = build_topology(
        args.topology,
        args.n,
        spawn_rng(
            args.seed, "cli-graph", *topology_seed_tags(args.topology, args.n)
        ),
    )
    field_rng = spawn_rng(args.seed, "cli-field", args.field)
    if args.fields == 1:
        values = FIELD_GENERATORS[args.field](graph.positions, field_rng)
    else:
        values = build_field_matrix(
            args.workload, args.field, graph.positions, field_rng, args.fields
        )
    spec = _fault_spec(args)
    _reject_fault_incompatible(spec, [args.algorithm])
    if spec.enabled:
        # The engine's per-cell fault wiring, as trial 0: the run faces
        # the same fault *scenario* as sweep trial 0 at this seed (graph,
        # field, and run streams keep their own cli-* tags).
        algorithm = build_faulted_algorithm(
            args.algorithm, graph, spec, args.seed, args.n, 0
        )
    else:
        algorithm = make_algorithm(args.algorithm, graph)
    return graph, values, spec, algorithm


def _command_run(args: argparse.Namespace) -> int:
    graph, values, spec, algorithm = _build_run_instance(args)
    if args.show_field:
        print("initial field:")
        print(render_field(graph.positions, primary_field(values)))
    result = run_batched(
        algorithm,
        values,
        args.epsilon,
        spawn_rng(args.seed, "cli-run", args.algorithm),
        check_stride=args.check_stride,
    )
    field_rows = []
    if result.column_errors is not None:
        field_rows = [["fields", f"{args.fields} ({args.workload})"]] + [
            [f"  field {index} error", error]
            for index, error in enumerate(result.column_errors)
        ]
    fault_rows = []
    if spec.enabled:
        fault_rows = [["faults", spec.canonical()]] + [
            [f"  {metric}", value]
            for metric, value in sorted(
                algorithm.fault_metrics(
                    result.values, result.initial_values
                ).items()
            )
        ]
    print(
        format_table(
            ["metric", "value"],
            [
                ["algorithm", args.algorithm],
                ["topology", args.topology],
                ["n", args.n],
                ["converged", result.converged],
                ["final error", result.error],
                ["transmissions", result.total_transmissions],
                *[
                    [f"  {cat}", count]
                    for cat, count in sorted(result.transmissions.items())
                    if cat != "total"
                ],
                *field_rows,
                *fault_rows,
            ],
            title=f"run to ε={args.epsilon} on a '{args.field}' field",
        )
    )
    if args.show_field:
        print("\nfinal field:")
        print(render_field(graph.positions, primary_field(result.values)))
    return 0 if result.converged else 1


def _command_trace(args: argparse.Namespace) -> int:
    graph, values, spec, algorithm = _build_run_instance(args)
    if not cell_traceable(algorithm, values):
        _usage_error(
            f"'{args.algorithm}' does not emit a coherent trace at these "
            "flags (round-based protocols and per-column multi-field "
            "fallbacks run nested runs, which suspend the recorder) — "
            "pick a tick-driven protocol, or drop --fields"
        )
    with events.capture() as recorder:
        result = run_batched(
            algorithm,
            values,
            args.epsilon,
            spawn_rng(args.seed, "cli-run", args.algorithm),
            check_stride=args.check_stride,
        )
    path = recorder.write(args.out)
    print(
        format_table(
            ["metric", "value"],
            [
                ["algorithm", args.algorithm],
                ["n", args.n],
                ["converged", result.converged],
                ["final error", result.error],
                ["transmissions", result.total_transmissions],
                ["ticks", result.ticks],
                ["trace events", len(recorder)],
                ["trace file", str(path)],
            ],
            title=f"traced run to ε={args.epsilon}",
        )
    )
    print()
    print(render_timeline(recorder.events))
    return 0 if result.converged else 1


def _command_profile(args: argparse.Namespace) -> int:
    from repro.observability import metrics, profile

    with metrics.expose() as registry, profile.capture() as profiler:
        # Built inside the exposed scope so construction-time collectors
        # (the route cache's) register; building consumes the same RNG
        # either way, so the numbers still match a plain 'run'.
        with profile.span("build"):
            graph, values, spec, algorithm = _build_run_instance(args)
        with profile.span("run"):
            result = run_batched(
                algorithm,
                values,
                args.epsilon,
                spawn_rng(args.seed, "cli-run", args.algorithm),
                check_stride=args.check_stride,
            )
    print(
        format_table(
            ["metric", "value"],
            [
                ["algorithm", args.algorithm],
                ["topology", args.topology],
                ["n", args.n],
                ["converged", result.converged],
                ["final error", result.error],
                ["transmissions", result.total_transmissions],
                ["ticks", result.ticks],
            ],
            title=f"profiled run to ε={args.epsilon}",
        )
    )
    print("\nhotpath table (wall clock by span):")
    print(profiler.render_table())
    counters = registry.counter_totals()
    if counters:
        width = max(len(series) for series in counters)
        print("\ncounters:")
        for series, value in sorted(counters.items()):
            print(f"  {series.ljust(width)}  {value:g}")
    return 0 if result.converged else 1


def _trace_files(target: Path) -> list[Path]:
    """The trace files a ``repro replay`` target names.

    A ``.jsonl`` file replays alone; a directory holding traces replays
    each of them; any other directory is treated as a sweep store root
    and searched for ``**/traces/*.jsonl``.
    """
    if target.is_file():
        return [target]
    if target.is_dir():
        direct = sorted(target.glob("*.jsonl"))
        if direct:
            return direct
        return sorted(target.glob("**/traces/*.jsonl"))
    return []


def _trace_cell_record(trace: Path, start: dict) -> "CellRecord | None":
    """The stored cell a sweep trace belongs to, when it can be found.

    Sweep traces carry their ``(algorithm, n, trial)`` key in the start
    event and live in ``<store cell dir>/traces/``, next to the
    ``cells.jsonl`` their record was appended to.  Ad-hoc traces (``repro
    trace``) carry no cell key and validate only internally.
    """
    cell = start.get("cell")
    if not isinstance(cell, dict):
        return None
    records_path = trace.parent.parent / "cells.jsonl"
    if not records_path.exists():
        return None
    try:
        key = (str(cell["algorithm"]), int(cell["n"]), int(cell["trial"]))
    except (KeyError, TypeError, ValueError):
        return None
    for line in records_path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = CellRecord.from_dict(json.loads(line))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            continue
        if record.key == key:
            return record
    return None


def _replay_one(trace_path: str) -> "tuple[bool, str]":
    """Replay one trace file; returns ``(ok, report line)``.

    Module-level and picklable, so ``repro replay --workers N`` can fan
    traces across a process pool; each trace's validation is
    self-contained, which is what makes the fan-out safe.
    """
    trace = Path(trace_path)
    try:
        trace_events = events.load_trace(trace)
        replay = replay_events(trace_events)
        start = trace_events[0] if trace_events else {}
        record = _trace_cell_record(trace, start)
        if record is not None:
            validate_record(replay, record)
    except (ReplayError, ValueError) as error:
        return False, f"FAIL {trace}: {error}"
    against = "trace + cell record" if record is not None else "trace"
    return True, (
        f"ok   {trace}: {replay.algorithm} n={replay.n} "
        f"k={replay.fields} — {replay.transmissions['total']} tx, "
        f"{replay.checks} checks replayed bitwise ({against})"
    )


def _command_replay(args: argparse.Namespace) -> int:
    target = Path(args.path)
    traces = _trace_files(target)
    if not traces:
        _usage_error(
            f"{target}: no trace found (expected a .jsonl file, a traces "
            "directory, or a sweep store root)"
        )
    paths = [str(trace) for trace in traces]
    workers = min(args.workers, len(paths))
    pool = None
    if workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=workers)
        outcomes = pool.map(_replay_one, paths)
    else:
        outcomes = map(_replay_one, paths)
    failures = 0
    try:
        # ``map`` yields in input order for both paths, so the report —
        # and the summary line below — is byte-identical at any worker
        # count.
        for ok, line in outcomes:
            if not ok:
                failures += 1
            print(line, flush=True)
    finally:
        if pool is not None:
            pool.shutdown()
    print(
        f"\n{len(traces) - failures}/{len(traces)} traces replayed "
        "and validated" + (f", {failures} FAILED" if failures else "")
    )
    return 1 if failures else 0


def _sweep_config(args: argparse.Namespace) -> ExperimentConfig:
    """The ExperimentConfig a sweep-grid flag set names (usage errors
    exit cleanly).  ``sweep`` and ``serve-sweep`` share this, which is
    what makes their stores interchangeable."""
    sizes = tuple(int(s) for s in args.sizes.split(","))
    algorithms = tuple(a.strip() for a in args.algorithms.split(","))
    spec = _fault_spec(args)
    _reject_fault_incompatible(spec, algorithms)
    try:
        return ExperimentConfig(
            sizes=sizes,
            epsilon=args.epsilon,
            trials=args.trials,
            field=args.field,
            root_seed=args.seed,
            algorithms=algorithms,
            topology=args.topology,
            faults=spec.canonical(),
            fields=args.fields,
            workload=args.workload,
        )
    except ValueError as error:
        _usage_error(str(error))


def _print_sweep_tables(
    args: argparse.Namespace, config: ExperimentConfig, sweep
) -> None:
    """The sweep summary tables ``sweep`` and ``serve-sweep`` both print."""
    sizes = config.sizes
    algorithms = config.algorithms
    rows = []
    for n in sizes:
        row = [n]
        for name in algorithms:
            point = next(p for p in sweep[name] if p.n == n)
            row.append(int(point.transmissions_mean))
        rows.append(row)
    print(
        format_table(
            ["n", *algorithms],
            rows,
            title=(
                f"mean transmissions to ε={args.epsilon} on "
                f"'{args.topology}' ({args.trials} trials)"
                + (
                    f", {config.fields} '{config.workload}' fields"
                    if config.fields > 1
                    else ""
                )
                + (
                    f", faults '{config.faults}'"
                    if config.fault_spec().enabled
                    else ""
                )
            ),
        )
    )
    if len(sizes) >= 2:
        slopes = []
        for name in algorithms:
            points = sweep[name]
            slopes.append(
                [
                    name,
                    fit_loglog_slope(
                        np.array([p.n for p in points], dtype=float),
                        np.array([p.transmissions_mean for p in points]),
                    ),
                ]
            )
        print()
        print(format_table(["algorithm", "log-log slope"], slopes))
    if any(p.wall_clock_mean is not None for ps in sweep.values() for p in ps):
        timing_rows = []
        for n in sizes:
            row = [n]
            for name in algorithms:
                point = next(p for p in sweep[name] if p.n == n)
                clock = point.wall_clock_mean
                row.append("—" if clock is None else f"{clock * 1e3:,.1f}")
            timing_rows.append(row)
        print()
        print(
            format_table(
                ["n", *algorithms],
                timing_rows,
                title="mean wall clock per cell (ms)",
            )
        )


def _command_sweep(args: argparse.Namespace) -> int:
    config = _sweep_config(args)
    store = None
    if args.store_dir is not None:
        store = ResultStore(args.store_dir, config, args.check_stride)
        already = len(store.load_records()) if args.resume else 0
        if not args.resume:
            store.reset()
        print(
            f"store: {store.directory}"
            + (f" (resuming past {already} finished cells)" if already else "")
        )
    elif args.resume:
        print("--resume requires --store-dir", file=sys.stderr)
        return 2
    if args.trace and store is None:
        print("--trace requires --store-dir", file=sys.stderr)
        return 2
    sweep = run_scaling_sweep(
        config,
        workers=args.workers,
        check_stride=args.check_stride,
        store=store,
        trace=args.trace,
        trial_batch=args.trial_batch,
    )
    _print_sweep_tables(args, config, sweep)
    if args.trace and store is not None:
        traces = sorted((store.directory / "traces").glob("*.jsonl"))
        print(
            f"\ntraces: {len(traces)} JSONL event streams under "
            f"{store.directory / 'traces'} "
            f"(validate with: python -m repro replay {store.directory})"
        )
    return 0


def _command_serve_sweep(args: argparse.Namespace) -> int:
    import shutil

    from repro.engine.service import run_distributed_sweep
    from repro.experiments.report import sweep_from_store

    config = _sweep_config(args)
    store = ResultStore(args.store_dir, config, args.check_stride)
    queue_dir = (
        Path(args.queue_dir)
        if args.queue_dir is not None
        else Path(args.store_dir) / "_service_queue"
    )
    if not args.resume:
        store.reset()
        if queue_dir.exists():
            shutil.rmtree(queue_dir)
    already = len(store.load_records()) if args.resume else 0
    print(
        f"store: {store.directory}"
        + (f" (resuming past {already} finished cells)" if already else "")
    )
    print(f"queue: {queue_dir} ({args.workers} workers, ttl {args.ttl}s)")

    def _progress(stats) -> None:
        print(
            f"  {stats.done}/{stats.total} cells done, "
            f"{stats.leased} leased, {stats.reclamations} reclamations",
            flush=True,
        )

    def _metrics_url(url: str) -> None:
        print(f"metrics: {url}/metrics  (health: {url}/healthz)", flush=True)

    if args.daemon:
        return _serve_sweep_daemon(
            args, config, queue_dir, _progress, _metrics_url
        )
    try:
        run_distributed_sweep(
            config,
            store=store,
            queue_dir=queue_dir,
            workers=args.workers,
            check_stride=args.check_stride,
            ttl=args.ttl,
            heartbeat_interval=args.heartbeat_interval,
            poll_interval=args.poll_interval,
            worker_throttle=args.worker_throttle,
            trace=args.trace,
            chaos_kill_after=args.chaos_kill_after,
            max_respawns=args.max_respawns,
            on_progress=_progress,
            metrics_port=args.metrics_port,
            on_metrics_url=_metrics_url,
        )
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _print_sweep_tables(args, config, sweep_from_store(store))
    print(
        f"\nmerged store: {store.directory}  "
        f"(partial report + telemetry under {queue_dir})"
    )
    if args.trace:
        print(f"validate traces with: python -m repro replay {store.root}")
    return 0


def _serve_sweep_daemon(
    args: argparse.Namespace,
    config,
    queue_dir: Path,
    on_progress,
    on_metrics_url,
) -> int:
    from repro.engine.service import run_sweep_daemon

    print(
        "daemon: accepting further grids via 'repro enqueue "
        f"--queue-dir {queue_dir}'; stop with 'repro drain "
        f"--queue-dir {queue_dir}' or SIGTERM"
    )
    try:
        results = run_sweep_daemon(
            args.store_dir,
            queue_dir=queue_dir,
            workers=args.workers,
            ttl=args.ttl,
            heartbeat_interval=args.heartbeat_interval,
            poll_interval=args.poll_interval,
            worker_throttle=args.worker_throttle,
            max_pending=args.max_pending,
            max_respawns=args.max_respawns,
            chaos_kill_after=args.chaos_kill_after,
            metrics_port=args.metrics_port,
            on_metrics_url=on_metrics_url,
            on_progress=on_progress,
            initial_grids=[
                (config, args.check_stride, args.trace, args.priority)
            ],
            handle_signals=True,
        )
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"\ndrained {len(results)} grid(s):")
    for key in sorted(results):
        print(f"  {key}: {len(results[key])} cells -> "
              f"{Path(args.store_dir) / key}")
    print(f"(partial report + telemetry under {queue_dir})")
    return 0


def _command_work(args: argparse.Namespace) -> int:
    import os

    from repro.engine.service import run_worker

    worker_id = (
        args.worker_id if args.worker_id is not None else f"pid{os.getpid()}"
    )
    try:
        completed = run_worker(
            args.queue_dir,
            worker_id,
            heartbeat_interval=args.heartbeat_interval,
            poll_interval=args.poll_interval,
            throttle=args.throttle,
        )
    except FileNotFoundError as error:
        _usage_error(str(error))
    print(f"worker {worker_id}: {completed} cells completed, queue drained")
    return 0


def _command_enqueue(args: argparse.Namespace) -> int:
    from repro.engine.queue import QueueFull
    from repro.engine.service import enqueue_grid

    config = _sweep_config(args)
    try:
        report = enqueue_grid(
            args.queue_dir,
            config,
            check_stride=args.check_stride,
            trace=args.trace,
            priority=args.priority,
            store_root=args.store_dir,
            block=args.block,
        )
    except QueueFull as error:
        print(f"backpressure: {error}", file=sys.stderr)
        return 3
    except (FileNotFoundError, ValueError) as error:
        _usage_error(str(error))
    print(
        f"grid {report['grid']} at p{report['priority']}: "
        f"{report['enqueued']} cells enqueued, {report['skipped']} already "
        f"finished ({report['pending_depth']} pending overall)"
    )
    return 0


def _command_drain(args: argparse.Namespace) -> int:
    import time

    from repro.engine.queue import LeaseQueue

    try:
        queue = LeaseQueue.open(args.queue_dir)
    except (FileNotFoundError, ValueError) as error:
        _usage_error(str(error))
    queue.request_drain()
    print(f"drain requested on {queue.root}")
    if args.wait:
        while not queue.drained():
            time.sleep(args.poll_interval)
        stats = queue.stats()
        print(f"drained: {stats.done} cells done")
    return 0


def _command_store_diff(args: argparse.Namespace) -> int:
    from repro.engine.service import diff_stores

    for side in (args.left, args.right):
        if not Path(side).is_dir():
            _usage_error(f"{side}: not a store root (directory not found)")
    differences = diff_stores(args.left, args.right)
    for line in differences:
        print(line)
    if differences:
        print(f"\n{len(differences)} difference(s)")
        return 1
    print(f"stores identical: {args.left} == {args.right}")
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    rng = spawn_rng(args.seed, "cli-inspect", args.n)
    graph = RandomGeometricGraph.sample_connected(args.n, rng)
    tree = HierarchyTree.build(
        graph.positions, leaf_threshold=args.leaf_threshold
    )
    print(
        format_table(
            ["depth", "squares", "E#", "min #", "mean #", "max #", "empty"],
            [
                [
                    r["depth"],
                    r["squares"],
                    r["expected"],
                    r["min"],
                    r["mean"],
                    r["max"],
                    r["empty"],
                ]
                for r in tree.occupancy_report()
            ],
            title=(
                f"hierarchy at n={args.n}: factors {tree.factors}, "
                f"ℓ={tree.levels}"
            ),
        )
    )
    print()
    print(render_hierarchy(tree))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "sweep": _command_sweep,
        "serve-sweep": _command_serve_sweep,
        "work": _command_work,
        "enqueue": _command_enqueue,
        "drain": _command_drain,
        "inspect": _command_inspect,
        "trace": _command_trace,
        "profile": _command_profile,
        "replay": _command_replay,
        "store-diff": _command_store_diff,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
