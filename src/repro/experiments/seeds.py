"""Deterministic seed derivation.

Experiments need many independent RNG streams (per algorithm, per trial,
per n) that are stable across runs and machines.  Seeds derive from a root
seed plus a string tag via ``numpy``'s SeedSequence entropy spawning.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng"]


def derive_seed(root_seed: int, *tags: object) -> int:
    """A stable 32-bit seed from a root seed and any hashable tags.

    Tags are rendered to text and CRC-mixed, so
    ``derive_seed(7, "boyd", 1024, 3)`` is reproducible everywhere.
    """
    if root_seed < 0:
        raise ValueError(f"root seed must be non-negative, got {root_seed}")
    text = ":".join([str(root_seed)] + [repr(tag) for tag in tags])
    return zlib.crc32(text.encode("utf-8"))


def spawn_rng(root_seed: int, *tags: object) -> np.random.Generator:
    """A fresh :class:`numpy.random.Generator` for the given tag path."""
    return np.random.default_rng(derive_seed(root_seed, *tags))
