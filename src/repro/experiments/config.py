"""Experiment configuration and the algorithm registry.

``ALGORITHMS`` maps the three contenders of the paper's story to factory
functions ``graph -> algorithm``; the registry keeps benchmark code free of
constructor details and makes "run all three on the same graph and field"
one loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.gossip.geographic import GeographicGossip
from repro.gossip.hierarchical.rounds import HierarchicalGossip
from repro.gossip.randomized import RandomizedGossip
from repro.graphs.rgg import RandomGeometricGraph

__all__ = ["ALGORITHMS", "make_algorithm", "ExperimentConfig"]


def _make_randomized(graph: RandomGeometricGraph):
    return RandomizedGossip(graph.neighbors)


def _make_geographic(graph: RandomGeometricGraph):
    return GeographicGossip(graph)


def _make_hierarchical(graph: RandomGeometricGraph):
    return HierarchicalGossip(graph)


def _make_spatial(graph: RandomGeometricGraph):
    from repro.gossip.spatial import SpatialGossip

    return SpatialGossip(graph, rho=2.0)


#: name → factory(graph); the paper's three contenders plus the spatial
#: gossip baseline of its related work (E15).
ALGORITHMS: dict[str, Callable[[RandomGeometricGraph], object]] = {
    "randomized": _make_randomized,
    "geographic": _make_geographic,
    "hierarchical": _make_hierarchical,
    "spatial": _make_spatial,
}


def make_algorithm(name: str, graph: RandomGeometricGraph):
    """Instantiate a registered algorithm on ``graph``."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; registered: {sorted(ALGORITHMS)}"
        ) from None
    return factory(graph)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared experiment knobs.

    Attributes
    ----------
    sizes:
        Network sizes for scaling sweeps.
    epsilon:
        Target normalized error (paper's ε); scaling claims are about the
        dependence on ``n`` at fixed ε.
    trials:
        Independent placements/fields per point.
    radius_constant:
        ``r = sqrt(radius_constant · log n / n)``.
    field:
        Workload name from :data:`repro.workloads.FIELD_GENERATORS`.
    root_seed:
        Root of all derived randomness.
    algorithms:
        Names from :data:`ALGORITHMS` to include.
    """

    sizes: tuple[int, ...] = (128, 256, 512, 1024)
    epsilon: float = 0.25
    trials: int = 3
    radius_constant: float = 2.0
    field: str = "random"
    root_seed: int = 20070801  # PODC 2007
    algorithms: tuple[str, ...] = ("randomized", "geographic", "hierarchical")

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("need at least one network size")
        if any(n < 8 for n in self.sizes):
            raise ValueError(f"sizes must be >= 8, got {self.sizes}")
        if not 0 < self.epsilon < 1:
            raise ValueError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")
        unknown = set(self.algorithms) - set(ALGORITHMS)
        if unknown:
            raise ValueError(f"unknown algorithms: {sorted(unknown)}")
