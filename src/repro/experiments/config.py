"""Experiment configuration and the algorithm registry.

``ALGORITHMS`` maps the three contenders of the paper's story to factory
functions ``graph -> algorithm``; the registry keeps benchmark code free of
constructor details and makes "run all three on the same graph and field"
one loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dynamics.schedule import FaultSpec
from repro.gossip.affine import AffineGossipKn, sample_alphas
from repro.gossip.geographic import GeographicGossip
from repro.gossip.hierarchical.rounds import HierarchicalGossip
from repro.gossip.path_averaging import PathAveragingGossip
from repro.gossip.randomized import RandomizedGossip
from repro.gossip.spatial import SpatialGossip
from repro.graphs.generators import TOPOLOGIES, topology_names
from repro.graphs.rgg import RandomGeometricGraph
from repro.workloads.fields import WORKLOADS

__all__ = [
    "ALGORITHMS",
    "ALGORITHM_CLASSES",
    "fault_incompatible",
    "make_algorithm",
    "multifield_support",
    "protocol_batching",
    "ExperimentConfig",
]


def _make_randomized(graph: RandomGeometricGraph):
    return RandomizedGossip(graph.neighbors)


def _make_geographic(graph: RandomGeometricGraph):
    return GeographicGossip(graph)


def _make_hierarchical(graph: RandomGeometricGraph):
    return HierarchicalGossip(graph)


def _make_spatial(graph: RandomGeometricGraph):
    return SpatialGossip(graph, rho=2.0)


def _make_path_averaging(graph: RandomGeometricGraph):
    return PathAveragingGossip(graph)


#: Fixed seed for the affine comparator's coefficients: the registry
#: factory has no RNG argument, so α_i are a deterministic function of n
#: (same coefficients for every trial of a size — a controlled comparator,
#: not a random one).
_AFFINE_ALPHA_SEED = 1859  # Lemma 1's (1/3, 1/2) interval, fixed draw


def _make_affine(graph: RandomGeometricGraph):
    alphas = sample_alphas(graph.n, np.random.default_rng(_AFFINE_ALPHA_SEED))
    return AffineGossipKn(graph.n, alphas=alphas)


#: The single registry row per protocol: implementing class + factory.
#: ALGORITHMS and ALGORITHM_CLASSES are both derived from this table so
#: they can never drift apart (a name in one is always in the other).
_REGISTRY: dict[str, tuple[type, Callable[[RandomGeometricGraph], object]]] = {
    "randomized": (RandomizedGossip, _make_randomized),
    "geographic": (GeographicGossip, _make_geographic),
    "hierarchical": (HierarchicalGossip, _make_hierarchical),
    "spatial": (SpatialGossip, _make_spatial),
    "path-averaging": (PathAveragingGossip, _make_path_averaging),
    "affine": (AffineGossipKn, _make_affine),
}

#: name → factory(graph); the paper's three contenders plus the related
#: work: spatial gossip (E15), randomized path averaging (E9-PA), and the
#: Lemma-1 affine dynamics on K_n as the idealised complete-graph
#: comparator (its exchanges ignore the graph and cost 2 transmissions).
ALGORITHMS: dict[str, Callable[[RandomGeometricGraph], object]] = {
    name: factory for name, (_, factory) in _REGISTRY.items()
}

#: name → implementing class; what :func:`protocol_batching` inspects to
#: classify each registered protocol without building a graph instance.
ALGORITHM_CLASSES: dict[str, type] = {
    name: cls for name, (cls, _) in _REGISTRY.items()
}


def protocol_batching(algorithms: tuple[str, ...] | list[str]) -> dict[str, str]:
    """Engine batching capability for each named algorithm.

    Maps each name to ``"block"`` / ``"scalar"`` / ``"rounds"`` (see
    :func:`repro.engine.batching.batching_capability`).  The result store
    persists this map so a resumed ``check_stride > 1`` sweep can detect
    that a protocol's execution path changed between engine versions —
    scalar-path and block-path cells carry non-identical numbers and must
    not be mixed.
    """
    from repro.engine.batching import batching_capability

    capabilities = {}
    for name in algorithms:
        try:
            cls = ALGORITHM_CLASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {name!r}; registered: "
                f"{sorted(ALGORITHM_CLASSES)}"
            ) from None
        capabilities[name] = batching_capability(cls)
    return capabilities


def multifield_support(
    algorithms: tuple[str, ...] | list[str],
) -> dict[str, str]:
    """Multi-field execution capability for each named algorithm.

    Maps each name to ``"native"`` (one pass mixes all ``k`` columns of
    an ``(n, k)`` field matrix on shared routing/sampling) or
    ``"per-column"`` (the engine would fall back to ``k`` serial scalar
    passes with a
    :class:`~repro.engine.batching.MultiFieldFallbackWarning`) — see
    :func:`repro.engine.batching.multifield_capability`.  Every
    tick-driven protocol in the registry is ``"native"``;
    ``hierarchical`` is ``"per-column"`` by design — its adaptive round
    structure is an oracle over one field, so each column runs its own
    adaptive execution.
    """
    from repro.engine.batching import multifield_capability

    capabilities = {}
    for name in algorithms:
        try:
            cls = ALGORITHM_CLASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {name!r}; registered: "
                f"{sorted(ALGORITHM_CLASSES)}"
            ) from None
        capabilities[name] = multifield_capability(cls)
    return capabilities


def fault_incompatible(algorithms: tuple[str, ...] | list[str]) -> list[str]:
    """The subset of ``algorithms`` that cannot run under fault dynamics.

    Two reasons disqualify a protocol: it is round-based (no tick loop
    to interleave epoch boundaries with — ``hierarchical``), or it
    declares ``supports_dynamics = False`` (no radio model for faults to
    act on — the ``affine`` K_n comparator).  Config validation and the
    CLI both consult this one rule.
    """
    from repro.engine.batching import batching_capability

    out = []
    for name in algorithms:
        try:
            cls = ALGORITHM_CLASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {name!r}; registered: "
                f"{sorted(ALGORITHM_CLASSES)}"
            ) from None
        if batching_capability(cls) == "rounds" or not getattr(
            cls, "supports_dynamics", True
        ):
            out.append(name)
    return sorted(out)


def make_algorithm(name: str, graph: RandomGeometricGraph):
    """Instantiate a registered algorithm on ``graph``."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; registered: {sorted(ALGORITHMS)}"
        ) from None
    return factory(graph)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared experiment knobs.

    Attributes
    ----------
    sizes:
        Network sizes for scaling sweeps.
    epsilon:
        Target normalized error (paper's ε); scaling claims are about the
        dependence on ``n`` at fixed ε.
    trials:
        Independent placements/fields per point.
    radius_constant:
        ``r = sqrt(radius_constant · log n / n)``.
    field:
        Workload name from :data:`repro.workloads.FIELD_GENERATORS`.
    root_seed:
        Root of all derived randomness.
    algorithms:
        Names from :data:`ALGORITHMS` to include.
    topology:
        Graph family from :data:`repro.graphs.generators.TOPOLOGIES`;
        every sweep cell builds its instance from this family.  The
        default ``"rgg"`` reproduces the historical flat-RGG sweeps (and
        their seed streams) bit for bit.
    faults:
        Fault regime for every sweep cell: a preset name from
        :data:`repro.dynamics.schedule.FAULT_PRESETS` or a spec string
        such as ``"churn=0.02,loss=0.05"`` (see
        :meth:`repro.dynamics.schedule.FaultSpec.parse`).  The default
        ``"none"`` runs the historical fault-free engine path bit for
        bit; anything else wraps each cell's protocol in a
        :class:`~repro.dynamics.overlay.DynamicGossip` over a
        :class:`~repro.dynamics.overlay.DynamicSubstrate` whose schedule
        seed derives from ``root_seed`` and the cell's ``(n, trial)`` —
        so every algorithm of a trial faces the *same* fault scenario.
        Round-based protocols (``hierarchical``) have no tick loop to
        interleave epochs with and are rejected under faults.
    fields:
        Number of stacked fields per sweep cell.  The default ``1`` runs
        the historical scalar engine path bit for bit; ``k > 1`` builds
        an ``(n, k)`` matrix via the ``workload`` builder and runs all
        columns through one gossip pass per cell (column 0 stays
        bit-identical to the ``fields=1`` cell on the same seeds).
    workload:
        Stacking scheme from :data:`repro.workloads.fields.WORKLOADS`
        (``ensemble`` / ``quantile`` / ``histogram``); only consulted
        when ``fields > 1``.
    """

    sizes: tuple[int, ...] = (128, 256, 512, 1024)
    epsilon: float = 0.25
    trials: int = 3
    radius_constant: float = 2.0
    field: str = "random"
    root_seed: int = 20070801  # PODC 2007
    algorithms: tuple[str, ...] = ("randomized", "geographic", "hierarchical")
    topology: str = "rgg"
    faults: str = "none"
    fields: int = 1
    workload: str = "ensemble"

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("need at least one network size")
        if any(n < 8 for n in self.sizes):
            raise ValueError(f"sizes must be >= 8, got {self.sizes}")
        if not 0 < self.epsilon < 1:
            raise ValueError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")
        unknown = set(self.algorithms) - set(ALGORITHMS)
        if unknown:
            raise ValueError(f"unknown algorithms: {sorted(unknown)}")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; registered: "
                f"{topology_names()}"
            )
        if self.fields < 1:
            raise ValueError(
                f"fields must be >= 1, got {self.fields}"
            )
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; registered: "
                f"{sorted(WORKLOADS)}"
            )
        spec = FaultSpec.parse(self.faults)  # raises on a malformed spec
        if spec.enabled:
            unsupported = fault_incompatible(self.algorithms)
            if unsupported:
                raise ValueError(
                    f"fault dynamics ({self.faults!r}) are not supported by "
                    f"{unsupported} (round-based, or no radio model) — drop "
                    "them from `algorithms` or run fault-free"
                )

    def fault_spec(self) -> FaultSpec:
        """The parsed fault regime of this config."""
        return FaultSpec.parse(self.faults)
