"""Result serialisation: JSON and Markdown reports for sweeps.

The benchmark harness prints ASCII tables; downstream tooling (CI trend
tracking, notebooks) wants structured output.  This module converts
sweep results to plain dictionaries, renders a Markdown summary, and
round-trips through JSON.  Sweeps executed through the engine can also
be reported straight from their persistent
:class:`~repro.engine.store.ResultStore` — including partially completed
ones — via :func:`sweep_from_store`.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

import numpy as np

from repro.engine.store import ResultStore
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    ScalingPoint,
    aggregate_records,
    fit_loglog_slope,
)

__all__ = [
    "sweep_to_dict",
    "sweep_from_dict",
    "sweep_from_store",
    "render_markdown",
    "render_partial_markdown",
    "save_json",
]


def sweep_to_dict(
    config: ExperimentConfig,
    sweep: Mapping[str, Sequence[ScalingPoint]],
    engine: Mapping[str, object] | None = None,
) -> dict:
    """A JSON-serialisable record of a scaling sweep.

    ``engine`` optionally records how the sweep was executed (for example
    ``{"workers": 4, "check_stride": 8}``); execution parameters never
    change the numbers — only ``check_stride`` does, and that is part of
    the store's content key — but they are useful provenance for perf
    trend tracking.
    """
    payload = {
        "config": {
            "sizes": list(config.sizes),
            "epsilon": config.epsilon,
            "trials": config.trials,
            "radius_constant": config.radius_constant,
            "field": config.field,
            "root_seed": config.root_seed,
            "algorithms": list(config.algorithms),
        },
        "points": {
            name: [_point_to_dict(point) for point in points]
            for name, points in sweep.items()
        },
    }
    if engine is not None:
        payload["engine"] = dict(engine)
    return payload


def _point_to_dict(point: ScalingPoint) -> dict:
    """One point's JSON entry; timing is omitted-when-absent so reports
    from pre-timing stores serialise exactly as they always did."""
    entry = {
        "n": point.n,
        "transmissions_mean": point.transmissions_mean,
        "transmissions_std": point.transmissions_std,
        "converged_fraction": point.converged_fraction,
        "trials": point.trials,
    }
    if point.wall_clock_mean is not None:
        entry["wall_clock_mean"] = point.wall_clock_mean
    return entry


def sweep_from_store(store: ResultStore) -> dict[str, list[ScalingPoint]]:
    """Aggregate whatever cells a store holds (possibly a partial sweep)."""
    return aggregate_records(store.config, store.load_records())


def sweep_from_dict(payload: Mapping) -> dict[str, list[ScalingPoint]]:
    """Inverse of :func:`sweep_to_dict` (points only)."""
    return {
        name: [
            ScalingPoint(
                algorithm=name,
                n=int(entry["n"]),
                transmissions_mean=float(entry["transmissions_mean"]),
                transmissions_std=float(entry["transmissions_std"]),
                converged_fraction=float(entry["converged_fraction"]),
                trials=int(entry["trials"]),
                wall_clock_mean=(
                    float(entry["wall_clock_mean"])
                    if entry.get("wall_clock_mean") is not None
                    else None
                ),
            )
            for entry in entries
        ]
        for name, entries in payload["points"].items()
    }


def render_markdown(
    config: ExperimentConfig,
    sweep: Mapping[str, Sequence[ScalingPoint]],
) -> str:
    """A compact Markdown report: per-size costs plus fitted slopes."""
    names = [name for name in config.algorithms if name in sweep]
    lines = [
        f"## Scaling sweep (ε = {config.epsilon}, field = {config.field}, "
        f"{config.trials} trials)",
        "",
        "| n | " + " | ".join(names) + " |",
        "|---|" + "|".join(["---"] * len(names)) + "|",
    ]
    for n in config.sizes:
        cells = []
        for name in names:
            point = next((p for p in sweep[name] if p.n == n), None)
            cells.append(
                f"{point.transmissions_mean:,.0f}" if point else "—"
            )
        lines.append(f"| {n} | " + " | ".join(cells) + " |")
    lines.append("")
    lines.append("| algorithm | fitted log-log slope |")
    lines.append("|---|---|")
    for name in names:
        points = sweep[name]
        if len(points) >= 2:
            slope = fit_loglog_slope(
                np.array([p.n for p in points], dtype=float),
                np.array([p.transmissions_mean for p in points]),
            )
            lines.append(f"| {name} | {slope:.3f} |")
        else:
            lines.append(f"| {name} | n/a |")
    timing = _render_timing_table(config, sweep, names)
    if timing:
        lines.append("")
        lines.extend(timing)
    return "\n".join(lines)


def render_partial_markdown(config: ExperimentConfig, records: Mapping) -> str:
    """Markdown for an in-flight sweep: progress line, then the usual table.

    ``records`` maps cell keys to
    :class:`~repro.engine.executor.CellRecord` objects — whatever subset
    of the grid has landed so far.  The sweep service republishes this
    after every batch of completions, so readers can watch a distributed
    sweep converge; once every cell has landed the body matches
    :func:`render_markdown` over the full sweep (sizes with no finished
    cells render as ``—``).
    """
    total = len(config.algorithms) * len(config.sizes) * config.trials
    sweep = aggregate_records(config, records)
    header = f"*Partial sweep: {len(records)}/{total} cells complete.*"
    return header + "\n\n" + render_markdown(config, sweep)


def _render_timing_table(
    config: ExperimentConfig,
    sweep: Mapping[str, Sequence[ScalingPoint]],
    names: Sequence[str],
) -> list[str]:
    """Mean per-cell wall clock (ms), only when any point carries one.

    Reports over pre-timing stores produce no timing section at all, so
    their rendered output is byte-identical to the historical report.
    """
    if not any(
        point.wall_clock_mean is not None
        for name in names
        for point in sweep[name]
    ):
        return []
    lines = [
        "| n (wall clock, ms/cell) | " + " | ".join(names) + " |",
        "|---|" + "|".join(["---"] * len(names)) + "|",
    ]
    for n in config.sizes:
        cells = []
        for name in names:
            point = next((p for p in sweep[name] if p.n == n), None)
            clock = point.wall_clock_mean if point else None
            cells.append(f"{clock * 1e3:,.1f}" if clock is not None else "—")
        lines.append(f"| {n} | " + " | ".join(cells) + " |")
    return lines


def save_json(
    path: str,
    config: ExperimentConfig,
    sweep: Mapping[str, Sequence[ScalingPoint]],
) -> None:
    """Write the sweep record to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sweep_to_dict(config, sweep), handle, indent=2, sort_keys=True)
        handle.write("\n")
