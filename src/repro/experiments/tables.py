"""Fixed-width ASCII tables for benchmark output.

Benchmarks print paper-shaped rows ("who wins, by what factor, where the
crossovers fall"); this module renders them without any dependency on
plotting or terminal libraries.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_value", "format_table"]


def format_value(value: object, precision: int = 3) -> str:
    """Human-friendly rendering of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 10 ** (-precision):
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a fixed-width table with a rule under the header.

    >>> print(format_table(["n", "cost"], [[10, 1.5], [20, 3.25]]))
     n | cost
    ---+-----
    10 | 1.5
    20 | 3.25
    """
    if not headers:
        raise ValueError("need at least one column")
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in rendered), 1)
        if rendered
        else len(str(headers[c]))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
