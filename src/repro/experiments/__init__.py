"""Experiment harness: configs, runners, sweeps, and ASCII tables.

Every benchmark in ``benchmarks/`` is a thin wrapper over this package so
that experiments are reproducible from library code alone:

* :mod:`repro.experiments.config` — experiment configuration dataclasses
  and the algorithm registry.
* :mod:`repro.experiments.runner` — convergence runs, n-sweeps, slope
  fitting, trial aggregation.
* :mod:`repro.experiments.tables` — fixed-width table rendering for
  paper-vs-measured rows.
* :mod:`repro.experiments.seeds` — deterministic seed derivation.

Execution itself is delegated to :mod:`repro.engine` (batched ticks,
parallel sweep workers, resumable result stores); the runners here are
the experiment-facing API over that engine.
"""

from repro.experiments.config import (
    ALGORITHMS,
    ALGORITHM_CLASSES,
    ExperimentConfig,
    fault_incompatible,
    make_algorithm,
    multifield_support,
    protocol_batching,
)
from repro.experiments.runner import (
    ConvergenceRun,
    ScalingPoint,
    aggregate_records,
    aggregate_trials,
    fit_loglog_slope,
    run_convergence,
    run_scaling_sweep,
)
from repro.experiments.seeds import derive_seed, spawn_rng
from repro.experiments.tables import format_table, format_value

__all__ = [
    "ALGORITHMS",
    "ALGORITHM_CLASSES",
    "ConvergenceRun",
    "ExperimentConfig",
    "ScalingPoint",
    "aggregate_records",
    "aggregate_trials",
    "derive_seed",
    "fault_incompatible",
    "fit_loglog_slope",
    "format_table",
    "format_value",
    "make_algorithm",
    "multifield_support",
    "protocol_batching",
    "run_convergence",
    "run_scaling_sweep",
    "spawn_rng",
]
