"""Experiment runners: convergence runs, scaling sweeps, slope fits.

The scaling sweep is the headline (experiment E7): for each ``n`` and each
algorithm, run to the target ε on the same placement and field, record
transmissions, and fit per-algorithm log-log slopes — the paper's claimed
exponents are ≈2 (randomized), ≈1.5 (geographic), ≈1+o(1) (hierarchical).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import ExperimentConfig, make_algorithm
from repro.experiments.seeds import spawn_rng
from repro.gossip.base import GossipRunResult
from repro.graphs.rgg import RandomGeometricGraph
from repro.workloads.fields import FIELD_GENERATORS

__all__ = [
    "ConvergenceRun",
    "ScalingPoint",
    "run_convergence",
    "run_scaling_sweep",
    "aggregate_trials",
    "fit_loglog_slope",
]


@dataclass
class ConvergenceRun:
    """One algorithm's run on one placement/field."""

    algorithm: str
    n: int
    trial: int
    result: GossipRunResult

    @property
    def transmissions(self) -> int:
        return self.result.total_transmissions

    @property
    def converged(self) -> bool:
        return self.result.converged


@dataclass
class ScalingPoint:
    """Aggregated transmissions for one (algorithm, n) cell."""

    algorithm: str
    n: int
    transmissions_mean: float
    transmissions_std: float
    converged_fraction: float
    trials: int


def _build_instance(config: ExperimentConfig, n: int, trial: int):
    """Placement, graph and field shared by all algorithms of one trial."""
    graph_rng = spawn_rng(config.root_seed, "graph", n, trial)
    graph = RandomGeometricGraph.sample_connected(
        n, graph_rng, radius_constant=config.radius_constant
    )
    field_rng = spawn_rng(config.root_seed, "field", config.field, n, trial)
    values = FIELD_GENERATORS[config.field](graph.positions, field_rng)
    return graph, values


def run_convergence(
    config: ExperimentConfig,
    n: int,
    trial: int = 0,
    trace_thinning: float = 0.02,
) -> list[ConvergenceRun]:
    """Run every configured algorithm on one shared placement and field."""
    graph, values = _build_instance(config, n, trial)
    runs = []
    for name in config.algorithms:
        algorithm = make_algorithm(name, graph)
        run_rng = spawn_rng(config.root_seed, "run", name, n, trial)
        result = algorithm.run(
            values, config.epsilon, run_rng, trace_thinning=trace_thinning
        )
        runs.append(ConvergenceRun(algorithm=name, n=n, trial=trial, result=result))
    return runs


def run_scaling_sweep(config: ExperimentConfig) -> dict[str, list[ScalingPoint]]:
    """The E7 sweep: transmissions-to-ε for every algorithm and size."""
    by_algorithm: dict[str, list[ScalingPoint]] = {
        name: [] for name in config.algorithms
    }
    for n in config.sizes:
        trials: dict[str, list[GossipRunResult]] = {
            name: [] for name in config.algorithms
        }
        for trial in range(config.trials):
            for run in run_convergence(config, n, trial):
                trials[run.algorithm].append(run.result)
        for name, results in trials.items():
            by_algorithm[name].append(aggregate_trials(name, n, results))
    return by_algorithm


def aggregate_trials(
    algorithm: str, n: int, results: list[GossipRunResult]
) -> ScalingPoint:
    """Mean/std of transmissions over a point's trials."""
    if not results:
        raise ValueError("need at least one result to aggregate")
    counts = np.array([r.total_transmissions for r in results], dtype=np.float64)
    return ScalingPoint(
        algorithm=algorithm,
        n=n,
        transmissions_mean=float(counts.mean()),
        transmissions_std=float(counts.std()),
        converged_fraction=float(np.mean([r.converged for r in results])),
        trials=len(results),
    )


def fit_loglog_slope(sizes: np.ndarray, costs: np.ndarray) -> float:
    """Least-squares slope of ``log(cost)`` against ``log(n)``.

    This is the measured exponent: the paper claims ≈2 / ≈1.5 / ≈1+o(1)
    for the three algorithms.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if sizes.size != costs.size or sizes.size < 2:
        raise ValueError("need matching arrays of at least two points")
    if (sizes <= 0).any() or (costs <= 0).any():
        raise ValueError("sizes and costs must be positive for a log-log fit")
    slope = np.polyfit(np.log(sizes), np.log(costs), deg=1)[0]
    return float(slope)
