"""Experiment runners: convergence runs, scaling sweeps, slope fits.

The scaling sweep is the headline (experiment E7): for each ``n`` and each
algorithm, run to the target ε on the same placement and field, record
transmissions, and fit per-algorithm log-log slopes — the paper's claimed
exponents are ≈2 (randomized), ≈1.5 (geographic), ≈1+o(1) (hierarchical).

Execution goes through :mod:`repro.engine`: the sweep grid is expanded
into independent ``(algorithm, n, trial)`` cells with deterministically
spawned seeds, optionally fanned across worker processes and persisted to
a resumable :class:`~repro.engine.store.ResultStore`.  The defaults
(``workers=1, check_stride=1``) reproduce the historical serial runner
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.engine.batching import run_batched
from repro.engine.executor import (
    CellKey,
    CellRecord,
    build_cell_algorithm,
    build_instance,
    run_sweep_records,
)
from repro.engine.store import ResultStore
from repro.experiments.config import ExperimentConfig
from repro.experiments.seeds import spawn_rng
from repro.gossip.base import GossipRunResult

__all__ = [
    "ConvergenceRun",
    "ScalingPoint",
    "run_convergence",
    "run_scaling_sweep",
    "aggregate_trials",
    "aggregate_records",
    "fit_loglog_slope",
]


@dataclass
class ConvergenceRun:
    """One algorithm's run on one placement/field."""

    algorithm: str
    n: int
    trial: int
    result: GossipRunResult

    @property
    def transmissions(self) -> int:
        return self.result.total_transmissions

    @property
    def converged(self) -> bool:
        return self.result.converged


@dataclass
class ScalingPoint:
    """Aggregated transmissions for one (algorithm, n) cell.

    ``wall_clock_mean`` is the mean per-cell run time in seconds; it is
    ``None`` when any contributing record predates per-cell timing (old
    stores), mirroring the record-level omitted-when-absent rule.  Like
    :class:`~repro.engine.executor.CellRecord`'s timing fields it is
    excluded from equality: two points with identical numbers are the
    same point no matter how long the machine took to produce them.
    """

    algorithm: str
    n: int
    transmissions_mean: float
    transmissions_std: float
    converged_fraction: float
    trials: int
    wall_clock_mean: float | None = field(default=None, compare=False)


def run_convergence(
    config: ExperimentConfig,
    n: int,
    trial: int = 0,
    trace_thinning: float = 0.02,
    check_stride: int = 1,
) -> list[ConvergenceRun]:
    """Run every configured algorithm on one shared placement and field.

    With ``config.faults`` enabled every algorithm additionally runs on
    its own :class:`~repro.dynamics.overlay.DynamicSubstrate` realising
    the *same* fault scenario (the schedule seed depends only on
    ``(root_seed, n, trial)``), so the comparison stays apples to apples.
    """
    graph, values = build_instance(config, n, trial)
    runs = []
    for name in config.algorithms:
        algorithm = build_cell_algorithm(config, graph, name, n, trial)
        run_rng = spawn_rng(config.root_seed, "run", name, n, trial)
        result = run_batched(
            algorithm,
            values,
            config.epsilon,
            run_rng,
            check_stride=check_stride,
            trace_thinning=trace_thinning,
        )
        runs.append(ConvergenceRun(algorithm=name, n=n, trial=trial, result=result))
    return runs


def run_scaling_sweep(
    config: ExperimentConfig,
    *,
    workers: int = 1,
    check_stride: int = 1,
    store: ResultStore | None = None,
    trace: bool = False,
    trial_batch: bool = False,
) -> dict[str, list[ScalingPoint]]:
    """The E7 sweep: transmissions-to-ε for every algorithm and size.

    Parameters
    ----------
    config:
        Sweep definition; the root seed fixes every cell's randomness.
    workers:
        Grid cells run inline when ``1``, across a process pool otherwise;
        results are identical either way (per-cell seed spawning).
    check_stride:
        Engine error-check stride; ``1`` is the bit-identical legacy path.
    store:
        Optional result store — finished cells are persisted as they
        complete and already-stored cells are skipped (resume semantics).
    trace:
        Write each freshly executed cell's structured event trace under
        ``<store.directory>/traces/`` (requires ``store``); see
        :func:`repro.engine.executor.run_sweep_records`.
    trial_batch:
        Run each ``(algorithm, n)`` slice's trials through the
        trial-tensorized kernel path (:mod:`repro.engine.tensor`) where
        eligible; ineligible cells fall back per-cell with a
        :class:`~repro.engine.tensor.TrialBatchFallbackWarning`.  An
        execution mode like ``workers``: results and store keys are
        unchanged.
    """
    records = run_sweep_records(
        config,
        workers=workers,
        check_stride=check_stride,
        store=store,
        trace=trace,
        trial_batch=trial_batch,
        stacklevel=3,
    )
    return aggregate_records(config, records)


def _aggregate_point(
    algorithm: str,
    n: int,
    totals: list[int],
    converged: list[bool],
    wall_clocks: "list[float | None] | None" = None,
) -> ScalingPoint:
    """The one aggregation formula both result paths share.

    ``wall_clock_mean`` is only computed when *every* trial carries a
    timing — a mean over a mixed old/new store would silently average a
    different trial population than the transmissions column.
    """
    counts = np.array(totals, dtype=np.float64)
    wall_clock_mean = None
    if wall_clocks and all(clock is not None for clock in wall_clocks):
        wall_clock_mean = float(np.mean(wall_clocks))
    return ScalingPoint(
        algorithm=algorithm,
        n=n,
        transmissions_mean=float(counts.mean()),
        transmissions_std=float(counts.std()),
        converged_fraction=float(np.mean(converged)),
        trials=len(totals),
        wall_clock_mean=wall_clock_mean,
    )


def aggregate_trials(
    algorithm: str, n: int, results: list[GossipRunResult]
) -> ScalingPoint:
    """Mean/std of transmissions over a point's trials."""
    if not results:
        raise ValueError("need at least one result to aggregate")
    return _aggregate_point(
        algorithm,
        n,
        [r.total_transmissions for r in results],
        [r.converged for r in results],
    )


def aggregate_records(
    config: ExperimentConfig, records: Mapping[CellKey, CellRecord]
) -> dict[str, list[ScalingPoint]]:
    """Fold engine cell records into per-algorithm scaling points.

    Trials are aggregated in trial order so the floating-point results
    match the historical serial runner exactly.  Cells missing from
    ``records`` (a partially completed store) are simply left out, and an
    ``(algorithm, n)`` point with no finished trials is omitted.
    """
    sweep: dict[str, list[ScalingPoint]] = {name: [] for name in config.algorithms}
    for name in config.algorithms:
        for n in config.sizes:
            cells = [
                records[(name, n, trial)]
                for trial in range(config.trials)
                if (name, n, trial) in records
            ]
            if not cells:
                continue
            sweep[name].append(
                _aggregate_point(
                    name,
                    n,
                    [c.total_transmissions for c in cells],
                    [c.converged for c in cells],
                    [c.wall_clock for c in cells],
                )
            )
    return sweep


def fit_loglog_slope(sizes: np.ndarray, costs: np.ndarray) -> float:
    """Least-squares slope of ``log(cost)`` against ``log(n)``.

    This is the measured exponent: the paper claims ≈2 / ≈1.5 / ≈1+o(1)
    for the three algorithms.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if sizes.size != costs.size or sizes.size < 2:
        raise ValueError("need matching arrays of at least two points")
    if (sizes <= 0).any() or (costs <= 0).any():
        raise ValueError("sizes and costs must be positive for a log-log fit")
    slope = np.polyfit(np.log(sizes), np.log(costs), deg=1)[0]
    return float(slope)
