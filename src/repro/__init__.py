"""repro — Geographic gossip on geometric random graphs via affine combinations.

A from-scratch reproduction of Narayanan's PODC 2007 paper: gossip-based
distributed averaging on geometric random graphs, featuring the paper's
hierarchical protocol with *non-convex affine* pairwise updates
(``n^{1+o(1)}`` transmissions) alongside the randomized-gossip (Boyd et
al., ``Õ(n²)``) and geographic-gossip (Dimakis et al., ``Õ(n^1.5)``)
baselines, every substrate they need, and an analysis toolkit for the
paper's lemmas and bounds.

Quickstart::

    import numpy as np
    from repro import RandomGeometricGraph, HierarchicalGossip

    rng = np.random.default_rng(7)
    graph = RandomGeometricGraph.sample_connected(1024, rng)
    values = rng.normal(size=graph.n)
    result = HierarchicalGossip(graph).run(values, epsilon=0.25, rng=rng)
    print(result.total_transmissions, result.error)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.clocks import GlobalClock, PoissonClock
from repro.gossip import (
    AffineGossipKn,
    GeographicGossip,
    GossipRunResult,
    PerturbedAffineGossipKn,
    RandomizedGossip,
)
from repro.gossip.hierarchical import (
    AsyncHierarchicalProtocol,
    CoefficientMode,
    HierarchicalGossip,
    ProtocolParameters,
    RoundConfig,
)
from repro.graphs import RandomGeometricGraph, connectivity_radius
from repro.hierarchy import HierarchyTree
from repro.metrics import normalized_error
from repro.routing import GreedyRouter, RejectionSampler, TransmissionCounter

__version__ = "1.0.0"

__all__ = [
    "AffineGossipKn",
    "AsyncHierarchicalProtocol",
    "CoefficientMode",
    "GeographicGossip",
    "GlobalClock",
    "GossipRunResult",
    "GreedyRouter",
    "HierarchicalGossip",
    "HierarchyTree",
    "PerturbedAffineGossipKn",
    "PoissonClock",
    "ProtocolParameters",
    "RandomGeometricGraph",
    "RandomizedGossip",
    "RejectionSampler",
    "RoundConfig",
    "TransmissionCounter",
    "__version__",
    "connectivity_radius",
    "normalized_error",
]
