"""Spatial hash grid (cell lists) for neighbour queries in the unit square.

Building ``G(n, r)`` naively costs O(n²).  A grid of cells with side ≥ r
restricts candidate neighbours of a point to its own cell and the eight
surrounding cells, giving expected O(1) candidates per query when
``r = Θ(sqrt(log n / n))`` — the paper's regime — and hence an O(n · log n)
overall graph build (each cell holds O(log n) points in expectation).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.squares import GridPartition, Square, UNIT_SQUARE

__all__ = ["CellGrid"]


class CellGrid:
    """Cell-list index over a fixed set of points.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of positions inside ``region``.
    cell_side:
        Desired cell side length.  The actual side is ``region.side / k``
        for the largest integer ``k`` with ``region.side / k >= cell_side``,
        so that cells exactly tile the region and any two points within
        ``cell_side`` of each other are in the same or adjacent cells.
    region:
        The square being indexed; defaults to the unit square.
    """

    def __init__(
        self,
        points: np.ndarray,
        cell_side: float,
        region: Square = UNIT_SQUARE,
    ):
        if cell_side <= 0:
            raise ValueError(f"cell side must be positive, got {cell_side}")
        self.points = np.asarray(points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {self.points.shape}")
        self.region = region
        k = max(1, int(math.floor(region.side / cell_side)))
        # More cells than ~4x the point count buys nothing and (for tiny
        # radii) would explode memory; larger cells remain correct for
        # `within` queries because the cell side only grows.
        cap = max(1, 2 * int(math.ceil(math.sqrt(len(points) + 1))))
        k = min(k, cap)
        self.partition = GridPartition(region, k)
        self._cell_of_point = self.partition.cell_indices(self.points)
        self._members: list[np.ndarray] = self._bucket_points(k * k)

    def _bucket_points(self, n_cells: int) -> list[np.ndarray]:
        order = np.argsort(self._cell_of_point, kind="stable")
        sorted_cells = self._cell_of_point[order]
        boundaries = np.searchsorted(sorted_cells, np.arange(n_cells + 1))
        return [
            order[boundaries[c] : boundaries[c + 1]] for c in range(n_cells)
        ]

    def __len__(self) -> int:
        return len(self.points)

    @property
    def k(self) -> int:
        """Grid resolution (cells per axis)."""
        return self.partition.k

    def cell_members(self, cell_index: int) -> np.ndarray:
        """Indices of points whose position falls in cell ``cell_index``."""
        return self._members[cell_index]

    def candidate_neighbors(self, point: np.ndarray) -> np.ndarray:
        """Point indices in the cell of ``point`` and the 8 adjacent cells."""
        cell = self.partition.cell_index(point)
        blocks = [self._members[cell]]
        blocks.extend(
            self._members[adjacent]
            for adjacent in self.partition.neighbors_of_cell(cell)
        )
        return np.concatenate(blocks) if blocks else np.empty(0, dtype=np.int64)

    def within(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``point``.

        ``radius`` must not exceed the cell side, otherwise candidates could
        be missed; a :class:`ValueError` guards against silent wrong answers.
        """
        if radius > self.partition.cell_side * (1 + 1e-12):
            raise ValueError(
                f"query radius {radius} exceeds cell side "
                f"{self.partition.cell_side}; rebuild the grid with larger cells"
            )
        candidates = self.candidate_neighbors(point)
        if candidates.size == 0:
            return candidates
        diff = self.points[candidates] - np.asarray(point, dtype=np.float64)
        close = (diff[:, 0] ** 2 + diff[:, 1] ** 2) <= radius * radius
        return candidates[close]

    def nearest(self, point: np.ndarray) -> int:
        """Index of the point nearest to ``point`` (global, any distance).

        Searches outward ring by ring from the cell containing ``point``;
        terminates once a ring lies entirely farther than the best match.
        """
        if len(self.points) == 0:
            raise ValueError("cell grid holds no points")
        target = np.asarray(point, dtype=np.float64)
        k = self.partition.k
        row, col = self.partition.row_col(self.partition.cell_index(target))
        best_index = -1
        best_sq = math.inf
        for ring in range(k + 1):
            # Once the nearest possible point of this ring is farther than
            # the best match found, no later ring can improve it.
            ring_min = (ring - 1) * self.partition.cell_side
            if best_index >= 0 and ring_min > 0 and ring_min**2 > best_sq:
                break
            for cell in self._ring_cells(row, col, ring):
                members = self._members[cell]
                if members.size == 0:
                    continue
                diff = self.points[members] - target
                sq = diff[:, 0] ** 2 + diff[:, 1] ** 2
                local = int(np.argmin(sq))
                if sq[local] < best_sq:
                    best_sq = float(sq[local])
                    best_index = int(members[local])
        return best_index

    def _ring_cells(self, row: int, col: int, ring: int) -> list[int]:
        k = self.partition.k
        if ring == 0:
            return [row * k + col] if 0 <= row < k and 0 <= col < k else []
        cells = []
        for r in range(row - ring, row + ring + 1):
            for c in range(col - ring, col + ring + 1):
                on_ring = max(abs(r - row), abs(c - col)) == ring
                if on_ring and 0 <= r < k and 0 <= c < k:
                    cells.append(r * k + c)
        return cells
