"""Graph substrates: geometric random graphs and the topology zoo.

The paper's communication substrate is the geometric random graph
``G(n, r)`` (:mod:`repro.graphs.rgg`), built with a linear-time spatial hash
grid (:mod:`repro.graphs.cellgrid`).  Connectivity analysis in the
Gupta–Kumar regime lives in :mod:`repro.graphs.connectivity`.

:mod:`repro.graphs.generators` holds the topology zoo: the
:data:`~repro.graphs.generators.TOPOLOGIES` registry of positioned graph
families (flat and torus RGG, 2-D grid, Watts–Strogatz small world,
Erdős–Rényi with positions) that every protocol — including the routed
ones — can run on via ``ExperimentConfig(topology=...)``, plus the
adjacency-only reference generators used by the mixing experiments.
"""

from repro.graphs.cellgrid import CellGrid
from repro.graphs.connectivity import (
    UnionFind,
    connected_components,
    connectivity_probability,
    is_connected,
    largest_component,
)
from repro.graphs.generators import (
    DEFAULT_TOPOLOGY,
    TOPOLOGIES,
    build_topology,
    complete_graph_adjacency,
    erdos_renyi_adjacency,
    erdos_renyi_graph,
    grid2d_graph,
    grid_graph_adjacency,
    ring_graph_adjacency,
    topology_names,
    topology_seed_tags,
    torus_rgg_graph,
    watts_strogatz_graph,
)
from repro.graphs.rgg import RandomGeometricGraph, connectivity_radius

__all__ = [
    "CellGrid",
    "DEFAULT_TOPOLOGY",
    "RandomGeometricGraph",
    "TOPOLOGIES",
    "UnionFind",
    "build_topology",
    "complete_graph_adjacency",
    "connected_components",
    "connectivity_probability",
    "connectivity_radius",
    "erdos_renyi_adjacency",
    "erdos_renyi_graph",
    "grid2d_graph",
    "grid_graph_adjacency",
    "is_connected",
    "largest_component",
    "ring_graph_adjacency",
    "topology_names",
    "topology_seed_tags",
    "torus_rgg_graph",
    "watts_strogatz_graph",
]
