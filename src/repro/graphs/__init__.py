"""Graph substrates: geometric random graphs and reference topologies.

The paper's communication substrate is the geometric random graph
``G(n, r)`` (:mod:`repro.graphs.rgg`), built with a linear-time spatial hash
grid (:mod:`repro.graphs.cellgrid`).  Connectivity analysis in the
Gupta–Kumar regime lives in :mod:`repro.graphs.connectivity`; reference
topologies used by the mixing-time experiments in
:mod:`repro.graphs.generators`.
"""

from repro.graphs.cellgrid import CellGrid
from repro.graphs.connectivity import (
    UnionFind,
    connected_components,
    connectivity_probability,
    is_connected,
    largest_component,
)
from repro.graphs.generators import (
    complete_graph_adjacency,
    erdos_renyi_adjacency,
    grid_graph_adjacency,
    ring_graph_adjacency,
)
from repro.graphs.rgg import RandomGeometricGraph, connectivity_radius

__all__ = [
    "CellGrid",
    "RandomGeometricGraph",
    "UnionFind",
    "complete_graph_adjacency",
    "connected_components",
    "connectivity_probability",
    "connectivity_radius",
    "erdos_renyi_adjacency",
    "grid_graph_adjacency",
    "is_connected",
    "largest_component",
    "ring_graph_adjacency",
]
