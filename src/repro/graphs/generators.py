"""The topology zoo: graph families every protocol can run on.

Two layers live here:

* **Adjacency generators** (the historical API) return neighbour-array
  lists in the same format as
  :class:`~repro.graphs.rgg.RandomGeometricGraph.neighbors`; the
  mixing-time experiment (E12) uses them to contrast the RGG spectral
  gap against classical topologies with closed-form gossip behaviour.
* **Positioned topology builders** return full
  :class:`~repro.graphs.rgg.RandomGeometricGraph` substrates — positions
  plus adjacency plus a spatial index — so the *routed* protocols
  (geographic, spatial, path averaging, hierarchical) run on them
  unchanged.  :data:`TOPOLOGIES` is the registry the sweep config names:
  ``ExperimentConfig(topology="grid2d")`` makes every sweep cell run on
  that family, and :func:`build_topology` is the one entry point.

Registered families (see ``docs/topologies`` in the rendered docs and the
protocol × topology matrix in the README):

``rgg``
    The paper's ``G(n, r)`` on the unit square (the default).
``torus-rgg``
    ``G(n, r)`` under wrap-around (torus) distance: the same local
    geometry with the boundary effects removed.  Greedy routing still
    uses flat Euclidean distance, so routes never wrap — the torus edges
    only *add* connectivity.
``grid2d``
    A near-square 4-connected lattice with lattice-point positions; the
    deterministic slow-mixing baseline.
``smallworld``
    Watts–Strogatz: a ring lattice (positions on a circle) with each
    edge rewired with probability ``beta`` — the classical small-world
    interpolation.
``erdos-renyi``
    ``G(n, p)`` at the connectivity scaling ``p = 2 ln n / n``, with
    uniform random positions attached (edges ignore geometry entirely,
    the adversarial case for greedy routing).

Greedy delivery is only *guaranteed* on the geometric families; on
``smallworld`` and ``erdos-renyi`` routed protocols abort void routes and
count them in ``failed_exchanges``, conserving the global sum.

>>> import numpy as np
>>> graph = build_topology("grid2d", 12, np.random.default_rng(0))
>>> graph.n, int(graph.degrees().max())
(12, 4)
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.graphs.cellgrid import CellGrid
from repro.graphs.connectivity import is_connected
from repro.graphs.rgg import RandomGeometricGraph, connectivity_radius

__all__ = [
    "complete_graph_adjacency",
    "ring_graph_adjacency",
    "grid_graph_adjacency",
    "erdos_renyi_adjacency",
    "torus_rgg_graph",
    "grid2d_graph",
    "watts_strogatz_graph",
    "erdos_renyi_graph",
    "TOPOLOGIES",
    "DEFAULT_TOPOLOGY",
    "topology_seed_tags",
    "topology_names",
    "build_topology",
]


def complete_graph_adjacency(n: int) -> list[np.ndarray]:
    """``K_n``: every node adjacent to every other node."""
    if n <= 0:
        raise ValueError(f"need a positive node count, got {n}")
    everyone = np.arange(n, dtype=np.int64)
    return [np.delete(everyone, i) for i in range(n)]


def ring_graph_adjacency(n: int) -> list[np.ndarray]:
    """Cycle on ``n`` nodes (``n ≥ 3``)."""
    if n < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {n}")
    return [
        np.array(sorted(((i - 1) % n, (i + 1) % n)), dtype=np.int64)
        for i in range(n)
    ]


def grid_graph_adjacency(rows: int, cols: int) -> list[np.ndarray]:
    """4-connected ``rows × cols`` lattice, row-major node order."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    out: list[np.ndarray] = []
    for r in range(rows):
        for c in range(cols):
            adj = []
            if r > 0:
                adj.append((r - 1) * cols + c)
            if r < rows - 1:
                adj.append((r + 1) * cols + c)
            if c > 0:
                adj.append(r * cols + c - 1)
            if c < cols - 1:
                adj.append(r * cols + c + 1)
            out.append(np.array(sorted(adj), dtype=np.int64))
    return out


def erdos_renyi_adjacency(
    n: int, p: float, rng: np.random.Generator
) -> list[np.ndarray]:
    """``G(n, p)``: each of the ``n(n−1)/2`` edges present independently w.p. ``p``."""
    if n <= 0:
        raise ValueError(f"need a positive node count, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must lie in [0, 1], got {p}")
    upper = np.triu(rng.random((n, n)) < p, k=1)
    adjacency = upper | upper.T
    return [np.nonzero(adjacency[i])[0].astype(np.int64) for i in range(n)]


# -- positioned topology builders -------------------------------------------


def _positioned_graph(
    positions: np.ndarray, neighbors: list[np.ndarray], radius: float
) -> RandomGeometricGraph:
    """Assemble a :class:`RandomGeometricGraph` from explicit adjacency.

    ``radius`` is the family's nominal length scale: it sizes the spatial
    index (nearest-node queries) and feeds
    :meth:`~repro.routing.greedy.GreedyRouter.expected_hops`; it does
    *not* re-derive the adjacency, which is taken as given.
    """
    positions = np.asarray(positions, dtype=np.float64)
    return RandomGeometricGraph(
        positions=positions,
        radius=radius,
        neighbors=neighbors,
        grid=CellGrid(positions, cell_side=radius),
    )


def torus_rgg_graph(
    n: int,
    rng: np.random.Generator,
    radius: float | None = None,
    radius_constant: float = 2.0,
) -> RandomGeometricGraph:
    """``G(n, r)`` on the unit *torus*: edges by wrap-around distance.

    Node positions stay in the unit square (greedy routing keeps flat
    Euclidean geometry), but any pair within torus distance ``r`` is
    adjacent — boundary nodes gain the neighbours the square's edge
    denied them, so degrees concentrate tighter than on the flat RGG.
    """
    if radius is None:
        radius = connectivity_radius(n, radius_constant)
    positions = rng.random((n, 2))
    # Torus distance ≤ flat distance, so the flat G(n, r) — built in
    # expected linear time via the cell grid — is a subgraph; the only
    # extra edges involve two nodes both within r of the square's
    # boundary (an O(n·r) = O(√(n log n)) strip), so the wrap pass stays
    # a small dense problem instead of an O(n²) one.
    flat = RandomGeometricGraph.build(positions, radius)
    x, y = positions[:, 0], positions[:, 1]
    strip = np.nonzero(
        (x < radius) | (x > 1.0 - radius) | (y < radius) | (y > 1.0 - radius)
    )[0]
    extra: dict[int, list[int]] = {}
    if strip.size >= 2:
        pts = positions[strip]
        dx = np.abs(pts[:, 0][:, None] - pts[:, 0][None, :])
        dy = np.abs(pts[:, 1][:, None] - pts[:, 1][None, :])
        flat_sq = dx * dx + dy * dy
        dx = np.minimum(dx, 1.0 - dx)
        dy = np.minimum(dy, 1.0 - dy)
        torus_sq = dx * dx + dy * dy
        wrap_only = (torus_sq <= radius * radius) & (
            flat_sq > radius * radius
        )
        for a, b in zip(*np.nonzero(np.triu(wrap_only, k=1))):
            i, j = int(strip[a]), int(strip[b])
            extra.setdefault(i, []).append(j)
            extra.setdefault(j, []).append(i)
    neighbors = [
        np.array(
            sorted(flat.neighbors[i].tolist() + extra[i]), dtype=np.int64
        )
        if i in extra
        else flat.neighbors[i]
        for i in range(n)
    ]
    return _positioned_graph(positions, neighbors, radius)


def grid2d_graph(n: int, rng: np.random.Generator | None = None) -> RandomGeometricGraph:
    """A near-square 4-connected lattice with lattice-point positions.

    ``n`` is factored as ``rows × cols`` with ``rows`` the largest
    divisor of ``n`` not exceeding ``√n`` (a prime ``n`` degenerates to a
    path).  Positions are cell centres of the ``rows × cols`` tiling of
    the unit square, so greedy routing is exact on this family.  ``rng``
    is accepted for registry uniformity and never consumed.
    """
    if n < 2:
        raise ValueError(f"need at least two nodes, got {n}")
    rows = 1
    for divisor in range(1, int(math.isqrt(n)) + 1):
        if n % divisor == 0:
            rows = divisor
    cols = n // rows
    neighbors = grid_graph_adjacency(rows, cols)
    r_index, c_index = np.divmod(np.arange(n), cols)
    positions = np.column_stack(
        [(c_index + 0.5) / cols, (r_index + 0.5) / rows]
    ).astype(np.float64)
    spacing = max(1.0 / cols, 1.0 / rows)
    return _positioned_graph(positions, neighbors, 1.05 * spacing)


def watts_strogatz_graph(
    n: int,
    rng: np.random.Generator,
    k: int = 6,
    beta: float = 0.1,
) -> RandomGeometricGraph:
    """Watts–Strogatz small world on a circle of positions.

    Start from a ring lattice where every node connects to its ``k``
    nearest ring neighbours (``k`` even), then rewire each clockwise
    edge independently with probability ``beta`` to a uniform random
    non-neighbour — the standard construction.  Positions sit on a
    circle of radius 0.45 centred in the unit square, so greedy routing
    follows the ring through the lattice edges and opportunistically
    jumps rewired chords.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"k must be a positive even integer, got {k}")
    if n <= k:
        raise ValueError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"rewiring probability must lie in [0, 1], got {beta}")
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(1, k // 2 + 1):
            adjacency[i].add((i + j) % n)
            adjacency[(i + j) % n].add(i)
    for i in range(n):
        for j in range(1, k // 2 + 1):
            neighbor = (i + j) % n
            if rng.random() >= beta or neighbor not in adjacency[i]:
                continue
            candidates = [
                w for w in range(n) if w != i and w not in adjacency[i]
            ]
            if not candidates:
                continue
            new = candidates[int(rng.integers(len(candidates)))]
            adjacency[i].discard(neighbor)
            adjacency[neighbor].discard(i)
            adjacency[i].add(new)
            adjacency[new].add(i)
    neighbors = [
        np.array(sorted(adj), dtype=np.int64) for adj in adjacency
    ]
    theta = 2.0 * np.pi * np.arange(n) / n
    positions = np.column_stack(
        [0.5 + 0.45 * np.cos(theta), 0.5 + 0.45 * np.sin(theta)]
    )
    # Nominal scale: the chord spanned by the farthest lattice neighbour.
    chord = 2.0 * 0.45 * math.sin(math.pi * (k // 2) / n)
    return _positioned_graph(positions, neighbors, max(1.05 * chord, 1e-6))


def erdos_renyi_graph(
    n: int,
    rng: np.random.Generator,
    p: float | None = None,
) -> RandomGeometricGraph:
    """``G(n, p)`` with uniform random positions attached.

    ``p`` defaults to the connectivity scaling ``2 ln n / n``.  Edges are
    independent of the geometry, which makes this the adversarial family
    for greedy routing: routed protocols see frequent voids, abort those
    operations, and still conserve the sum.
    """
    if n < 2:
        raise ValueError(f"need at least two nodes, got {n}")
    if p is None:
        p = min(1.0, 2.0 * math.log(n) / n)
    positions = rng.random((n, 2))
    neighbors = erdos_renyi_adjacency(n, p, rng)
    return _positioned_graph(positions, neighbors, connectivity_radius(n))


def _build_rgg(
    n: int, rng: np.random.Generator, radius_constant: float
) -> RandomGeometricGraph:
    return RandomGeometricGraph.sample(n, rng, radius_constant=radius_constant)


def _build_torus(
    n: int, rng: np.random.Generator, radius_constant: float
) -> RandomGeometricGraph:
    return torus_rgg_graph(n, rng, radius_constant=radius_constant)


def _build_grid2d(
    n: int, rng: np.random.Generator, radius_constant: float
) -> RandomGeometricGraph:
    return grid2d_graph(n, rng)


def _build_smallworld(
    n: int, rng: np.random.Generator, radius_constant: float
) -> RandomGeometricGraph:
    return watts_strogatz_graph(n, rng)


def _build_erdos_renyi(
    n: int, rng: np.random.Generator, radius_constant: float
) -> RandomGeometricGraph:
    return erdos_renyi_graph(n, rng)


#: The topology registry: family name → builder ``(n, rng, radius_constant)
#: → RandomGeometricGraph``.  :class:`~repro.experiments.config.ExperimentConfig`
#: validates its ``topology`` field against these names, and
#: :func:`build_topology` retries random families until connected.
TOPOLOGIES: dict[
    str, Callable[[int, np.random.Generator, float], RandomGeometricGraph]
] = {
    "rgg": _build_rgg,
    "torus-rgg": _build_torus,
    "grid2d": _build_grid2d,
    "smallworld": _build_smallworld,
    "erdos-renyi": _build_erdos_renyi,
}


#: The family every pre-zoo sweep implicitly ran on.  Seed tags and
#: store content keys omit this name (see :func:`topology_seed_tags`) so
#: historical RGG streams and stores reproduce bit for bit.
DEFAULT_TOPOLOGY = "rgg"


def topology_seed_tags(topology: str, *tags) -> tuple:
    """Seed-tag components for a graph stream of the given family.

    The default family is omitted from the tag path — pre-zoo code
    spawned graph streams without a topology component, and those
    streams (hence all historical results) must keep reproducing.  Every
    site that derives a graph RNG or a store key goes through this one
    rule so the convention can never drift between them.

    >>> topology_seed_tags("rgg", 128, 0)
    (128, 0)
    >>> topology_seed_tags("grid2d", 128, 0)
    ('grid2d', 128, 0)
    """
    return tags if topology == DEFAULT_TOPOLOGY else (topology, *tags)


def topology_names() -> list[str]:
    """Registered topology family names, sorted.

    >>> topology_names()
    ['erdos-renyi', 'grid2d', 'rgg', 'smallworld', 'torus-rgg']
    """
    return sorted(TOPOLOGIES)


def build_topology(
    name: str,
    n: int,
    rng: np.random.Generator,
    radius_constant: float = 2.0,
    max_attempts: int = 50,
) -> RandomGeometricGraph:
    """Build a *connected* instance of the named topology family.

    Random families are redrawn (consuming ``rng``) until connected, the
    same retry contract as
    :meth:`~repro.graphs.rgg.RandomGeometricGraph.sample_connected`;
    deterministic families (``grid2d``) come out connected on the first
    draw.  ``radius_constant`` only affects the geometric families.
    """
    try:
        builder = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; registered: {topology_names()}"
        ) from None
    for _ in range(max_attempts):
        graph = builder(n, rng, radius_constant)
        if is_connected(graph.neighbors):
            return graph
    raise RuntimeError(
        f"no connected {name!r} instance of size {n} found in "
        f"{max_attempts} attempts"
    )
