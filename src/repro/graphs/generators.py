"""Reference (non-geometric) topologies.

The mixing-time experiment (E12) contrasts the RGG spectral gap against
classical topologies whose gossip behaviour is known in closed form:
the complete graph (``T_mix = O(1)``, the regime geographic gossip emulates),
the ring and 2-D grid (slow mixing), and Erdős–Rényi graphs.

All generators return neighbour-array lists in the same format as
:class:`~repro.graphs.rgg.RandomGeometricGraph.neighbors` so every gossip
algorithm in :mod:`repro.gossip` runs on them unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "complete_graph_adjacency",
    "ring_graph_adjacency",
    "grid_graph_adjacency",
    "erdos_renyi_adjacency",
]


def complete_graph_adjacency(n: int) -> list[np.ndarray]:
    """``K_n``: every node adjacent to every other node."""
    if n <= 0:
        raise ValueError(f"need a positive node count, got {n}")
    everyone = np.arange(n, dtype=np.int64)
    return [np.delete(everyone, i) for i in range(n)]


def ring_graph_adjacency(n: int) -> list[np.ndarray]:
    """Cycle on ``n`` nodes (``n ≥ 3``)."""
    if n < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {n}")
    return [
        np.array(sorted(((i - 1) % n, (i + 1) % n)), dtype=np.int64)
        for i in range(n)
    ]


def grid_graph_adjacency(rows: int, cols: int) -> list[np.ndarray]:
    """4-connected ``rows × cols`` lattice, row-major node order."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    out: list[np.ndarray] = []
    for r in range(rows):
        for c in range(cols):
            adj = []
            if r > 0:
                adj.append((r - 1) * cols + c)
            if r < rows - 1:
                adj.append((r + 1) * cols + c)
            if c > 0:
                adj.append(r * cols + c - 1)
            if c < cols - 1:
                adj.append(r * cols + c + 1)
            out.append(np.array(sorted(adj), dtype=np.int64))
    return out


def erdos_renyi_adjacency(
    n: int, p: float, rng: np.random.Generator
) -> list[np.ndarray]:
    """``G(n, p)``: each of the ``n(n−1)/2`` edges present independently w.p. ``p``."""
    if n <= 0:
        raise ValueError(f"need a positive node count, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must lie in [0, 1], got {p}")
    upper = np.triu(rng.random((n, n)) < p, k=1)
    adjacency = upper | upper.T
    return [np.nonzero(adjacency[i])[0].astype(np.int64) for i in range(n)]
