"""Geometric random graphs ``G(n, r)``.

The paper's model (Section 2): ``n`` points i.i.d. uniform on the unit
square, an edge between any two points within Euclidean distance ``r``, and
the standard connectivity scaling ``r(n) = Θ(sqrt(log n / n))`` (Gupta–Kumar).

:class:`RandomGeometricGraph` stores positions, a radius, and per-node
neighbour arrays, and is the substrate object every algorithm in the library
operates on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.points import random_points
from repro.graphs.cellgrid import CellGrid

__all__ = ["RandomGeometricGraph", "connectivity_radius"]


def connectivity_radius(n: int, constant: float = 2.0) -> float:
    """The paper's connectivity radius ``sqrt(constant · log n / n)``.

    Gupta–Kumar: ``r = Ω(sqrt(log n / n))`` suffices for connectivity with
    probability ``1 − n^{−Θ(1)}``.  ``constant = 2`` is a comfortable margin
    used throughout the experiments (the threshold is at constant 1/π for
    the disc model; for the unit square with this parameterisation any
    constant > 1 works w.h.p.).
    """
    if n < 2:
        raise ValueError(f"need at least two nodes, got {n}")
    if constant <= 0:
        raise ValueError(f"radius constant must be positive, got {constant}")
    return math.sqrt(constant * math.log(n) / n)


@dataclass
class RandomGeometricGraph:
    """A geometric random graph over the unit square.

    Attributes
    ----------
    positions:
        ``(n, 2)`` node coordinates.
    radius:
        Connectivity radius; nodes within this Euclidean distance are
        adjacent.
    neighbors:
        ``neighbors[i]`` is a sorted integer array of the nodes adjacent to
        ``i`` (excluding ``i`` itself).
    grid:
        The :class:`~repro.graphs.cellgrid.CellGrid` used to build the graph;
        reused by greedy routing and rejection sampling.
    """

    positions: np.ndarray
    radius: float
    neighbors: list[np.ndarray] = field(repr=False)
    grid: CellGrid = field(repr=False)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, positions: np.ndarray, radius: float) -> "RandomGeometricGraph":
        """Build the graph for given ``positions`` and ``radius``."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(
                f"positions must have shape (n, 2), got {positions.shape}"
            )
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        grid = CellGrid(positions, cell_side=radius)
        neighbors = cls._neighbor_lists(positions, radius, grid)
        return cls(
            positions=positions, radius=radius, neighbors=neighbors, grid=grid
        )

    @classmethod
    def sample(
        cls,
        n: int,
        rng: np.random.Generator,
        radius: float | None = None,
        radius_constant: float = 2.0,
    ) -> "RandomGeometricGraph":
        """Sample node positions and build ``G(n, r)``.

        ``radius`` defaults to :func:`connectivity_radius` with
        ``radius_constant``.
        """
        if radius is None:
            radius = connectivity_radius(n, radius_constant)
        return cls.build(random_points(n, rng), radius)

    @classmethod
    def sample_connected(
        cls,
        n: int,
        rng: np.random.Generator,
        radius: float | None = None,
        radius_constant: float = 2.0,
        max_attempts: int = 50,
    ) -> "RandomGeometricGraph":
        """Sample until the graph is connected (fails after ``max_attempts``).

        At the paper's radius the first draw succeeds with overwhelming
        probability; the retry loop guards small-``n`` simulations, where a
        disconnected draw would make exact averaging impossible.
        """
        from repro.graphs.connectivity import is_connected

        for _ in range(max_attempts):
            graph = cls.sample(n, rng, radius=radius, radius_constant=radius_constant)
            if is_connected(graph.neighbors):
                return graph
        raise RuntimeError(
            f"no connected G({n}, r) found in {max_attempts} attempts; "
            "increase the radius constant"
        )

    @staticmethod
    def _neighbor_lists(
        positions: np.ndarray, radius: float, grid: CellGrid
    ) -> list[np.ndarray]:
        n = len(positions)
        radius_sq = radius * radius
        out: list[list[int]] = [[] for _ in range(n)]
        partition = grid.partition

        def add_close_pairs(left: np.ndarray, right: np.ndarray, same_cell: bool):
            diff = positions[left][:, None, :] - positions[right][None, :, :]
            close = (diff[:, :, 0] ** 2 + diff[:, :, 1] ** 2) <= radius_sq
            for a, i in enumerate(left):
                i = int(i)
                for b in np.nonzero(close[a])[0]:
                    j = int(right[b])
                    # Within a cell each unordered pair appears twice in the
                    # product; keep i < j.  Across cells each unordered cell
                    # pair is visited once, so every close pair is an edge.
                    if not same_cell or j > i:
                        out[i].append(j)
                        out[j].append(i)

        # One pass per cell: pairs within the cell, then pairs against each
        # neighbouring cell of larger index (so each cell pair runs once).
        for cell in range(len(partition)):
            members = grid.cell_members(cell)
            if members.size == 0:
                continue
            add_close_pairs(members, members, same_cell=True)
            for other in partition.neighbors_of_cell(cell):
                if other > cell:
                    other_members = grid.cell_members(other)
                    if other_members.size:
                        add_close_pairs(members, other_members, same_cell=False)
        return [np.array(sorted(adj), dtype=np.int64) for adj in out]

    # -- queries -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.positions)

    def degree(self, node: int) -> int:
        return len(self.neighbors[node])

    def degrees(self) -> np.ndarray:
        """All node degrees as an integer array."""
        return np.array([len(adj) for adj in self.neighbors], dtype=np.int64)

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return int(self.degrees().sum()) // 2

    def are_adjacent(self, u: int, v: int) -> bool:
        return bool(np.isin(v, self.neighbors[u], assume_unique=True))

    def nearest_node(self, point: np.ndarray) -> int:
        """The node nearest to an arbitrary ``point`` of the unit square.

        This is the primitive geographic gossip uses to resolve a random
        target *location* to a target *node*.
        """
        return self.grid.nearest(point)

    def isolated_nodes(self) -> np.ndarray:
        """Nodes with no neighbours (nonempty only below the threshold radius)."""
        return np.nonzero(self.degrees() == 0)[0]

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (cross-validation in tests)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for i, adj in enumerate(self.neighbors):
            g.add_edges_from((i, int(j)) for j in adj if j > i)
        return g
