"""Connectivity analysis for geometric random graphs.

The paper works in the Gupta–Kumar regime ``r = Θ(sqrt(log n / n))`` where
``G(n, r)`` is connected w.h.p. (Section 1.1/2.1); disconnection probability
``Ω(n^{−O(1)})`` is why the failure budget δ cannot be pushed below
``n^{−O(1)}``.  Experiment E5 measures the connectivity probability as a
function of the radius constant.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

__all__ = [
    "UnionFind",
    "is_connected",
    "connected_components",
    "largest_component",
    "connectivity_probability",
]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"need a positive number of elements, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self.components = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s component."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.components -= 1
        return True

    def component_size(self, x: int) -> int:
        return self._size[self.find(x)]


def is_connected(neighbors: Sequence[np.ndarray]) -> bool:
    """Whether the graph given by per-node neighbour arrays is connected."""
    n = len(neighbors)
    if n == 0:
        return True
    uf = UnionFind(n)
    for i, adj in enumerate(neighbors):
        for j in adj:
            uf.union(i, int(j))
    return uf.components == 1


def connected_components(neighbors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """All connected components, largest first, as sorted index arrays."""
    n = len(neighbors)
    label = np.full(n, -1, dtype=np.int64)
    count = 0
    for start in range(n):
        if label[start] >= 0:
            continue
        queue = deque([start])
        label[start] = count
        while queue:
            u = queue.popleft()
            for v in neighbors[u]:
                v = int(v)
                if label[v] < 0:
                    label[v] = count
                    queue.append(v)
        count += 1
    components = [np.nonzero(label == c)[0] for c in range(count)]
    components.sort(key=len, reverse=True)
    return components


def largest_component(neighbors: Sequence[np.ndarray]) -> np.ndarray:
    """Node indices of the largest connected component."""
    return connected_components(neighbors)[0]


def connectivity_probability(
    n: int,
    radius: float,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of ``P(G(n, radius) is connected)``.

    Used by experiment E5 to chart the sharp threshold around
    ``sqrt(log n / n)``.
    """
    from repro.graphs.rgg import RandomGeometricGraph

    if trials <= 0:
        raise ValueError(f"need a positive number of trials, got {trials}")
    connected = 0
    for _ in range(trials):
        graph = RandomGeometricGraph.sample(n, rng, radius=radius)
        if is_connected(graph.neighbors):
            connected += 1
    return connected / trials
