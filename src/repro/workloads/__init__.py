"""Initial measurement fields for the sensors.

The paper's guarantees are worst-case over ``x(0)``; the experiments
exercise fields with very different spatial structure, because gossip
variants differ most on spatially correlated data (a single hot sensor, a
linear gradient across the field, a localised plume) versus uncorrelated
noise.  All generators take node positions so the field is a function of
where each sensor sits.
"""

from repro.workloads.fields import (
    FIELD_GENERATORS,
    WORKLOADS,
    build_field_matrix,
    checkerboard_field,
    ensemble_field,
    gaussian_plume_field,
    histogram_edges,
    histogram_indicator_stack,
    linear_gradient_field,
    quantile_indicator_stack,
    quantile_thresholds,
    random_field,
    spike_field,
)

__all__ = [
    "FIELD_GENERATORS",
    "WORKLOADS",
    "build_field_matrix",
    "checkerboard_field",
    "ensemble_field",
    "gaussian_plume_field",
    "histogram_edges",
    "histogram_indicator_stack",
    "linear_gradient_field",
    "quantile_indicator_stack",
    "quantile_thresholds",
    "random_field",
    "spike_field",
]
