"""Initial-value field generators.

Each generator maps sensor positions to one measurement per sensor.  The
scenarios mirror the sensor-network motivation of the gossip literature:

* ``spike_field`` — one sensor observed an event, everyone else zero (the
  hardest case for local gossip: mass must travel across the network).
* ``linear_gradient_field`` — a smooth trend (e.g. temperature across a
  field); spatially adjacent sensors nearly agree, so local averaging
  looks deceptively converged while the global average is far away.
* ``gaussian_plume_field`` — a localised emission plume.
* ``checkerboard_field`` — high-frequency alternation; the easy case for
  local gossip.
* ``random_field`` — i.i.d. noise, the standard benchmark workload.

**Stacked fields.**  Sensor networks rarely carry one measurement: the
multi-field engine runs an ``(n, k)`` matrix of ``k`` concurrent fields
through a single gossip pass, sharing every clock tick, pair draw, and
greedy route across columns.  The builders here produce such stacks with
one invariant — **column 0 is exactly the scalar field** the legacy
engine would have drawn from the same generator stream, which is what
lets the golden-trace suite pin a ``k``-field run's first column to the
scalar run bit for bit:

* ``ensemble_field`` — ``k`` independent draws of one base generator
  (trial ensembles in one pass).
* ``quantile_indicator_stack`` / ``histogram_indicator_stack`` — the
  base field plus indicator columns whose network averages *are* the
  empirical CDF at fixed thresholds / the normalized bin counts, so one
  gossip run estimates quantiles or a histogram of the field.
* ``build_field_matrix`` — the engine entry point, dispatching on the
  :data:`WORKLOADS` registry (``ensemble`` / ``quantile`` /
  ``histogram``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spike_field",
    "linear_gradient_field",
    "gaussian_plume_field",
    "checkerboard_field",
    "random_field",
    "FIELD_GENERATORS",
    "ensemble_field",
    "quantile_indicator_stack",
    "quantile_thresholds",
    "histogram_indicator_stack",
    "histogram_edges",
    "build_field_matrix",
    "WORKLOADS",
]


def _check_positions(positions: np.ndarray) -> np.ndarray:
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    if len(positions) == 0:
        raise ValueError("need at least one sensor")
    return positions


def spike_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    magnitude: float = 1.0,
) -> np.ndarray:
    """All zeros except one uniformly chosen sensor reading ``magnitude``."""
    positions = _check_positions(positions)
    values = np.zeros(len(positions))
    values[rng.integers(len(positions))] = magnitude
    return values


def linear_gradient_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    noise: float = 0.0,
) -> np.ndarray:
    """A plane ``a·x + b·y`` with random orientation plus optional noise."""
    positions = _check_positions(positions)
    angle = rng.uniform(0.0, 2.0 * np.pi)
    direction = np.array([np.cos(angle), np.sin(angle)])
    values = positions @ direction
    if noise > 0:
        values = values + rng.normal(scale=noise, size=len(positions))
    return values


def gaussian_plume_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    width: float = 0.15,
    amplitude: float = 1.0,
) -> np.ndarray:
    """A Gaussian bump centred at a random location (a pollutant plume)."""
    positions = _check_positions(positions)
    if width <= 0:
        raise ValueError(f"plume width must be positive, got {width}")
    center = rng.random(2)
    sq = ((positions - center) ** 2).sum(axis=1)
    return amplitude * np.exp(-sq / (2.0 * width**2))


def checkerboard_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    cells_per_axis: int = 8,
) -> np.ndarray:
    """±1 by checkerboard cell parity — high spatial frequency."""
    positions = _check_positions(positions)
    if cells_per_axis <= 0:
        raise ValueError(f"cells_per_axis must be positive, got {cells_per_axis}")
    cols = np.clip(
        (positions[:, 0] * cells_per_axis).astype(int), 0, cells_per_axis - 1
    )
    rows = np.clip(
        (positions[:, 1] * cells_per_axis).astype(int), 0, cells_per_axis - 1
    )
    return np.where((rows + cols) % 2 == 0, 1.0, -1.0)


def random_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> np.ndarray:
    """I.i.d. ``N(0, scale²)`` readings — the standard benchmark field."""
    positions = _check_positions(positions)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return rng.normal(scale=scale, size=len(positions))


#: Name → generator registry used by the experiment harness.
FIELD_GENERATORS = {
    "spike": spike_field,
    "gradient": linear_gradient_field,
    "plume": gaussian_plume_field,
    "checkerboard": checkerboard_field,
    "random": random_field,
}


def _check_fields(k: int) -> int:
    if k < 1:
        raise ValueError(f"need at least one field, got k={k}")
    return int(k)


def ensemble_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    base: str = "random",
    k: int = 8,
) -> np.ndarray:
    """``k`` independent draws of one base generator, stacked ``(n, k)``.

    The columns are drawn sequentially from ``rng``, so column 0 equals
    the scalar field ``FIELD_GENERATORS[base](positions, rng)`` would
    have produced from the same generator state — the stream-consumption
    rule every stacked-field builder follows (the engine's column-0
    bit-identity guarantee depends on it).
    """
    _check_fields(k)
    try:
        generator = FIELD_GENERATORS[base]
    except KeyError:
        raise ValueError(
            f"unknown base field {base!r}; registered: {sorted(FIELD_GENERATORS)}"
        ) from None
    return np.column_stack([generator(positions, rng) for _ in range(k)])


def quantile_indicator_stack(values: np.ndarray, k: int = 8) -> np.ndarray:
    """The field plus CDF-indicator columns: quantile estimation in one run.

    Column 0 is ``values`` itself; column ``j ≥ 1`` is the indicator
    ``1[x_i ≤ τ_j]`` at the ``k − 1`` thresholds ``τ_j`` evenly spaced
    across the field's range.  Averaging conserves each column's mean,
    so every node's column-``j`` estimate converges to the *exact*
    empirical CDF ``#{i : x_i ≤ τ_j} / n`` — reading the stack's
    consensus row off against the thresholds inverts it into quantiles.
    Thresholds are deterministic functions of the field (no RNG draws),
    keeping the generator stream identical to the scalar run's.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError(
            f"need a 1-D base field to stack indicators on, got shape "
            f"{values.shape}"
        )
    _check_fields(k)
    thresholds = quantile_thresholds(values, k - 1)
    indicators = [
        (values <= threshold).astype(np.float64) for threshold in thresholds
    ]
    return np.column_stack([values, *indicators])


def quantile_thresholds(values: np.ndarray, count: int) -> np.ndarray:
    """The ``count`` evenly spaced interior thresholds a quantile stack uses.

    Spaced across ``[min, max]`` excluding both endpoints (an endpoint
    indicator is constant — it carries no information and would sit at
    zero deviation from tick 0).  A constant field yields its single
    value repeated: every indicator is all-ones and the columns are
    vacuously converged.
    """
    values = np.asarray(values, dtype=np.float64)
    low, high = float(values.min()), float(values.max())
    return np.linspace(low, high, count + 2)[1:-1]


def histogram_indicator_stack(values: np.ndarray, k: int = 8) -> np.ndarray:
    """The field plus bin-indicator columns: a histogram in one run.

    Column 0 is ``values``; column ``j ≥ 1`` is the indicator of the
    ``j``-th of ``k − 1`` equal-width bins spanning ``[min, max]`` (the
    last bin closed, matching :func:`numpy.histogram`).  Each column's
    conserved mean is the exact normalized bin count, so one gossip run
    leaves every node holding the field's full histogram.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError(
            f"need a 1-D base field to stack indicators on, got shape "
            f"{values.shape}"
        )
    _check_fields(k)
    bins = max(k - 1, 1)
    edges = histogram_edges(values, bins)
    indicators = []
    for j in range(k - 1):
        if j == bins - 1:  # last bin closed, as numpy.histogram has it
            upper = values <= edges[j + 1]
        else:
            upper = values < edges[j + 1]
        indicators.append(((values >= edges[j]) & upper).astype(np.float64))
    return np.column_stack([values, *indicators])


def histogram_edges(values: np.ndarray, bins: int) -> np.ndarray:
    """The ``bins + 1`` equal-width edges a histogram stack uses.

    A constant field degenerates to zero-width bins; every sensor lands
    in the last (closed) bin, mirroring :func:`numpy.histogram` on a
    zero-range input.
    """
    values = np.asarray(values, dtype=np.float64)
    return np.linspace(float(values.min()), float(values.max()), bins + 1)


#: Workload name → stacked-field builder ``(field, positions, rng, k)``.
#: Every builder draws the base scalar field *first* from ``rng`` and
#: places it in column 0, so a multi-field sweep cell's first column is
#: bit-identical to the scalar sweep cell on the same seeds.
WORKLOADS = {
    "ensemble": lambda field, positions, rng, k: ensemble_field(
        positions, rng, base=field, k=k
    ),
    "quantile": lambda field, positions, rng, k: quantile_indicator_stack(
        FIELD_GENERATORS[field](positions, rng), k=k
    ),
    "histogram": lambda field, positions, rng, k: histogram_indicator_stack(
        FIELD_GENERATORS[field](positions, rng), k=k
    ),
}


def build_field_matrix(
    workload: str,
    field: str,
    positions: np.ndarray,
    rng: np.random.Generator,
    k: int,
) -> np.ndarray:
    """Build the ``(n, k)`` initial state for a multi-field run.

    ``workload`` picks the stacking scheme from :data:`WORKLOADS`;
    ``field`` names the base generator from :data:`FIELD_GENERATORS`.
    Column 0 is always the base field exactly as the scalar engine would
    have drawn it from ``rng``.
    """
    _check_fields(k)
    if field not in FIELD_GENERATORS:
        raise ValueError(
            f"unknown field {field!r}; registered: {sorted(FIELD_GENERATORS)}"
        )
    try:
        builder = WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; registered: {sorted(WORKLOADS)}"
        ) from None
    return builder(field, positions, rng, k)
