"""Initial-value field generators.

Each generator maps sensor positions to one measurement per sensor.  The
scenarios mirror the sensor-network motivation of the gossip literature:

* ``spike_field`` — one sensor observed an event, everyone else zero (the
  hardest case for local gossip: mass must travel across the network).
* ``linear_gradient_field`` — a smooth trend (e.g. temperature across a
  field); spatially adjacent sensors nearly agree, so local averaging
  looks deceptively converged while the global average is far away.
* ``gaussian_plume_field`` — a localised emission plume.
* ``checkerboard_field`` — high-frequency alternation; the easy case for
  local gossip.
* ``random_field`` — i.i.d. noise, the standard benchmark workload.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spike_field",
    "linear_gradient_field",
    "gaussian_plume_field",
    "checkerboard_field",
    "random_field",
    "FIELD_GENERATORS",
]


def _check_positions(positions: np.ndarray) -> np.ndarray:
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    if len(positions) == 0:
        raise ValueError("need at least one sensor")
    return positions


def spike_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    magnitude: float = 1.0,
) -> np.ndarray:
    """All zeros except one uniformly chosen sensor reading ``magnitude``."""
    positions = _check_positions(positions)
    values = np.zeros(len(positions))
    values[rng.integers(len(positions))] = magnitude
    return values


def linear_gradient_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    noise: float = 0.0,
) -> np.ndarray:
    """A plane ``a·x + b·y`` with random orientation plus optional noise."""
    positions = _check_positions(positions)
    angle = rng.uniform(0.0, 2.0 * np.pi)
    direction = np.array([np.cos(angle), np.sin(angle)])
    values = positions @ direction
    if noise > 0:
        values = values + rng.normal(scale=noise, size=len(positions))
    return values


def gaussian_plume_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    width: float = 0.15,
    amplitude: float = 1.0,
) -> np.ndarray:
    """A Gaussian bump centred at a random location (a pollutant plume)."""
    positions = _check_positions(positions)
    if width <= 0:
        raise ValueError(f"plume width must be positive, got {width}")
    center = rng.random(2)
    sq = ((positions - center) ** 2).sum(axis=1)
    return amplitude * np.exp(-sq / (2.0 * width**2))


def checkerboard_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    cells_per_axis: int = 8,
) -> np.ndarray:
    """±1 by checkerboard cell parity — high spatial frequency."""
    positions = _check_positions(positions)
    if cells_per_axis <= 0:
        raise ValueError(f"cells_per_axis must be positive, got {cells_per_axis}")
    cols = np.clip(
        (positions[:, 0] * cells_per_axis).astype(int), 0, cells_per_axis - 1
    )
    rows = np.clip(
        (positions[:, 1] * cells_per_axis).astype(int), 0, cells_per_axis - 1
    )
    return np.where((rows + cols) % 2 == 0, 1.0, -1.0)


def random_field(
    positions: np.ndarray,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> np.ndarray:
    """I.i.d. ``N(0, scale²)`` readings — the standard benchmark field."""
    positions = _check_positions(positions)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return rng.normal(scale=scale, size=len(positions))


#: Name → generator registry used by the experiment harness.
FIELD_GENERATORS = {
    "spike": spike_field,
    "gradient": linear_gradient_field,
    "plume": gaussian_plume_field,
    "checkerboard": checkerboard_field,
    "random": random_field,
}
