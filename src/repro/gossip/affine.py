"""The paper's affine pairwise dynamics on the complete graph (Appendix).

Lemma 1's setting: nodes ``1..n`` on ``K_n``, coefficients
``α_i ∈ (1/3, 1/2)``.  When node ``i``'s clock ticks it picks ``j``
uniformly at random and the pair updates *from pre-exchange values*:

    x_i(t) = (1 − α_i)·x_i(t−1) + α_j·x_j(t−1)
    x_j(t) = (1 − α_j)·x_j(t−1) + α_i·x_i(t−1)

Note the cross-weighting — ``i`` gains exactly the mass ``j`` loses and
vice versa — which conserves the sum even with unequal coefficients.  This
is precisely the form induced on square *sums* by the hierarchical
protocol's `Far` exchanges, and Lemma 1 proves
``E‖x(t)‖² < (1 − 1/(2n))^t · ‖x(0)‖²`` (experiment E1).

Lemma 2's perturbed variant adds an antisymmetric disturbance ``±ν(t)``
with ``|ν(t)| < ε_ν``, modelling imperfect intra-square averaging;
experiment E3 checks the paper's deviation bound.
"""

from __future__ import annotations

import numpy as np

from repro.gossip.base import AsynchronousGossip
from repro.observability import events as _events
from repro.routing.cost import TransmissionCounter

__all__ = [
    "sample_alphas",
    "affine_pair_update",
    "AffineGossipKn",
    "PerturbedAffineGossipKn",
]

ALPHA_LOW = 1.0 / 3.0
ALPHA_HIGH = 1.0 / 2.0


def sample_alphas(n: int, rng: np.random.Generator) -> np.ndarray:
    """Coefficients ``α_i`` drawn uniformly from the paper's ``(1/3, 1/2)``."""
    if n <= 0:
        raise ValueError(f"need a positive node count, got {n}")
    return rng.uniform(ALPHA_LOW, ALPHA_HIGH, size=n)


def affine_pair_update(
    values: np.ndarray,
    i: int,
    j: int,
    alpha_i: float,
    alpha_j: float,
) -> None:
    """Apply the cross-weighted affine update to the pair ``(i, j)`` in place.

    Both sides are computed from pre-exchange values *before* either row
    is written: on an ``(n, k)`` field matrix ``values[i]`` is a live row
    view, and writing it first would silently feed post-exchange values
    into ``j``'s update (scalar state never hits this — indexing a 1-D
    array copies).
    """
    if i == j:
        raise ValueError(f"affine update needs two distinct nodes, got {i}=={j}")
    xi, xj = values[i], values[j]
    new_i = (1.0 - alpha_i) * xi + alpha_j * xj
    new_j = (1.0 - alpha_j) * xj + alpha_i * xi
    values[i] = new_i
    values[j] = new_j


class AffineGossipKn(AsynchronousGossip):
    """Lemma 1 dynamics: affine pairwise exchanges on the complete graph.

    Parameters
    ----------
    alphas:
        Per-node coefficients; defaults to a uniform draw from
        ``(1/3, 1/2)`` using ``alpha_rng``.  Values outside ``(0, 1)`` make
        the update non-contracting — permitted here deliberately, because
        experiment E10 uses this class to demonstrate the instability the
        paper's occupancy concentration guards against.
    """

    name = "affine-kn"

    #: Cross-weighted pair updates are row arithmetic with both sides
    #: computed before either row is written (no view aliasing), so an
    #: (n, k) field matrix updates column by column exactly like k
    #: scalar runs sharing one pair sequence.  Every column must be
    #: mean-zero (see ``requires_centered_field``).
    supports_multifield = True

    #: Lemma 1's contraction is a statement about the mean-zero subspace
    #: (the paper's WLOG ``x̄(0) = 0``): the cross-weighted update does
    #: not preserve a constant offset pointwise, so an uncentred field
    #: stalls at a deviation floor instead of converging.  The engine
    #: warns when such a field is handed to this protocol.
    requires_centered_field = True

    #: The comparator has no radio model: exchanges pick *any* node of
    #: ``K_n`` and write to it directly, so fault dynamics (which freeze
    #: crashed nodes' values and sever routed transmissions) have nothing
    #: coherent to attach to — the dynamics layer rejects it.
    supports_dynamics = False

    def __init__(
        self,
        n: int,
        alphas: np.ndarray | None = None,
        alpha_rng: np.random.Generator | None = None,
    ):
        super().__init__(n)
        if alphas is None:
            if alpha_rng is None:
                raise ValueError("provide either explicit alphas or alpha_rng")
            alphas = sample_alphas(n, alpha_rng)
        alphas = np.asarray(alphas, dtype=np.float64)
        if alphas.shape != (n,):
            raise ValueError(
                f"need one alpha per node: expected shape ({n},), got {alphas.shape}"
            )
        self.alphas = alphas

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        partner = self._choose_partner(node, rng)
        affine_pair_update(
            values, node, partner, self.alphas[node], self.alphas[partner]
        )
        counter.charge(2, "exchange")
        recorder = _events.active()
        if recorder is not None:
            # The per-node alphas ride the start event once; each event
            # only needs the pair.
            recorder.emit(
                {"e": "pairs", "op": "affine", "pairs": [[node, partner]]}
            )

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Batched ticks: partners drawn as one vectorized call per block.

        Partner selection maps one double per tick onto the ``n - 1``
        other nodes (``⌊u · (n−1)⌋``, shifted past the owner), so the
        block consumes exactly ``len(owners)`` draws regardless of
        chunking.  The cross-weighted pair updates themselves stay
        sequential — each exchange reads the values earlier exchanges in
        the block wrote, exactly as the scalar loop would.
        """
        picks = rng.random(len(owners))
        alphas = self.alphas
        last = self.n - 1
        recorder = _events.active()
        pairs = [] if recorder is not None else None
        for node, pick in zip(owners.tolist(), picks.tolist()):
            partner = int(pick * last)
            if partner >= node:
                partner += 1
            affine_pair_update(
                values, node, partner, alphas[node], alphas[partner]
            )
            if pairs is not None:
                pairs.append([node, partner])
        if len(owners):
            counter.charge(2 * len(owners), "exchange")
            if pairs is not None:
                recorder.emit({"e": "pairs", "op": "affine", "pairs": pairs})

    def tick_budget(self, epsilon: float) -> int:
        # Lemma 1: rate (1 - 1/2n) per tick => ~2n·log(1/ε²) ticks; 30x slack.
        log_term = 1 + 2 * abs(np.log(max(epsilon, 1e-12)))
        return int(60 * self.n * log_term) + 1_000

    def _choose_partner(self, node: int, rng: np.random.Generator) -> int:
        partner = int(rng.integers(self.n - 1))
        return partner + 1 if partner >= node else partner


class PerturbedAffineGossipKn(AffineGossipKn):
    """Lemma 2 dynamics: affine exchanges with bounded antisymmetric noise.

    Each exchange adds ``+ν`` to one side and ``−ν`` to the other with
    ``|ν| < noise_bound``, so the sum stays conserved while the deviation
    floor rises — the model of error injected by imperfect intra-square
    averaging one level down the hierarchy.
    """

    name = "affine-kn-perturbed"

    def __init__(
        self,
        n: int,
        noise_bound: float,
        alphas: np.ndarray | None = None,
        alpha_rng: np.random.Generator | None = None,
    ):
        super().__init__(n, alphas=alphas, alpha_rng=alpha_rng)
        if noise_bound < 0:
            raise ValueError(f"noise bound must be non-negative, got {noise_bound}")
        self.noise_bound = noise_bound

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        partner = self._choose_partner(node, rng)
        affine_pair_update(
            values, node, partner, self.alphas[node], self.alphas[partner]
        )
        # Lemma 2: y_i gets +ν(t−1) and y_j gets −ν(t−1), i.e. the noise
        # perturbs exactly the exchanging pair, antisymmetrically.
        nu = rng.uniform(-self.noise_bound, self.noise_bound)
        values[node] += nu
        values[partner] -= nu
        counter.charge(2, "exchange")
        recorder = _events.active()
        if recorder is not None:
            recorder.emit(
                {
                    "e": "pairs",
                    "op": "affine",
                    "pairs": [[node, partner]],
                    "nus": [float(nu)],
                }
            )

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Batched ticks: two doubles per tick (partner pick, noise).

        The draws come from one ``(len(owners), 2)`` call, filled from
        the stream in row-major order — tick ``t`` always consumes
        doubles ``2t`` and ``2t + 1``, so chunking a run into different
        block sizes leaves the stream alignment (and hence the results)
        unchanged.
        """
        draws = rng.random((len(owners), 2))
        alphas = self.alphas
        last = self.n - 1
        bound = self.noise_bound
        recorder = _events.active()
        pairs = [] if recorder is not None else None
        nus = [] if recorder is not None else None
        for index, node in enumerate(owners.tolist()):
            partner = int(draws[index, 0] * last)
            if partner >= node:
                partner += 1
            affine_pair_update(
                values, node, partner, alphas[node], alphas[partner]
            )
            # ±ν on the exchanging pair, exactly as tick() composes it:
            # antisymmetric, sum-conserving, one ν per tick perturbing
            # every column alike.
            nu = (2.0 * draws[index, 1] - 1.0) * bound
            values[node] += nu
            values[partner] -= nu
            if pairs is not None:
                pairs.append([node, partner])
                nus.append(nu)
        if len(owners):
            counter.charge(2 * len(owners), "exchange")
            if pairs is not None:
                recorder.emit(
                    {"e": "pairs", "op": "affine", "pairs": pairs, "nus": nus}
                )
