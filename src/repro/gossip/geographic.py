"""Geographic gossip (Dimakis, Sarwate, Wainwright — IPSN 2006).

The stronger baseline the paper improves on (Section 1.1): "each node
exchanges its value with the node nearest to a position chosen randomly on
□, and both nodes replace their values by the average ...  Rejection
sampling is used to make the distribution roughly uniform on nodes.  The
routing takes Õ(√n) hops w.h.p., but since the mixing time on the complete
graph is O(1), one obtains an algorithm using Õ(n^1.5) transmissions."

Target selection modes (DESIGN.md):

* ``"uniform"`` — oracle-uniform random node: what rejection sampling
  achieves, without its constant-factor overhead.  Default for scaling
  experiments.
* ``"rejection"`` — full rejection sampling; every rejected proposal costs
  a routed round trip to the proposed node (category ``route_rejected``).
* ``"position"`` — raw nearest-node-to-random-position (Voronoi-biased);
  the ablation showing why rejection matters.

An exchange applies updates only if both routes deliver, so the global sum
is conserved even in the (vanishingly rare) presence of routing voids.
"""

from __future__ import annotations

import numpy as np

from repro.gossip.base import AsynchronousGossip
from repro.graphs.rgg import RandomGeometricGraph
from repro.observability import events as _events
from repro.routing.cache import CachedGreedyRouter
from repro.routing.cost import TransmissionCounter
from repro.routing.greedy import GreedyRouter
from repro.routing.rejection import RejectionSampler

__all__ = ["GeographicGossip"]

_TARGET_MODES = ("uniform", "rejection", "position")


class GeographicGossip(AsynchronousGossip):
    """Routed pairwise averaging with (nearly) uniform random targets.

    Parameters
    ----------
    graph:
        The geometric random graph to run on.
    target_mode:
        One of ``"uniform"``, ``"rejection"``, ``"position"`` (see module
        docstring).
    reference_quantile:
        Rejection-sampler tuning (only used in ``"rejection"`` mode).
    """

    name = "geographic"
    #: Endpoint averaging is pure row arithmetic (see
    #: :class:`~repro.gossip.randomized.RandomizedGossip`); routing and
    #: target selection never read the values, so an (n, k) field matrix
    #: rides the identical routes the scalar run takes.
    supports_multifield = True

    def __init__(
        self,
        graph: RandomGeometricGraph,
        target_mode: str = "uniform",
        reference_quantile: float = 0.5,
    ):
        super().__init__(graph.n)
        if target_mode not in _TARGET_MODES:
            raise ValueError(
                f"unknown target mode {target_mode!r}; pick one of {_TARGET_MODES}"
            )
        self.graph = graph
        self.router = GreedyRouter(graph)
        # The batched tick path routes through the exact memoized router;
        # the scalar loop keeps the plain one (bit-identical legacy path).
        self.route_cache = CachedGreedyRouter(self.router)
        self.target_mode = target_mode
        self.sampler = (
            RejectionSampler(graph.positions, reference_quantile)
            if target_mode == "rejection"
            else None
        )
        self.failed_exchanges = 0

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        target = self._choose_target(node, values, counter, rng)
        if target is None or target == node:
            return
        forward, backward = self.router.round_trip(node, target, counter)
        recorder = _events.active()
        if not (forward.delivered and backward.delivered):
            # A routing void: abort with no update so the sum is conserved.
            self.failed_exchanges += 1
            if recorder is not None:
                recorder.emit({"e": "abort"})
            return
        average = 0.5 * (values[node] + values[target])
        values[node] = average
        values[target] = average
        if recorder is not None:
            # No "cat": the routed cost was charged (and emitted) at the
            # router layer; this event carries only the value update.
            recorder.emit(
                {"e": "pairs", "op": "avg", "pairs": [[node, target]]}
            )

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Batched ticks: targets pre-sampled per block, routes memoized.

        ``uniform`` mode consumes one double per tick (mapped onto the
        ``n − 1`` other nodes); ``position`` mode consumes two (the random
        location).  Both come from a single vectorized call per block, so
        the stream advances by a fixed number of draws per tick and
        chunking cannot change the results.  ``rejection`` mode draws a
        *variable* number of doubles per proposal loop, which only stays
        chunk-invariant when consumed strictly in tick order — so it runs
        the scalar per-tick loop (routes still memoized are not needed
        there; each tick routes through :attr:`router` as usual).

        Exchanges are applied sequentially in owner order with the same
        abort-on-void rule as :meth:`tick`; routed costs are charged via
        :attr:`route_cache`, which replays greedy paths exactly.
        """
        if self.target_mode == "rejection":
            for node in owners:
                self.tick(int(node), values, counter, rng)
            return
        if self.target_mode == "uniform":
            picks = rng.random(len(owners))
            last = self.n - 1
            targets = []
            for node, pick in zip(owners.tolist(), picks.tolist()):
                target = int(pick * last)
                targets.append(target + 1 if target >= node else target)
        else:  # position: nearest node to a pre-sampled random location
            points = rng.random((len(owners), 2))
            targets = [
                self.graph.nearest_node(points[index])
                for index in range(len(owners))
            ]
        route = self.route_cache.round_trip
        recorder = _events.active()
        pairs = [] if recorder is not None else None
        for node, target in zip(owners.tolist(), targets):
            if target == node:
                continue
            forward, backward = route(node, target, counter)
            if not (forward.delivered and backward.delivered):
                self.failed_exchanges += 1
                if recorder is not None:
                    recorder.emit({"e": "abort"})
                continue
            average = 0.5 * (values[node] + values[target])
            values[node] = average
            values[target] = average
            if pairs is not None:
                pairs.append([node, target])
        if pairs:
            recorder.emit({"e": "pairs", "op": "avg", "pairs": pairs})

    def tick_budget(self, epsilon: float) -> int:
        # O(n log(1/ε)) exchanges suffice (complete-graph mixing); 40x slack.
        log_term = 1 + abs(np.log(max(epsilon, 1e-12)))
        return int(40 * self.n * log_term) + 10_000

    # -- target selection ---------------------------------------------------

    def _choose_target(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> int | None:
        if self.target_mode == "uniform":
            target = int(rng.integers(self.n - 1))
            return target + 1 if target >= node else target
        if self.target_mode == "position":
            return self.graph.nearest_node(rng.random(2))
        return self._rejection_target(node, counter, rng)

    def _rejection_target(
        self,
        node: int,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> int | None:
        """Propose-and-reject; each rejected proposal costs a round trip."""
        assert self.sampler is not None
        max_attempts = 50  # expected_proposals() is small; this is a backstop
        for _ in range(max_attempts):
            proposal = self.sampler.propose(rng)
            accepted = rng.random() < self.sampler._accept[proposal]
            if accepted:
                return proposal
            if proposal != node:
                forward, backward = self.router.round_trip(
                    node, proposal, counter, category="route_rejected"
                )
                if not (forward.delivered and backward.delivered):
                    self.failed_exchanges += 1
                    recorder = _events.active()
                    if recorder is not None:
                        recorder.emit({"e": "abort"})
                    return None
        return None
