"""Spatial gossip (Kempe–Kleinberg–Demers) as an extra baseline.

The paper's related work ([7]: "Spatial gossip and resource location
protocols", STOC 2001) interpolates between nearest-neighbour and
uniform-target gossip: a node at position ``u`` picks its exchange
partner ``v`` with probability proportional to ``1/dist(u, v)^ρ``.

* ``ρ`` large  → mostly local partners (randomized-gossip-like mixing,
  cheap exchanges);
* ``ρ → 0``    → nearly uniform partners (geographic-gossip-like mixing,
  expensive routed exchanges).

The paper's §1.1 observes that "simply altering the probability
distribution with which a node picks targets seems to be
counterproductive" — long-range exchanges pay for themselves only at the
uniform extreme.  This implementation makes that observation measurable:
experiment E15 sweeps ρ and shows the cost is minimised at the uniform
end (ρ ≈ 0), never in between — the motivation for the paper's entirely
different (hierarchy + affine) route to beating ``Õ(n^1.5)``.

Exchanges are routed greedily and averaged convexly, with the same
delivery/abort semantics as :class:`~repro.gossip.geographic.GeographicGossip`.
"""

from __future__ import annotations

import numpy as np

from repro.gossip.base import AsynchronousGossip
from repro.graphs.rgg import RandomGeometricGraph
from repro.observability import events as _events
from repro.routing.cache import CachedGreedyRouter
from repro.routing.cost import TransmissionCounter
from repro.routing.greedy import GreedyRouter

__all__ = ["SpatialGossip"]


class SpatialGossip(AsynchronousGossip):
    """Distance-biased routed gossip: ``P(partner v) ∝ dist(u, v)^{-rho}``.

    Parameters
    ----------
    graph:
        The geometric random graph.
    rho:
        Distance-bias exponent; 0 recovers uniform targets, large values
        approach nearest-neighbour gossip.
    """

    name = "spatial"
    #: Endpoint averaging is pure row arithmetic; target CDFs depend only
    #: on positions, so (n, k) field matrices mix on the scalar run's routes.
    supports_multifield = True

    def __init__(self, graph: RandomGeometricGraph, rho: float = 2.0):
        super().__init__(graph.n)
        if rho < 0:
            raise ValueError(f"rho must be non-negative, got {rho}")
        self.graph = graph
        self.rho = rho
        self.router = GreedyRouter(graph)
        # Batched ticks route through the exact memoized router; the
        # scalar loop keeps the plain one (bit-identical legacy path).
        self.route_cache = CachedGreedyRouter(self.router)
        self.failed_exchanges = 0
        self._cumulative = self._target_cdfs()

    def _target_cdfs(self) -> list[np.ndarray]:
        """Per-node cumulative target distributions over all other nodes.

        O(n²) memory; spatial gossip is a study baseline used at moderate
        n (the library's scaling experiments use the paper's algorithms).
        """
        positions = self.graph.positions
        cdfs = []
        for u in range(self.n):
            diff = positions - positions[u]
            dist = np.hypot(diff[:, 0], diff[:, 1])
            # Coincident sensors would get infinite weight; clamp to a tiny
            # floor so they are simply "very likely", not a division hazard.
            dist = np.maximum(dist, 1e-9)
            dist[u] = np.inf  # never pick yourself
            weights = dist ** (-self.rho) if self.rho > 0 else np.ones(self.n)
            weights[u] = 0.0
            total = weights.sum()
            if not np.isfinite(total) or total <= 0:
                weights = np.ones(self.n)
                weights[u] = 0.0
                total = weights.sum()
            cdfs.append(np.cumsum(weights / total))
        return cdfs

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        target = int(np.searchsorted(self._cumulative[node], rng.random()))
        target = min(target, self.n - 1)
        if target == node:
            return
        forward, backward = self.router.round_trip(node, target, counter)
        recorder = _events.active()
        if not (forward.delivered and backward.delivered):
            self.failed_exchanges += 1
            if recorder is not None:
                recorder.emit({"e": "abort"})
            return
        average = 0.5 * (values[node] + values[target])
        values[node] = average
        values[target] = average
        if recorder is not None:
            # Routed cost already emitted at the router layer (no "cat").
            recorder.emit(
                {"e": "pairs", "op": "avg", "pairs": [[node, target]]}
            )

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Batched ticks: one vectorized CDF draw per block, routes memoized.

        Target selection inverts the owner's cumulative distribution with
        one double per tick (exactly the scalar rule), drawn in a single
        call per block so chunking never shifts the stream.  Exchanges are
        applied sequentially with the scalar loop's abort-on-void rule.
        """
        picks = rng.random(len(owners))
        cumulative = self._cumulative
        route = self.route_cache.round_trip
        last = self.n - 1
        recorder = _events.active()
        pairs = [] if recorder is not None else None
        for node, pick in zip(owners.tolist(), picks.tolist()):
            target = min(int(np.searchsorted(cumulative[node], pick)), last)
            if target == node:
                continue
            forward, backward = route(node, target, counter)
            if not (forward.delivered and backward.delivered):
                self.failed_exchanges += 1
                if recorder is not None:
                    recorder.emit({"e": "abort"})
                continue
            average = 0.5 * (values[node] + values[target])
            values[node] = average
            values[target] = average
            if pairs is not None:
                pairs.append([node, target])
        if pairs:
            recorder.emit({"e": "pairs", "op": "avg", "pairs": pairs})

    def tick_budget(self, epsilon: float) -> int:
        # Between randomized (n²) and geographic (n); allow the worst.
        log_term = 1 + abs(np.log(max(epsilon, 1e-12)))
        return int(30 * self.n * self.n * log_term / max(np.log(self.n), 1.0)) + 10_000
