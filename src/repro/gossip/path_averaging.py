"""Randomized path averaging (Bénézit, Dimakis, Thiran, Vetterli 2008).

The order-optimal endpoint of the routed-gossip lineage this repository
reproduces (arXiv:0802.2587, "Order-optimal consensus through randomized
path averaging").  Geographic gossip routes Õ(√n) hops per exchange but
averages only the two endpoints; path averaging keeps the same routed
walk and averages the value over *every node the route visits*, so one
routed operation mixes Θ(√n) values instead of 2.  That single change
drops the transmission cost on ``G(n, r)`` from Õ(n^1.5) to the optimal
Õ(n) — the benchmark E9-PA measures the separation directly against
:class:`~repro.gossip.geographic.GeographicGossip`.

Execution model per clock tick of the owner ``u``:

1. ``u`` draws a target (a uniform random node, or the greedy sink of a
   uniform random position — the same two modes geographic gossip has);
2. the packet walks the greedy route towards the target, accumulating
   the running sum of the values it passes (one transmission per hop);
3. the final average is flashed back along the reverse path (one more
   transmission per hop), and every node on the route adopts it.

The per-hop cost is therefore ``2 · hops`` per completed operation —
identical in shape to geographic gossip's round trip, so the measured
cost separation is purely the protocol's doing, never the accounting's.

In ``"uniform"`` mode a routing void (greedy local minimum before the
target) aborts the operation with no update, conserving the global sum;
the forward hops already walked are still charged, exactly as in
:class:`~repro.gossip.geographic.GeographicGossip`.  In ``"position"``
mode the greedy sink *is* the delivery rule, so every operation
completes.

A quick sanity check — the global sum is invariant under ticks:

>>> import numpy as np
>>> from repro.graphs.rgg import RandomGeometricGraph
>>> from repro.routing.cost import TransmissionCounter
>>> rng = np.random.default_rng(7)
>>> graph = RandomGeometricGraph.sample_connected(32, rng, radius_constant=3.0)
>>> protocol = PathAveragingGossip(graph)
>>> values = rng.normal(size=32)
>>> before = values.sum()
>>> counter = TransmissionCounter()
>>> for node in range(10):
...     protocol.tick(node, values, counter, rng)
>>> bool(abs(values.sum() - before) < 1e-9)
True
"""

from __future__ import annotations

import numpy as np

from repro.gossip.base import AsynchronousGossip
from repro.graphs.rgg import RandomGeometricGraph
from repro.observability import events as _events
from repro.routing.cache import CachedGreedyRouter
from repro.routing.cost import TransmissionCounter
from repro.routing.greedy import GreedyRouter

__all__ = ["PathAveragingGossip"]

_TARGET_MODES = ("uniform", "position")


class PathAveragingGossip(AsynchronousGossip):
    """Greedy-routed averaging over every node of the route.

    Parameters
    ----------
    graph:
        The positioned graph to run on (any :data:`repro.graphs.generators.TOPOLOGIES`
        member; greedy delivery is only guaranteed on the geometric families).
    target_mode:
        ``"uniform"`` — route to an oracle-uniform random node (aborts on
        a routing void); ``"position"`` — route greedily towards a uniform
        random location and average over the walk to its greedy sink
        (never aborts).

    Attributes
    ----------
    failed_exchanges:
        Number of ticks aborted at a routing void (``"uniform"`` mode) or
        severed by message loss on a dynamic substrate (any mode).
    flash_channel:
        Optional per-hop loss stream
        (:class:`~repro.dynamics.schedule.LossChannel`) applied to the
        reverse broadcast of the final average; ``None`` (the default)
        keeps the flash lossless.  Set by
        :class:`~repro.dynamics.overlay.DynamicGossip`, whose
        :class:`~repro.dynamics.overlay.LossyRouter` covers the forward
        walk — together the whole ``2 · hops`` transaction is subject to
        loss, and a loss anywhere aborts it with no update (the hops
        already attempted are charged under ``"route_lost"``).
    """

    name = "path-averaging"
    flash_channel = None
    #: The route average handles (n, k) field matrices column by column
    #: (see :meth:`_average_route` for the reduction-order subtlety that
    #: keeps column 0 bit-identical to a scalar run).
    supports_multifield = True

    def __init__(
        self,
        graph: RandomGeometricGraph,
        target_mode: str = "uniform",
    ):
        super().__init__(graph.n)
        if target_mode not in _TARGET_MODES:
            raise ValueError(
                f"unknown target mode {target_mode!r}; pick one of {_TARGET_MODES}"
            )
        self.graph = graph
        self.router = GreedyRouter(graph)
        # The batched tick path routes through the exact memoized router;
        # the scalar loop keeps the plain one (bit-identical legacy path).
        self.route_cache = CachedGreedyRouter(self.router)
        self.target_mode = target_mode
        self.failed_exchanges = 0

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """One path-averaging operation owned by ``node``, in place."""
        if self.target_mode == "uniform":
            target = int(rng.integers(self.n - 1))
            if target >= node:
                target += 1
            route = self.router.route_to_node(node, target, counter)
            if not route.delivered:
                # A routing void: abort with no update so the sum is conserved.
                self.failed_exchanges += 1
                self._emit_abort()
                return
        else:
            route = self.router.route_to_position(node, rng.random(2), counter)
            if not route.delivered:
                # Only a lossy substrate can sever a position walk; the
                # packet (and its running sum) died in flight — abort.
                self.failed_exchanges += 1
                self._emit_abort()
                return
        self._average_route(route.path, route.hops, values, counter)

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Batched ticks: targets pre-sampled per block, routes memoized.

        ``uniform`` mode consumes one double per tick (mapped onto the
        ``n − 1`` other nodes), ``position`` mode two (the random
        location); both come from a single vectorized call per block, so
        the stream advances a fixed number of draws per tick and chunking
        cannot change the results.  Node-target routes replay through
        :attr:`route_cache`'s next-hop columns (bit-identical paths and
        charges to the scalar router); position targets have no per-node
        column to memoize and walk the plain router.  Averages are
        applied sequentially in owner order with the same abort-on-void
        rule as :meth:`tick`.
        """
        if self.target_mode == "uniform":
            picks = rng.random(len(owners))
            last = self.n - 1
            route_to_node = self.route_cache.route_to_node
            for node, pick in zip(owners.tolist(), picks.tolist()):
                target = int(pick * last)
                if target >= node:
                    target += 1
                route = route_to_node(node, target, counter)
                if not route.delivered:
                    self.failed_exchanges += 1
                    self._emit_abort()
                    continue
                self._average_route(route.path, route.hops, values, counter)
        else:
            points = rng.random((len(owners), 2))
            for index, node in enumerate(owners.tolist()):
                route = self.router.route_to_position(
                    node, points[index], counter
                )
                if not route.delivered:
                    self.failed_exchanges += 1
                    self._emit_abort()
                    continue
                self._average_route(route.path, route.hops, values, counter)

    def tick_budget(self, epsilon: float) -> int:
        """Order-optimality budget: O(n log(1/ε)) operations, 40x slack.

        One operation mixes a whole Θ(√n)-node route, so convergence is
        at least as fast (in ticks) as geographic gossip's complete-graph
        emulation; the same generous budget applies.
        """
        log_term = 1 + abs(np.log(max(epsilon, 1e-12)))
        return int(40 * self.n * log_term) + 10_000

    def _average_route(
        self,
        path: tuple[int, ...],
        hops: int,
        values: np.ndarray,
        counter: TransmissionCounter,
    ) -> None:
        """Average ``values`` over ``path`` and charge the return flash.

        The forward hops were charged by the routing call; the reverse
        broadcast of the final average charges the same hop count again
        (category ``route``, mirroring the round-trip accounting of the
        endpoint-averaging protocols).  Greedy paths visit strictly
        closer nodes each hop, so ``path`` never repeats a node and the
        in-place mean conserves the sum up to float rounding.

        With a :attr:`flash_channel` the reverse broadcast itself can be
        severed: the transaction is all-or-nothing (a partial flash would
        leak mass), so a loss at any flash hop charges the transmissions
        attempted under ``"route_lost"`` and aborts with no update.

        Multi-field state averages column by column.  The reduction must
        *not* be ``values[nodes].mean(axis=0)``: NumPy accumulates
        strided axis-0 reductions in a different order than contiguous
        1-D reductions, which would break the column-0 bit-identity
        contract.  Transposing to a contiguous ``(k, hops+1)`` block
        makes each column's mean the exact kernel the scalar path runs.
        """
        if hops < 1:
            return
        recorder = _events.active()
        if self.flash_channel is not None:
            delivered, attempted = self.flash_channel.attempt(hops)
            if not delivered:
                counter.charge(attempted, "route_lost")
                self.failed_exchanges += 1
                if recorder is not None:
                    recorder.emit(
                        {"e": "drop", "tx": attempted, "cat": "route_lost"}
                    )
                    recorder.emit({"e": "abort"})
                return
        counter.charge(hops, "route")
        nodes = np.asarray(path, dtype=np.int64)
        if recorder is not None:
            # "flash" is the reverse-broadcast hop count charged above;
            # the forward hops were emitted by the routing layer.
            recorder.emit({"e": "path", "nodes": list(path), "flash": hops})
        block = values[nodes]
        if block.ndim == 1:
            values[nodes] = block.mean()
        else:
            values[nodes] = np.ascontiguousarray(block.T).mean(axis=1)

    def _emit_abort(self) -> None:
        recorder = _events.active()
        if recorder is not None:
            recorder.emit({"e": "abort"})
