"""Gossip averaging algorithms.

The protocol family, following the routed-gossip lineage the paper sits
in (see the protocol × topology matrix in the README):

* :class:`~repro.gossip.randomized.RandomizedGossip` — Boyd et al. (2005):
  convex averaging with a uniform random neighbour; ``Õ(n²)`` transmissions
  on a geometric random graph.
* :class:`~repro.gossip.geographic.GeographicGossip` — Dimakis et al.
  (2006): convex averaging with a routed, nearly uniform random node;
  ``Õ(n^1.5)`` transmissions.
* :class:`~repro.gossip.spatial.SpatialGossip` — Kempe–Kleinberg–Demers
  distance-biased targets, the interpolation baseline.
* :class:`~repro.gossip.path_averaging.PathAveragingGossip` — Bénézit et
  al. (2008): the routed walk averages *every node on the route*, giving
  order-optimal ``Õ(n)`` transmissions.
* the paper's contribution — hierarchical gossip with *affine* updates
  (:mod:`repro.gossip.hierarchical`), ``n^{1+o(1)}`` transmissions; its
  complete-graph core dynamics (Lemma 1/2) live in
  :mod:`repro.gossip.affine`.

All tick-driven algorithms run under the same asynchronous-clock driver
(:class:`~repro.gossip.base.AsynchronousGossip`) and produce the same
:class:`~repro.gossip.base.GossipRunResult`.
"""

from repro.gossip.affine import (
    AffineGossipKn,
    PerturbedAffineGossipKn,
    affine_pair_update,
    sample_alphas,
)
from repro.gossip.base import AsynchronousGossip, GossipRunResult
from repro.gossip.geographic import GeographicGossip
from repro.gossip.path_averaging import PathAveragingGossip
from repro.gossip.randomized import RandomizedGossip
from repro.gossip.spatial import SpatialGossip
from repro.gossip.tree_aggregation import (
    TreeAggregationResult,
    transmission_lower_bound,
    tree_aggregate,
)

__all__ = [
    "AffineGossipKn",
    "AsynchronousGossip",
    "GeographicGossip",
    "GossipRunResult",
    "PathAveragingGossip",
    "PerturbedAffineGossipKn",
    "RandomizedGossip",
    "SpatialGossip",
    "TreeAggregationResult",
    "affine_pair_update",
    "sample_alphas",
    "transmission_lower_bound",
    "tree_aggregate",
]
