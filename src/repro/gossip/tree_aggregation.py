"""Spanning-tree aggregation: the Θ(n) optimality reference.

The paper's optimality argument (§1.2): "The exponent 1 + o(1) is
asymptotically optimal, since every node must make at least one
transmission for an averaging algorithm to work."  The natural scheme
achieving Θ(n) — with coordination the gossip model deliberately avoids —
is converge-cast up a spanning tree followed by a broadcast down:

1. build a BFS tree from a root (cost: one flood, ``n`` transmissions);
2. leaves send ``(sum, count)`` up; every inner node aggregates its
   subtree and forwards one packet to its parent (``n − 1``);
3. the root computes the average and broadcasts it down (``n − 1``).

Total ``3n − 2`` transmissions and an *exact* average.  It is not a
gossip algorithm (it needs a root, tree state, and is fragile to any
topology change), but it pins the lower-envelope line in experiment E7
and the `transmission_lower_bound` every algorithm is measured against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.routing.cost import TransmissionCounter

__all__ = ["TreeAggregationResult", "tree_aggregate", "transmission_lower_bound"]


@dataclass(frozen=True)
class TreeAggregationResult:
    """Outcome of one converge-cast/broadcast round."""

    values: np.ndarray
    transmissions: int
    covered: int
    exact: bool

    @property
    def average(self) -> float:
        return float(self.values[0]) if len(self.values) else float("nan")


def transmission_lower_bound(n: int) -> int:
    """Every node must transmit at least once (paper §1.2): ``n``."""
    if n <= 0:
        raise ValueError(f"need a positive node count, got {n}")
    return n


def tree_aggregate(
    neighbors: list[np.ndarray],
    values: np.ndarray,
    root: int = 0,
    counter: TransmissionCounter | None = None,
) -> TreeAggregationResult:
    """Average via BFS-tree converge-cast + broadcast.

    Nodes outside the root's component keep their values (``exact`` is
    False in that case).  Transmission accounting: ``covered`` sends for
    the tree-building flood, ``covered − 1`` up, ``covered − 1`` down.
    """
    n = len(neighbors)
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (n,):
        raise ValueError(
            f"need one value per node: expected shape ({n},), got {values.shape}"
        )
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for {n} nodes")

    # Phase 1: BFS flood builds the tree (each covered node transmits once).
    parent = np.full(n, -1, dtype=np.int64)
    order = [root]
    seen = {root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in neighbors[u]:
            v = int(v)
            if v not in seen:
                seen.add(v)
                parent[v] = u
                order.append(v)
                queue.append(v)
    covered = len(order)

    # Phase 2: converge-cast (sum, count) in reverse BFS order.
    sums = values.copy()
    counts = np.ones(n)
    for node in reversed(order[1:]):
        p = int(parent[node])
        sums[p] += sums[node]
        counts[p] += counts[node]

    # Phase 3: broadcast the average down the tree.
    average = sums[root] / counts[root]
    out = values.copy()
    for node in order:
        out[node] = average

    transmissions = covered + 2 * (covered - 1)
    if counter is not None:
        counter.charge(covered, "flood")
        counter.charge(covered - 1, "convergecast")
        counter.charge(covered - 1, "broadcast")
    return TreeAggregationResult(
        values=out,
        transmissions=transmissions,
        covered=covered,
        exact=covered == n,
    )
