"""The literal Section 4.2 protocol: per-node state machines.

Every sensor runs the paper's tick handler:

* Level 0 — ``if local.state(s) = on: Near(s)``.
* Level ≥ 1 — with ``(s) = □_{i₁…i_r}``:

  1. if ``global.state(s) = on``:
     (a) if ``counter(s) = 0``: ``Activate.square(s)``;
     (b) with probability ``1 / (separation · time_r)``: ``Far(s)`` and
         ``counter(s) ← 0``  (the paper's rate ``n^{-a}·time(·)^{-1}``);
  2. if ``local.state(s) = on``: ``Near(s)``;
  3. if ``counter(s) ≥ time_r``: ``Deactivate.square(s)``;
     else ``counter(s) ← counter(s) + 1``.

Interpretation decisions (documented in DESIGN.md):

* D1 — `Far` targets are sibling squares (same parent).
* D2 — `Far` updates both endpoints symmetrically from pre-exchange values.
* Switching a supernode's ``global.state`` on also resets its counter to 0
  (the paper resets counters remotely in `Far` step 5; without a reset on
  activation a re-activated square could never re-run `A`).
* Practical time budgets replace the paper's ``(… )^16`` latencies (D5):
  a Level-1 node keeps its leaf active for ``Θ(m·log(m/ε))`` of its own
  ticks (so the square's members jointly perform the quadratic
  ``Θ(m²·log(m/ε))`` `Near` updates), and an internal node's budget covers
  its children's exchange phase at the separated `Far` rate.
* D8 — busy handshake.  The paper prevents a `Far` exchange from touching
  a square that is mid-averaging *statistically*, by rate separation
  ``n^a`` — unsimulatable, and anything far smaller lets exchanges compound
  a supernode's unmixed deviation by the affine gain repeatedly, which
  diverges.  The practical executor adds the deterministic equivalent: a
  supernode initiates `Far` only when its own square is quiescent
  (``counter ≥ time_r``), and a busy target aborts the exchange (the
  routed round trip is still charged; one status bit rides the handshake).
  Set ``separation ≥ n`` and ``busy_guard=False`` for the paper's pure
  rate-separated behaviour.

The machine runs under the standard asynchronous driver
(:class:`~repro.gossip.base.AsynchronousGossip`), so
``AsyncHierarchicalProtocol(...).run(values, epsilon, rng)`` behaves like
any other gossip algorithm in the library.  It is the demonstration-grade
executor — O(n) state, every transmission charged — while
:class:`~repro.gossip.hierarchical.rounds.HierarchicalGossip` is the
workhorse for scaling experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gossip.base import AsynchronousGossip, GossipRunResult
from repro.gossip.hierarchical.parameters import ProtocolParameters
from repro.gossip.hierarchical.rounds import CoefficientMode
from repro.graphs.rgg import RandomGeometricGraph
from repro.hierarchy.tree import HierarchyTree, SquareNode
from repro.routing.cost import TransmissionCounter
from repro.routing.flooding import flood
from repro.routing.greedy import GreedyRouter

__all__ = ["NodeState", "AsyncHierarchicalProtocol"]


@dataclass
class NodeState:
    """The paper's per-sensor protocol state.

    ``square_active`` tracks whether the square this sensor represents is
    currently switched on; `Activate.square`/`Deactivate.square` are
    idempotent and transmit only on actual state transitions (a literal
    re-flood every tick after the counter expires would charge unbounded
    cost for no state change).
    """

    local_on: bool = False
    global_on: bool = False
    counter: int = 0
    square_active: bool = False


class AsyncHierarchicalProtocol(AsynchronousGossip):
    """Poisson-clock execution of the Section 4 protocol.

    Parameters
    ----------
    graph, tree:
        Substrate and hierarchy (tree defaults to the practical build).
    parameters:
        Schedules; defaults to ``ProtocolParameters.practical`` with the
        run's ε at :meth:`run` time.
    separation:
        The practical stand-in for the paper's ``n^a`` rate-separation
        factor between a square's `Far` rate and its subordinate latency.
        Simulated wall-clock grows like ``separation^depth`` — this
        executor is the faithful-but-expensive demonstrator; use
        :class:`~repro.gossip.hierarchical.rounds.HierarchicalGossip` for
        scaling studies.
    coefficient_mode:
        `Far` coefficient rule (see
        :class:`~repro.gossip.hierarchical.rounds.CoefficientMode`).
    """

    name = "hierarchical-affine-async"

    def __init__(
        self,
        graph: RandomGeometricGraph,
        tree: HierarchyTree | None = None,
        parameters: ProtocolParameters | None = None,
        separation: float = 2.0,
        coefficient_mode: CoefficientMode = CoefficientMode.CLAMPED,
        busy_guard: bool = True,
    ):
        super().__init__(graph.n)
        if separation < 1:
            raise ValueError(f"separation must be >= 1, got {separation}")
        self.busy_guard = busy_guard
        self.graph = graph
        self.tree = tree if tree is not None else HierarchyTree.build(graph.positions)
        self.parameters = parameters
        self.separation = separation
        self.coefficient_mode = coefficient_mode
        self.router = GreedyRouter(graph)
        self._active_parameters = parameters
        self.states = [NodeState() for _ in range(graph.n)]
        # square represented by each supernode sensor (shallowest wins,
        # matching Level assignment).
        self._square_of: dict[int, SquareNode] = {}
        for square in self.tree.all_squares():
            if square.supernode >= 0 and square.supernode not in self._square_of:
                self._square_of[square.supernode] = square
        self._siblings: dict[int, list[SquareNode]] = {}
        for square in self.tree.all_squares():
            peers = [
                c for c in square.children if c.occupancy > 0 and c.supernode >= 0
            ]
            for child in peers:
                if child.supernode in self._square_of and (
                    self._square_of[child.supernode] is child
                ):
                    self._siblings[child.supernode] = peers
        self._leaf_neighbors = self._restrict_adjacency_to_leaves()
        self._time_budgets: list[int] = []
        self._epsilons: list[float] = []
        self.far_exchanges = 0
        self.routing_failures = 0
        self.busy_aborts = 0

    # -- driver integration --------------------------------------------------

    def run(
        self,
        initial_values: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        max_ticks: int | None = None,
        check_every: int | None = None,
        trace_thinning: float = 0.02,
    ) -> GossipRunResult:
        """Initialise states (root's ``global.state ← on``) and run."""
        parameters = self.parameters or ProtocolParameters.practical(
            self.graph.n, epsilon
        )
        self._time_budgets = self._practical_time_budgets(parameters)
        self._epsilons = [
            parameters.schedule.epsilon(d)
            for d in range(len(self.tree.factors) + 1)
        ]
        self._active_parameters = parameters
        for state in self.states:
            state.local_on = False
            state.global_on = False
            state.counter = 0
            state.square_active = False
        root = self.tree.root
        if root.supernode >= 0:
            self.states[root.supernode].global_on = True
        self.far_exchanges = 0
        self.routing_failures = 0
        self.busy_aborts = 0
        return super().run(
            initial_values,
            epsilon,
            rng,
            max_ticks=max_ticks,
            check_every=check_every,
            trace_thinning=trace_thinning,
        )

    def tick_budget(self, epsilon: float) -> int:
        # The root round lasts ~time_budget[0] root ticks ≈ n·budget ticks.
        budget = self._time_budgets[0] if self._time_budgets else 1_000
        return int(4 * self.n * budget) + 50_000

    # -- the paper's tick handler ---------------------------------------------

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        state = self.states[node]
        square = self._square_of.get(node)
        if square is None:
            # Level 0 sensor.
            if state.local_on:
                self._near(node, values, counter, rng)
            return
        depth = square.depth
        time_budget = self._time_budgets[depth]
        if state.global_on:
            if state.counter == 0:
                self._activate_square(node, square, counter)
            if depth > 0 and rng.random() < 1.0 / (self.separation * time_budget):
                if self._far(node, square, values, counter, rng):
                    # Far step: counter ← 0 (re-run A on the own square).
                    state.counter = 0
        if state.local_on:
            self._near(node, values, counter, rng)
        if state.counter >= time_budget:
            self._deactivate_square(node, square, counter)
        else:
            state.counter += 1

    # -- subroutines -----------------------------------------------------------

    def _near(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        local = self._leaf_neighbors[node]
        if local.size == 0:
            return
        partner = int(local[rng.integers(local.size)])
        average = 0.5 * (values[node] + values[partner])
        values[node] = average
        values[partner] = average
        counter.charge(2, "near")

    def _far(
        self,
        node: int,
        square: SquareNode,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> bool:
        """`Far(s)`: affine exchange with a uniformly random sibling square.

        Returns True iff an exchange was actually applied (D8 can defer or
        abort it), so the caller resets counters only when averaging must
        rerun.
        """
        state = self.states[node]
        if self.busy_guard and state.counter < self._time_budgets[square.depth]:
            return False  # own square still averaging (D8): defer
        siblings = self._siblings.get(node, [])
        pool = [s for s in siblings if s is not square]
        if not pool:
            return False
        partner_square = pool[int(rng.integers(len(pool)))]
        partner = partner_square.supernode
        forward, backward = self.router.round_trip(
            node, partner, counter, category="far"
        )
        if not (forward.delivered and backward.delivered):
            self.routing_failures += 1
            return False
        if self.busy_guard and (
            self.states[partner].counter < self._time_budgets[partner_square.depth]
        ):
            self.busy_aborts += 1
            return False  # partner mid-averaging: abort (round trip paid)
        x_i, x_j = values[node], values[partner]
        if self.coefficient_mode is CoefficientMode.CONVEX:
            values[node] = values[partner] = 0.5 * (x_i + x_j)
        else:
            beta = self._coefficient(square, partner_square)
            values[node] = x_i + beta * (x_j - x_i)
            values[partner] = x_j + beta * (x_i - x_j)
        # Far step 5 + Section 3 steps 5-6: both squares re-run A.  The
        # counter resets alone would race step 3's increment (counter would
        # be 1, not 0, at the next tick and Activate.square would never
        # fire), so activation is triggered here explicitly.
        self.states[partner].counter = 0
        self._activate_square(partner, partner_square, counter)
        self._activate_square(node, square, counter)
        self.far_exchanges += 1
        return True

    def _coefficient(self, square_i: SquareNode, square_j: SquareNode) -> float:
        gain = self._active_parameters.affine_gain
        expected = gain * square_i.expected_count
        smaller = min(square_i.occupancy, square_j.occupancy)
        if self.coefficient_mode is CoefficientMode.PAPER_EXPECTED:
            return expected
        if self.coefficient_mode is CoefficientMode.CLAMPED:
            return min(expected, 0.48 * smaller)
        if self.coefficient_mode is CoefficientMode.ACTUAL_MIN:
            return gain * smaller
        raise AssertionError(f"unhandled coefficient mode {self.coefficient_mode}")

    def _activate_square(
        self, node: int, square: SquareNode, counter: TransmissionCounter
    ) -> None:
        """`Activate.square(s)` — flood `local.state ← on` inside a leaf,
        or route `global.state ← on` to child supernodes."""
        state = self.states[node]
        if state.square_active:
            return  # idempotent: nothing to transmit
        state.square_active = True
        if square.is_leaf:
            reached = flood(
                self.graph.neighbors,
                node,
                square.members.tolist(),
                counter,
                category="activation",
            )
            for member in reached:
                self.states[member].local_on = True
        else:
            for child in square.children:
                if child.supernode >= 0 and child.occupancy > 0:
                    if child.supernode != node:
                        self.router.route_to_node(
                            node, child.supernode, counter, category="activation"
                        )
                    child_state = self.states[child.supernode]
                    if not child_state.global_on:
                        child_state.global_on = True
                        child_state.counter = 0  # see module docstring

    def _deactivate_square(
        self, node: int, square: SquareNode, counter: TransmissionCounter
    ) -> None:
        state = self.states[node]
        if not state.square_active:
            return  # idempotent: already off
        state.square_active = False
        if square.is_leaf:
            reached = flood(
                self.graph.neighbors,
                node,
                square.members.tolist(),
                counter,
                category="activation",
            )
            for member in reached:
                self.states[member].local_on = False
        else:
            for child in square.children:
                if child.supernode >= 0 and child.occupancy > 0:
                    if child.supernode != node:
                        self.router.route_to_node(
                            node, child.supernode, counter, category="activation"
                        )
                    self.states[child.supernode].global_on = False

    # -- setup helpers -----------------------------------------------------------

    def _practical_time_budgets(self, parameters: ProtocolParameters) -> list[int]:
        """Per-depth activity windows, counted in the owner's own ticks.

        Deepest supernodes keep their leaf active for
        ``near_multiplier · m̄ · log(m̄/ε)`` own-ticks (members jointly
        produce the quadratic `Near` work); each internal depth covers its
        children's exchange phase at the separated `Far` rate.
        """
        depths = len(self.tree.factors) + 1
        budgets = [0] * depths
        deepest = depths - 1
        mean_leaf = max(
            2.0,
            float(np.mean([leaf.occupancy for leaf in self.tree.leaves()])),
        )
        eps_leaf = parameters.schedule.epsilon(deepest)
        budgets[deepest] = int(
            math.ceil(
                parameters.near_multiplier
                * mean_leaf
                * max(1.0, math.log(mean_leaf / eps_leaf))
            )
        )
        for depth in range(deepest - 1, -1, -1):
            k = self.tree.factors[depth]
            eps = parameters.schedule.epsilon(depth)
            exchanges_needed = parameters.exchange_multiplier * max(
                1.0, math.log(k / eps)
            )
            budgets[depth] = int(
                math.ceil(
                    exchanges_needed * self.separation * budgets[depth + 1] * 2.0
                )
            )
        return budgets

    def _restrict_adjacency_to_leaves(self) -> list[np.ndarray]:
        """Per-sensor `Near` adjacency (leaf-local, ancestor fallback D10)."""
        return self.tree.local_adjacency(self.graph.neighbors, fallback=True)
