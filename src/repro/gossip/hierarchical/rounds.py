"""Round-based executor for the hierarchical affine protocol (Section 3).

A square's **round** is the unit of work:

1. *Activate*: the square's supernode switches its children on — a flood
   within leaf squares, greedy routes to child supernodes above leaves.
2. *Settle*: each child square runs its own round so its members share a
   common value (the overview's "Suppose that A has been run on each
   subsquare … independently").
3. *Exchange loop*: repeatedly, a uniformly random child supernode picks a
   uniformly random sibling, the pair exchanges values by greedy routing,
   both apply the **affine update** with coefficient ``(2/5)·E#``, and both
   involved child squares re-run their rounds.
4. *Deactivate*: mirror of activation.

Leaf rounds are plain `Near` gossip: each tick, a uniform member averages
with a uniform neighbour inside the leaf square.

Stopping (DESIGN.md, D5/D7): with ``adaptive=True`` (default) the exchange
and `Near` loops stop as soon as the square's internal deviation falls to
its depth's accuracy target ``ε_r · ‖x(0)‖`` (measured oracularly; costs
are still charged per transmission).  With ``adaptive=False`` loops run the
prescribed counts from :class:`~repro.gossip.hierarchical.parameters.
ProtocolParameters` — the paper's worst-case structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.gossip.base import GossipRunResult, check_state_shape
from repro.gossip.hierarchical.parameters import ProtocolParameters
from repro.graphs.rgg import RandomGeometricGraph
from repro.hierarchy.tree import HierarchyTree, SquareNode
from repro.metrics.error import deviation_norm, normalized_error
from repro.metrics.trace import ConvergenceTrace
from repro.routing.cost import TransmissionCounter
from repro.routing.flooding import flood
from repro.routing.greedy import GreedyRouter

__all__ = ["CoefficientMode", "RoundConfig", "RoundStats", "HierarchicalGossip"]


class CoefficientMode(Enum):
    """How the `Far` affine coefficient is computed (DESIGN.md, D4).

    * ``PAPER_EXPECTED`` — the literal ``(2/5)·E#(□)``: correct whenever
      occupancy concentrates (the paper's ``(log n)^8`` leaves), but can
      push the induced sum-coefficient ``α = (2/5)·E#/#`` past 1 on
      under-occupied simulation-scale leaves and destabilise (E10).
    * ``CLAMPED`` — ``min((2/5)·E#, 0.48·min(#_i, #_j))``: identical to the
      paper when concentration holds, provably contracting always.
    * ``ACTUAL_MIN`` — ``(2/5)·min(#_i, #_j)``: fully local robust variant.
    * ``CONVEX`` — plain supernode averaging (coefficient ``1/2`` on the
      supernode *values*, no mass weighting): the E14 ablation showing why
      affine combinations are the paper's point.
    """

    PAPER_EXPECTED = "paper_expected"
    CLAMPED = "clamped"
    ACTUAL_MIN = "actual_min"
    CONVEX = "convex"


@dataclass(frozen=True)
class RoundConfig:
    """Executor knobs.

    Attributes
    ----------
    coefficient_mode:
        See :class:`CoefficientMode`.
    adaptive:
        Stop loops on measured accuracy (True) or run prescribed counts.
    sibling_targets:
        `Far` targets are siblings within the same parent (D1).  ``False``
        targets any same-depth square — the E14 ablation (it breaks the
        recursion's locality and inflates routing cost).
    hard_cap_factor:
        Adaptive loops abort after ``hard_cap_factor ×`` the prescribed
        count (guards pathological placements; aborts are reported).
    """

    coefficient_mode: CoefficientMode = CoefficientMode.CLAMPED
    adaptive: bool = True
    sibling_targets: bool = True
    hard_cap_factor: float = 10.0


@dataclass
class RoundStats:
    """Aggregate execution statistics, split by hierarchy depth."""

    exchanges_by_depth: dict[int, int] = field(default_factory=dict)
    near_ticks_by_depth: dict[int, int] = field(default_factory=dict)
    rounds_by_depth: dict[int, int] = field(default_factory=dict)
    skipped_rounds_by_depth: dict[int, int] = field(default_factory=dict)
    routing_failures: int = 0
    cap_hits: int = 0

    def _bump(self, table: dict[int, int], depth: int, amount: int = 1) -> None:
        table[depth] = table.get(depth, 0) + amount


class HierarchicalGossip:
    """The paper's protocol, executed round by round.

    Parameters
    ----------
    graph:
        The geometric random graph.
    tree:
        A prebuilt hierarchy; defaults to
        :meth:`~repro.hierarchy.tree.HierarchyTree.build` with the
        practical leaf threshold.
    parameters:
        Accuracy/latency schedules; defaults to
        :meth:`ProtocolParameters.practical` at run time (using the run's
        ε).
    config:
        Executor behaviour (:class:`RoundConfig`).
    """

    name = "hierarchical-affine"

    #: The adaptive round structure (settle checks, exchange counts,
    #: `Far` retries) is an oracle over ONE field, and the affine `Far`
    #: coefficient can exceed 1 — an extrapolation the adaptive loop
    #: reins in for the field it measures.  Secondary columns of an
    #: (n, k) matrix would receive those β > 1 exchanges without their
    #: own settle checks and can *diverge* while the primary converges.
    #: The protocol therefore declares no multi-field support: the
    #: engine's per-column fallback runs each field through its own
    #: adaptive execution instead (`run_batched` +
    #: `MultiFieldFallbackWarning`), which is correct at the serial
    #: cost; this class's own ``run`` rejects matrix state outright.
    supports_multifield = False

    #: Tells the engine's fallback warning this is a design decision,
    #: not a missing audit — the warning must not advise flipping
    #: ``supports_multifield`` (doing so would let secondaries diverge).
    multifield_fallback_reason = (
        "its adaptive round structure is an oracle over one field"
    )

    def __init__(
        self,
        graph: RandomGeometricGraph,
        tree: HierarchyTree | None = None,
        parameters: ProtocolParameters | None = None,
        config: RoundConfig | None = None,
    ):
        self.graph = graph
        self.tree = tree if tree is not None else HierarchyTree.build(graph.positions)
        self.parameters = parameters
        self.config = config if config is not None else RoundConfig()
        self.router = GreedyRouter(graph)
        self.stats = RoundStats()
        self._leaf_neighbors = self._restrict_adjacency_to_leaves()
        self._depth_squares: dict[int, list[SquareNode]] = {
            depth: self.tree.squares_at_depth(depth)
            for depth in range(len(self.tree.factors) + 1)
        }

    # -- public API ----------------------------------------------------------

    def run(
        self,
        initial_values: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        max_root_rounds: int = 3,
        trace_thinning: float = 0.02,
    ) -> GossipRunResult:
        """Average to ``‖x(t)‖ ≤ ε‖x(0)‖``, counting every transmission.

        One root round normally suffices (its exchange loop is the
        top-level averaging); extra root rounds are retried if the target
        is missed (e.g. a stranded sensor inside a leaf).
        """
        initial_values = check_state_shape(initial_values, self.graph.n)
        if initial_values.ndim == 2:
            raise TypeError(
                f"{self.name!r} adapts its round structure to a single "
                "field (and its affine Far coefficient can exceed 1), so "
                "secondary columns of an (n, k) matrix would diverge "
                "unchecked; run matrix state through "
                "repro.engine.run_batched, whose per-column fallback "
                "executes each field adaptively on its own"
            )
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        parameters = self.parameters or ProtocolParameters.practical(
            self.graph.n, epsilon
        )
        values = initial_values.copy()
        counter = TransmissionCounter()
        trace = ConvergenceTrace(thinning=trace_thinning)
        self.stats = RoundStats()
        run_state = _RunState(
            values=values,
            counter=counter,
            rng=rng,
            parameters=parameters,
            scale=deviation_norm(initial_values),
            trace=trace,
            initial_values=initial_values,
        )
        error = normalized_error(values, initial_values)
        trace.force_record(0, 0, error)
        rounds = 0
        root_target = epsilon * run_state.scale
        while error > epsilon and rounds < max_root_rounds:
            self._round(self.tree.root, depth=0, target=root_target, state=run_state)
            error = normalized_error(values, initial_values)
            rounds += 1
        actions = sum(self.stats.near_ticks_by_depth.values()) + sum(
            self.stats.exchanges_by_depth.values()
        )
        trace.force_record(counter.total, actions, error)
        return GossipRunResult(
            algorithm=self.name,
            values=values,
            initial_values=initial_values,
            transmissions=counter.snapshot(),
            ticks=actions,
            converged=error <= epsilon,
            epsilon=epsilon,
            error=error,
            trace=trace,
        )

    # -- rounds ---------------------------------------------------------------

    def _round(
        self, node: SquareNode, depth: int, target: float, state: "_RunState"
    ) -> None:
        """Run one round of ``node``'s square to absolute accuracy ``target``.

        Targets propagate structurally: a square with ``k`` occupied
        children demands ``target / (2·√k)`` of each child, so the k
        residuals combine (in ℓ₂) to at most half the square's own budget
        — the adaptive analogue of the paper's ε_r schedule, sized so that
        the outer loop can actually reach its target instead of grinding
        against the children's collective noise floor.
        """
        if node.occupancy <= 1:
            return  # nothing to average
        if self.config.adaptive:
            if self._square_deviation(node, state) <= target:
                self.stats._bump(self.stats.skipped_rounds_by_depth, depth)
                return  # already internally consistent at this accuracy
        self.stats._bump(self.stats.rounds_by_depth, depth)
        if node.is_leaf:
            self._leaf_round(node, depth, target, state)
        else:
            self._internal_round(node, depth, target, state)

    def _leaf_round(
        self, node: SquareNode, depth: int, target: float, state: "_RunState"
    ) -> None:
        """`Near` gossip among the leaf's members until the target accuracy."""
        members = node.members
        self._activate_leaf(node, state)
        prescribed = state.parameters.near_ticks(node.occupancy, depth)
        cap = int(math.ceil(prescribed * self.config.hard_cap_factor))
        check_period = max(1, len(members))
        ticks = 0
        while ticks < (cap if self.config.adaptive else prescribed):
            for _ in range(check_period):
                self._near_tick(node, state)
                ticks += 1
            if self.config.adaptive:
                if self._square_deviation(node, state) <= target:
                    break
            elif ticks >= prescribed:
                break
        else:
            if self.config.adaptive:
                self.stats.cap_hits += 1
        self.stats._bump(self.stats.near_ticks_by_depth, depth, ticks)
        self._deactivate_leaf(node, state)

    def _internal_round(
        self, node: SquareNode, depth: int, target: float, state: "_RunState"
    ) -> None:
        """Exchange loop over the child squares (Section 3's round)."""
        children = [c for c in node.children if c.occupancy > 0 and c.supernode >= 0]
        child_target = target / (2.0 * math.sqrt(max(1, len(children))))
        if len(children) < 2:
            # Degenerate: all mass in one child; just settle it.
            for child in children:
                self._round(child, depth + 1, child_target, state)
            return
        self._activate_internal(node, children, state)
        for child in children:
            self._round(child, depth + 1, child_target, state)
        prescribed = state.parameters.exchange_count(len(children), depth)
        cap = int(math.ceil(prescribed * self.config.hard_cap_factor))
        limit = cap if self.config.adaptive else prescribed
        exchanges = 0
        while exchanges < limit:
            initiator = children[int(state.rng.integers(len(children)))]
            partner = self._pick_partner(initiator, children, depth, state)
            if partner is not None:
                self._far_exchange(initiator, partner, state)
                self._round(initiator, depth + 1, child_target, state)
                self._round(partner, depth + 1, child_target, state)
            exchanges += 1
            if depth == 0 and state.trace is not None:
                state.trace.record(
                    state.counter.total,
                    exchanges,
                    normalized_error(state.values, state.initial_values),
                )
            if self.config.adaptive and exchanges >= max(4, prescribed // 4):
                if self._square_deviation(node, state) <= target:
                    break
        else:
            if self.config.adaptive:
                self.stats.cap_hits += 1
        self.stats._bump(self.stats.exchanges_by_depth, depth, exchanges)
        self._deactivate_internal(node, children, state)

    # -- protocol actions ------------------------------------------------------

    def _near_tick(self, node: SquareNode, state: "_RunState") -> None:
        """One `Near` action: a uniform member averages with a uniform
        neighbour inside the same leaf square (paper Section 4.2)."""
        members = node.members
        sensor = int(members[state.rng.integers(members.size)])
        local = self._leaf_neighbors[sensor]
        if local.size == 0:
            return  # stranded within its leaf; its tick is wasted
        partner = int(local[state.rng.integers(local.size)])
        average = 0.5 * (state.values[sensor] + state.values[partner])
        state.values[sensor] = average
        state.values[partner] = average
        state.counter.charge(2, "near")

    def _pick_partner(
        self,
        initiator: SquareNode,
        siblings: list[SquareNode],
        depth: int,
        state: "_RunState",
    ) -> SquareNode | None:
        """Uniform random exchange target for ``initiator`` (D1)."""
        if self.config.sibling_targets:
            pool = siblings
        else:
            pool = [
                square
                for square in self._depth_squares[depth + 1]
                if square.occupancy > 0 and square.supernode >= 0
            ]
        if len(pool) < 2:
            return None
        while True:
            candidate = pool[int(state.rng.integers(len(pool)))]
            if candidate is not initiator:
                return candidate

    def _far_exchange(
        self, square_i: SquareNode, square_j: SquareNode, state: "_RunState"
    ) -> None:
        """The affine exchange of Section 4.2's `Far` (decisions D2/D4)."""
        s_i, s_j = square_i.supernode, square_j.supernode
        forward, backward = self.router.round_trip(
            s_i, s_j, state.counter, category="far"
        )
        if not (forward.delivered and backward.delivered):
            self.stats.routing_failures += 1
            return
        x_i, x_j = state.values[s_i], state.values[s_j]
        if self.config.coefficient_mode is CoefficientMode.CONVEX:
            average = 0.5 * (x_i + x_j)
            state.values[s_i] = average
            state.values[s_j] = average
            return
        beta = self._coefficient(square_i, square_j, state)
        # Both sides computed from pre-exchange values (multi-field rows
        # are views, so neither row may be written before both updates
        # are built); the same β on both sides conserves the global sum
        # exactly.
        new_i = x_i + beta * (x_j - x_i)
        new_j = x_j + beta * (x_i - x_j)
        state.values[s_i] = new_i
        state.values[s_j] = new_j

    def _coefficient(
        self, square_i: SquareNode, square_j: SquareNode, state: "_RunState"
    ) -> float:
        gain = state.parameters.affine_gain
        expected = gain * square_i.expected_count
        smaller = min(square_i.occupancy, square_j.occupancy)
        mode = self.config.coefficient_mode
        if mode is CoefficientMode.PAPER_EXPECTED:
            return expected
        if mode is CoefficientMode.CLAMPED:
            return min(expected, 0.48 * smaller)
        if mode is CoefficientMode.ACTUAL_MIN:
            return gain * smaller
        raise AssertionError(f"unhandled coefficient mode {mode}")

    # -- activation / deactivation ---------------------------------------------

    def _activate_leaf(self, node: SquareNode, state: "_RunState") -> None:
        flood(
            self.graph.neighbors,
            node.supernode,
            node.members.tolist(),
            state.counter,
            category="activation",
        )

    def _deactivate_leaf(self, node: SquareNode, state: "_RunState") -> None:
        flood(
            self.graph.neighbors,
            node.supernode,
            node.members.tolist(),
            state.counter,
            category="activation",
        )

    def _activate_internal(
        self, node: SquareNode, children: list[SquareNode], state: "_RunState"
    ) -> None:
        """Greedy-route an on-switch to each child supernode (Section 4.2)."""
        for child in children:
            if child.supernode != node.supernode:
                self.router.route_to_node(
                    node.supernode,
                    child.supernode,
                    state.counter,
                    category="activation",
                )

    def _deactivate_internal(
        self, node: SquareNode, children: list[SquareNode], state: "_RunState"
    ) -> None:
        self._activate_internal(node, children, state)

    # -- helpers ----------------------------------------------------------------

    def _square_deviation(self, node: SquareNode, state: "_RunState") -> float:
        """ℓ₂ deviation of the square's members about their own mean.

        Always scalar state: ``run`` rejects (n, k) matrices up front
        (this executor runs multi-field state per column, via the
        engine's fallback), so no matrix branch exists here.
        """
        slice_ = state.values[node.members]
        return float(np.linalg.norm(slice_ - slice_.mean()))

    def _restrict_adjacency_to_leaves(self) -> list[np.ndarray]:
        """Per-sensor `Near` adjacency (leaf-local, ancestor fallback D10)."""
        return self.tree.local_adjacency(self.graph.neighbors, fallback=True)


@dataclass
class _RunState:
    """Mutable state threaded through one run's recursion."""

    values: np.ndarray
    counter: TransmissionCounter
    rng: np.random.Generator
    parameters: ProtocolParameters
    scale: float
    trace: ConvergenceTrace | None
    initial_values: np.ndarray
