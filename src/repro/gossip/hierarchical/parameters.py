"""Parameter schedules for the hierarchical protocol (Section 4.1).

The paper prescribes, for constants ``a > 0``:

* accuracies   ``ε₀ = ε``,  ``ε_{r+1} = ε_r / (25 n^{7/2+a})``
* confidences  ``δ₀ = δ``,  ``δ_{r+1} = δ_r / n^{2 a r}``
* latencies    ``time(n, ℓ−1, ε_{ℓ−1}, δ_{ℓ−1}) = (log(n/ε_{ℓ−1}) · log(1/δ_{ℓ−1}))^16``
               ``time(n, r−1, …) = time(n, r, …) · n^a · (log(n_r/ε_r) · log(1/δ_r))^16``
* `Far` rate   ``n^{-a} / time(n, r, ε_r, δ_r)`` per tick of an active supernode.

These are worst-case constants: run literally they exceed any simulable
horizon (the module lets you *evaluate* them — experiment E11 tabulates
them — and the tests check their recurrences).  Simulations use
:meth:`ProtocolParameters.practical`, which keeps the schedule *shapes*
(geometric ε-tightening, latency ∝ quadratic leaf averaging, a rate
separation factor between hierarchy levels) with constants that terminate
(DESIGN.md, D5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AccuracySchedule", "latency_schedule", "ProtocolParameters"]


@dataclass(frozen=True)
class AccuracySchedule:
    """Per-depth accuracy/confidence targets ``(ε_r, δ_r)``.

    ``mode="paper"`` uses the literal recurrences above; ``mode="practical"``
    tightens ε geometrically (``ε_{r+1} = ε_r · decay``) and keeps δ fixed,
    which is what an adaptive simulation actually needs.
    """

    n: int
    epsilon0: float
    delta0: float
    a: float = 1.0
    mode: str = "paper"
    decay: float = 0.2

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"need at least two sensors, got n={self.n}")
        if not 0 < self.epsilon0:
            raise ValueError(f"epsilon0 must be positive, got {self.epsilon0}")
        if not 0 < self.delta0 < 1:
            raise ValueError(f"delta0 must lie in (0, 1), got {self.delta0}")
        if self.mode not in ("paper", "practical"):
            raise ValueError(f"unknown schedule mode {self.mode!r}")
        if not 0 < self.decay < 1:
            raise ValueError(f"decay must lie in (0, 1), got {self.decay}")

    def epsilon(self, depth: int) -> float:
        """``ε_r`` — the accuracy demanded of rounds at ``depth`` ``r``."""
        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")
        if self.mode == "practical":
            return self.epsilon0 * self.decay**depth
        shrink = 25.0 * self.n ** (3.5 + self.a)
        return self.epsilon0 / shrink**depth

    def delta(self, depth: int) -> float:
        """``δ_r`` — the failure budget for rounds at ``depth`` ``r``."""
        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")
        if self.mode == "practical":
            return self.delta0
        # δ_{r+1} = δ_r / n^{2 a r}  =>  δ_r = δ₀ / n^{2a·(0+1+…+(r−1))}.
        exponent = 2.0 * self.a * (depth * (depth - 1) / 2.0)
        return self.delta0 / self.n**exponent


def latency_schedule(
    n: int,
    factors: list[int],
    schedule: AccuracySchedule,
) -> list[float]:
    """The paper's ``time(n, r, ε_r, δ_r)`` for every depth ``r``.

    Returns ``times[r]`` for ``r = 0..ℓ−1`` (the latency of a round run at
    depth ``r``; depth ``ℓ−1`` is the deepest supernode level, whose rounds
    are leaf `Near` phases).  Built by the paper's backward recurrence:

        time(ℓ−1) = (log(n/ε_{ℓ−1}) · log(1/δ_{ℓ−1}))^16
        time(r−1) = time(r) · n^a · (log(n_r/ε_r) · log(1/δ_r))^16
    """
    depth_count = len(factors) + 1  # ℓ levels => rounds at depths 0..ℓ-1
    deepest = depth_count - 1
    times = [0.0] * depth_count

    def log_block(numerator: float, depth: int) -> float:
        eps, delta = schedule.epsilon(depth), schedule.delta(depth)
        return (math.log(numerator / eps) * math.log(1.0 / delta)) ** 16

    times[deepest] = log_block(float(n), deepest)
    for depth in range(deepest - 1, -1, -1):
        n_r = float(factors[depth]) if depth < len(factors) else float(n)
        times[depth] = times[depth + 1] * n**schedule.a * log_block(n_r, depth + 1)
    return times


@dataclass(frozen=True)
class ProtocolParameters:
    """Everything the executors need, bundled.

    Attributes
    ----------
    schedule:
        The accuracy/confidence schedule (paper or practical mode).
    affine_gain:
        The paper's ``2/5`` coefficient in `Far` updates.
    far_rate_separation:
        The paper's ``n^a`` factor by which `Far` rates sit below the
        inverse subordinate latency (practical mode uses a small constant).
    near_multiplier:
        Leaf `Near` phases run ``near_multiplier · m² · ln(m/ε_r)`` ticks
        (plain gossip averages in quadratic time, paper §5 / [1, 2]).
    exchange_multiplier:
        Rounds make ``exchange_multiplier · k · ln(k/ε_r)`` `Far` exchanges
        among ``k`` child squares (Observation 1's ``Θ(ñ log(ñ/ε_r))``).
    """

    schedule: AccuracySchedule
    affine_gain: float = 0.4
    far_rate_separation: float = 10.0
    near_multiplier: float = 3.0
    exchange_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if not 0 < self.affine_gain < 0.5:
            raise ValueError(
                f"affine gain must lie in (0, 1/2), got {self.affine_gain}"
            )
        if self.far_rate_separation < 1:
            raise ValueError(
                f"rate separation must be >= 1, got {self.far_rate_separation}"
            )
        if self.near_multiplier <= 0 or self.exchange_multiplier <= 0:
            raise ValueError("multipliers must be positive")

    @classmethod
    def paper(
        cls, n: int, epsilon: float, delta: float | None = None, a: float = 1.0
    ) -> "ProtocolParameters":
        """The literal constants (for evaluation/tabulation, not simulation)."""
        if delta is None:
            delta = 1.0 / n  # δ = n^{-O(1)}, the paper's regime
        schedule = AccuracySchedule(
            n=n, epsilon0=epsilon, delta0=delta, a=a, mode="paper"
        )
        return cls(schedule=schedule, far_rate_separation=float(n) ** a)

    @classmethod
    def practical(
        cls,
        n: int,
        epsilon: float,
        decay: float = 0.2,
        separation: float = 10.0,
    ) -> "ProtocolParameters":
        """Simulable constants with the paper's schedule shapes."""
        schedule = AccuracySchedule(
            n=n, epsilon0=epsilon, delta0=1.0 / n, mode="practical", decay=decay
        )
        return cls(schedule=schedule, far_rate_separation=separation)

    def near_ticks(self, occupancy: int, depth: int) -> int:
        """Prescribed `Near` ticks for a leaf of ``occupancy`` sensors."""
        if occupancy <= 1:
            return 0
        eps = self.schedule.epsilon(depth)
        return int(
            math.ceil(
                self.near_multiplier
                * occupancy**2
                * max(1.0, math.log(occupancy / eps))
            )
        )

    def exchange_count(self, children: int, depth: int) -> int:
        """Prescribed `Far` exchanges for a round over ``children`` squares."""
        if children <= 1:
            return 0
        eps = self.schedule.epsilon(depth)
        return int(
            math.ceil(
                self.exchange_multiplier
                * children
                * max(1.0, math.log(children / eps))
            )
        )
