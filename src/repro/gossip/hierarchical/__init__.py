"""The paper's hierarchical affine-combination protocol.

Two executors, one protocol:

* :class:`~repro.gossip.hierarchical.rounds.HierarchicalGossip` — the
  round-based executor with the Section 3 semantics (a square's round =
  activate children, exchange + re-average repeatedly, deactivate).  It is
  deterministic in structure, charges every transmission, and is the
  executor used by the scaling experiments.
* :class:`~repro.gossip.hierarchical.protocol.AsyncHierarchicalProtocol` —
  the literal Section 4 node-state machine (``local.state`` /
  ``global.state`` / counters, `Near`/`Far`/`Activate.square`/
  `Deactivate.square`) driven tick by tick under the shared asynchronous
  Poisson-clock driver.  It demonstrates the decentralised machinery at
  small ``n``.

Parameter schedules (the paper's ε_r/δ_r/time(·) and the practical
variants) live in :mod:`~repro.gossip.hierarchical.parameters`.
"""

from repro.gossip.hierarchical.parameters import (
    AccuracySchedule,
    ProtocolParameters,
    latency_schedule,
)
from repro.gossip.hierarchical.protocol import AsyncHierarchicalProtocol, NodeState
from repro.gossip.hierarchical.rounds import (
    CoefficientMode,
    HierarchicalGossip,
    RoundConfig,
    RoundStats,
)

__all__ = [
    "AccuracySchedule",
    "AsyncHierarchicalProtocol",
    "CoefficientMode",
    "HierarchicalGossip",
    "NodeState",
    "ProtocolParameters",
    "RoundConfig",
    "RoundStats",
    "latency_schedule",
]
