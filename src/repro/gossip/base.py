"""The asynchronous gossip driver.

All gossip algorithms in this library share the paper's execution model
(Section 2): a global rate-``n`` Poisson clock assigns ticks to uniformly
random nodes; the owner of a tick performs one protocol action.  Subclasses
implement :meth:`AsynchronousGossip.tick`; the base class provides the
run-until-ε loop, transmission accounting, tracing, and the stopping rule.

The stopping rule is *oracular* (DESIGN.md, D7): the simulator measures the
true normalized error and stops when it crosses ε.  Deployed systems would
instead run for the worst-case tick counts the theorems prescribe; the
transmission *costs* recorded here are unaffected by that choice.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.metrics.error import (
    field_count,
    normalized_error,
    result_column_errors,
)
from repro.metrics.trace import ConvergenceTrace
from repro.observability import events as _events
from repro.routing.cost import TransmissionCounter

__all__ = ["GossipRunResult", "AsynchronousGossip", "check_state_shape"]


def check_state_shape(initial_values: np.ndarray, n: int) -> np.ndarray:
    """Validate gossip state: ``(n,)`` scalar or ``(n, k)`` field matrix.

    Returns the float64 array.  The two layouts share every protocol
    code path: NumPy row operations (``values[i]``) act on a scalar or
    a length-``k`` row identically, and the oracular error reduces an
    ``(n, k)`` matrix to its primary field (column 0) — see
    :mod:`repro.metrics.error`.
    """
    initial_values = np.asarray(initial_values, dtype=np.float64)
    ok = initial_values.shape == (n,) or (
        initial_values.ndim == 2
        and initial_values.shape[0] == n
        and initial_values.shape[1] >= 1
    )
    if not ok:
        raise ValueError(
            f"need one value (or one row of fields) per node: expected "
            f"shape ({n},) or ({n}, k), got {initial_values.shape}"
        )
    return initial_values


@dataclass
class GossipRunResult:
    """Outcome of one gossip run.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the run.
    values:
        Final sensor values.
    initial_values:
        The values the run started from (for re-deriving any error metric).
    transmissions:
        Per-category transmission counts, including ``"total"``.
    ticks:
        Global clock ticks consumed.
    converged:
        Whether the ε-criterion was met within the tick budget.
    epsilon:
        The target normalized error.
    error:
        Final normalized error ``‖x(t)‖/‖x(0)‖`` (primary field for
        multi-field runs).
    trace:
        Thinned (transmissions → error) curve.  For a run assembled by
        the engine's per-column multi-field fallback this is **column
        0's curve only**, while ``ticks``/``transmissions`` aggregate
        all ``k`` per-column passes — so the trace's final point ends at
        a fraction of ``total_transmissions`` there.  Native multi-field
        and scalar runs have no such split: one pass, one curve.
    column_errors:
        Per-column final normalized errors of an ``(n, k)`` multi-field
        run (``column_errors[0] == error``); ``None`` for scalar runs.
    """

    algorithm: str
    values: np.ndarray
    initial_values: np.ndarray
    transmissions: dict[str, int]
    ticks: int
    converged: bool
    epsilon: float
    error: float
    trace: ConvergenceTrace
    column_errors: np.ndarray | None = None

    @property
    def total_transmissions(self) -> int:
        return self.transmissions["total"]

    @property
    def fields(self) -> int:
        """Number of stacked fields the run carried (1 for scalar state)."""
        return field_count(self.values)


class AsynchronousGossip(ABC):
    """Base class: one protocol action per Poisson clock tick.

    Parameters
    ----------
    n:
        Number of nodes; tick owners are drawn uniformly from ``range(n)``.
    """

    name = "abstract-gossip"

    #: Whether ``tick``/``tick_block`` handle an ``(n, k)`` field matrix
    #: natively (row operations, no scalar assumptions, no view aliasing).
    #: Conservative default for third-party subclasses: the engine falls
    #: back to per-column scalar passes (with a
    #: :class:`repro.engine.batching.MultiFieldFallbackWarning`) instead
    #: of risking silent broadcasting bugs.  Every protocol in this
    #: library declares ``True``; see ``docs/workloads.md`` for the audit
    #: checklist a ``tick`` implementation must pass.
    supports_multifield = False

    #: Whether one instance may be rerun from fresh initial values —
    #: what the engine's per-column multi-field fallback does ``k``
    #: times.  Protocols that carry state *across* runs (an epoch
    #: clock, a partially consumed loss stream — e.g. the dynamics
    #: wrapper) must set ``False`` so the fallback rejects them instead
    #: of silently replaying columns on spent state.
    multifield_fallback_safe = True

    def __init__(self, n: int):
        if n < 2:
            raise ValueError(f"gossip needs at least two nodes, got {n}")
        self.n = n

    @abstractmethod
    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Execute ``node``'s action for one clock tick, in place."""

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Execute a pre-sampled block of tick owners, in order, in place.

        The batched engine driver (:func:`repro.engine.batching.run_batched`)
        pre-samples owners in vectorized blocks and calls this hook instead
        of :meth:`tick`.  Subclasses may override it to amortize per-tick
        protocol randomness across the block; an override must stay
        sequentially equivalent to ticking each owner in order and must
        draw its randomness from ``rng`` with a fixed number of draws per
        tick, so that results never depend on how a run was chunked into
        blocks.
        """
        for node in owners:
            self.tick(int(node), values, counter, rng)

    def tick_budget(self, epsilon: float) -> int:
        """Default safety budget of clock ticks for :meth:`run`.

        Generous (an order of magnitude above the expected need) so that a
        healthy run never hits it; subclasses refine it with their own
        convergence orders.
        """
        return int(50 * self.n * self.n * (1 + abs(np.log(max(epsilon, 1e-12)))))

    def run(
        self,
        initial_values: np.ndarray,
        epsilon: float,
        rng: np.random.Generator,
        max_ticks: int | None = None,
        check_every: int | None = None,
        trace_thinning: float = 0.02,
    ) -> GossipRunResult:
        """Run until ``‖x(t)‖ ≤ ε·‖x(0)‖`` or the tick budget is exhausted.

        Parameters
        ----------
        initial_values:
            One value per node (shape ``(n,)``), or an ``(n, k)`` matrix
            of ``k`` stacked fields; the run works on a copy.  Multi-field
            runs apply every protocol action to all columns at once; the
            stopping rule (and the trace) track the primary field —
            column 0 — exactly as a scalar run would, so column 0 stays
            bit-identical to the legacy scalar run on the same seed.
        epsilon:
            Target normalized error (the paper's ε).
        rng:
            Drives clock-tick owners and all protocol randomness.
        max_ticks:
            Overrides :meth:`tick_budget`.
        check_every:
            Error-check (and trace) period in ticks; defaults to
            ``max(1, n // 4)`` so checking adds O(1) amortised work per tick.
        """
        initial_values = check_state_shape(initial_values, self.n)
        if initial_values.ndim == 2 and not self.supports_multifield:
            # Before multi-field state existed this raised a shape error;
            # admitting a matrix into an unaudited tick would let scalar
            # assumptions (flattening reductions, row-view aliasing)
            # corrupt columns silently.  The engine's run_batched offers
            # the audited per-column fallback; this legacy entry refuses.
            raise TypeError(
                f"{self.name!r} does not declare supports_multifield, so "
                f"run() only accepts scalar ({self.n},) state — audit "
                "tick/tick_block against the checklist in "
                "docs/workloads.md and declare supports_multifield = "
                "True, or use repro.engine.run_batched, whose per-column "
                "fallback runs unaudited protocols one field at a time"
            )
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        values = initial_values.copy()
        counter = TransmissionCounter()
        trace = ConvergenceTrace(thinning=trace_thinning)
        budget = self.tick_budget(epsilon) if max_ticks is None else max_ticks
        period = max(1, self.n // 4) if check_every is None else max(1, check_every)

        error = normalized_error(values, initial_values)
        trace.force_record(0, 0, error)
        recorder = _events.active()
        if recorder is not None:
            recorder.emit(_events.start_event(self, initial_values, epsilon, 1))
        ticks = 0
        converged = error <= epsilon
        while not converged and ticks < budget:
            node = int(rng.integers(self.n))
            self.tick(node, values, counter, rng)
            ticks += 1
            if ticks % period == 0:
                error = normalized_error(values, initial_values)
                trace.record(counter.total, ticks, error)
                converged = error <= epsilon
                if recorder is not None:
                    recorder.emit(
                        {
                            "e": "check",
                            "ticks": ticks,
                            "tx": counter.total,
                            "error": error,
                        }
                    )
        error = normalized_error(values, initial_values)
        converged = error <= epsilon
        trace.force_record(counter.total, ticks, error)
        if recorder is not None:
            recorder.emit(
                {
                    "e": "end",
                    "ticks": ticks,
                    "tx": counter.snapshot(),
                    "error": error,
                    "converged": converged,
                    "values": values.tolist(),
                }
            )
        return GossipRunResult(
            algorithm=self.name,
            values=values,
            initial_values=initial_values,
            transmissions=counter.snapshot(),
            ticks=ticks,
            converged=converged,
            epsilon=epsilon,
            error=error,
            trace=trace,
            column_errors=result_column_errors(values, initial_values),
        )
