"""Randomized gossip (Boyd, Ghosh, Prabhakar, Shah — INFOCOM 2005).

The baseline the paper's Section 1.1 describes: "when the clock of a sensor
s ticks, s sends its value x_s to a sensor v chosen uniformly at random
from its neighbors, and receives the value x_v of v.  Thereafter s and v
set their values to (x_s+x_v)/2."  Cost per exchange: 2 transmissions.

On a geometric random graph at the connectivity radius the number of
transmissions to ε-average is ``Θ(n · T_mix) = Õ(n²)`` — the slow baseline
of experiment E7, and the subject of the mixing-time link in E12.
"""

from __future__ import annotations

import numpy as np

from repro.gossip.base import AsynchronousGossip
from repro.routing.cost import TransmissionCounter

__all__ = ["RandomizedGossip"]


class RandomizedGossip(AsynchronousGossip):
    """Nearest-neighbour convex pairwise averaging.

    Parameters
    ----------
    neighbors:
        Per-node adjacency arrays (a
        :class:`~repro.graphs.rgg.RandomGeometricGraph`'s ``neighbors``, or
        any topology from :mod:`repro.graphs.generators`).
    """

    name = "randomized"

    def __init__(self, neighbors: list[np.ndarray]):
        super().__init__(len(neighbors))
        self.neighbors = neighbors

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        adjacency = self.neighbors[node]
        if adjacency.size == 0:
            return  # isolated node: its tick is wasted (cannot occur w.h.p.)
        partner = int(adjacency[rng.integers(adjacency.size)])
        average = 0.5 * (values[node] + values[partner])
        values[node] = average
        values[partner] = average
        counter.charge(2, "near")

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Batched ticks: one vectorized uniform draw covers the whole block.

        Partner selection maps one double per tick onto the owner's
        adjacency list (``⌊u · degree⌋``), so the block consumes exactly
        ``len(owners)`` draws regardless of chunking — the block-invariance
        contract of :meth:`AsynchronousGossip.tick_block`.  The averaging
        itself must stay sequential: successive exchanges read the values
        earlier exchanges wrote.
        """
        picks = rng.random(len(owners))
        exchanges = 0
        for node, pick in zip(owners.tolist(), picks.tolist()):
            adjacency = self.neighbors[node]
            if adjacency.size == 0:
                continue  # isolated node: its tick is wasted
            partner = int(adjacency[int(pick * adjacency.size)])
            average = 0.5 * (values[node] + values[partner])
            values[node] = average
            values[partner] = average
            exchanges += 1
        if exchanges:
            counter.charge(2 * exchanges, "near")

    def tick_budget(self, epsilon: float) -> int:
        # T_ave = Θ(n²/log n · log(1/ε)) ticks on an RGG; allow 20x headroom.
        n = self.n
        log_term = 1 + abs(np.log(max(epsilon, 1e-12)))
        return int(20 * n * n / max(np.log(n), 1.0) * log_term) + 10_000
