"""Randomized gossip (Boyd, Ghosh, Prabhakar, Shah — INFOCOM 2005).

The baseline the paper's Section 1.1 describes: "when the clock of a sensor
s ticks, s sends its value x_s to a sensor v chosen uniformly at random
from its neighbors, and receives the value x_v of v.  Thereafter s and v
set their values to (x_s+x_v)/2."  Cost per exchange: 2 transmissions.

On a geometric random graph at the connectivity radius the number of
transmissions to ε-average is ``Θ(n · T_mix) = Õ(n²)`` — the slow baseline
of experiment E7, and the subject of the mixing-time link in E12.
"""

from __future__ import annotations

import numpy as np

from repro.gossip.base import AsynchronousGossip
from repro.observability import events as _events
from repro.routing.cost import TransmissionCounter

__all__ = ["RandomizedGossip"]


class RandomizedGossip(AsynchronousGossip):
    """Nearest-neighbour convex pairwise averaging.

    Parameters
    ----------
    neighbors:
        Per-node adjacency arrays (a
        :class:`~repro.graphs.rgg.RandomGeometricGraph`'s ``neighbors``, or
        any topology from :mod:`repro.graphs.generators`).

    Attributes
    ----------
    failed_exchanges:
        Exchanges severed by message loss (only on a dynamic substrate).
    loss_channel:
        Optional per-hop loss stream
        (:class:`~repro.dynamics.schedule.LossChannel`): each exchange is
        a send plus a reply, and a loss on either transmission aborts the
        exchange with no update, charging the transmissions attempted
        under ``"near_lost"``.  ``None`` (the default) is lossless.  Set
        by :class:`~repro.dynamics.overlay.DynamicGossip`.
    """

    name = "randomized"
    loss_channel = None
    #: Pairwise averaging is pure row arithmetic: ``values[i]`` reads a
    #: scalar or a length-k row, and the convex average broadcasts over
    #: the row — every column of an (n, k) field matrix mixes identically.
    supports_multifield = True

    def __init__(self, neighbors: list[np.ndarray]):
        super().__init__(len(neighbors))
        self.neighbors = neighbors
        self.failed_exchanges = 0

    def tick(
        self,
        node: int,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        adjacency = self.neighbors[node]
        if adjacency.size == 0:
            return  # isolated node: its tick is wasted (cannot occur w.h.p.)
        partner = int(adjacency[rng.integers(adjacency.size)])
        if not self._exchange_survives(counter):
            return
        average = 0.5 * (values[node] + values[partner])
        values[node] = average
        values[partner] = average
        counter.charge(2, "near")
        recorder = _events.active()
        if recorder is not None:
            recorder.emit(
                {"e": "pairs", "op": "avg", "cat": "near", "pairs": [[node, partner]]}
            )

    def _exchange_survives(self, counter: TransmissionCounter) -> bool:
        """Subject one send+reply exchange to the loss channel, if any.

        A lost transmission aborts the exchange before any update: the
        attempted sends are charged under ``"near_lost"`` and the values
        stay untouched, conserving the sum.  Without a channel this is a
        no-op returning ``True`` (the historical lossless path, bit for
        bit).
        """
        if self.loss_channel is None:
            return True
        delivered, attempted = self.loss_channel.attempt(2)
        if delivered:
            return True
        counter.charge(attempted, "near_lost")
        self.failed_exchanges += 1
        recorder = _events.active()
        if recorder is not None:
            recorder.emit({"e": "drop", "tx": attempted, "cat": "near_lost"})
            recorder.emit({"e": "abort"})
        return False

    def tick_block(
        self,
        owners: np.ndarray,
        values: np.ndarray,
        counter: TransmissionCounter,
        rng: np.random.Generator,
    ) -> None:
        """Batched ticks: one vectorized uniform draw covers the whole block.

        Partner selection maps one double per tick onto the owner's
        adjacency list (``⌊u · degree⌋``), so the block consumes exactly
        ``len(owners)`` draws regardless of chunking — the block-invariance
        contract of :meth:`AsynchronousGossip.tick_block`.  The averaging
        itself must stay sequential: successive exchanges read the values
        earlier exchanges wrote.

        Multi-field state takes an allocation-free branch: the owner row
        is averaged in place (``(x + y) · 0.5`` — bitwise equal to the
        scalar rule's ``0.5 · (x + y)``, multiplication commutes exactly)
        and copied onto the partner row.  This is what makes one (n, k)
        pass cost barely more than one scalar run (benchmark E19).
        """
        picks = rng.random(len(owners))
        exchanges = 0
        multifield = values.ndim == 2
        recorder = _events.active()
        pairs = [] if recorder is not None else None
        for node, pick in zip(owners.tolist(), picks.tolist()):
            adjacency = self.neighbors[node]
            if adjacency.size == 0:
                continue  # isolated node: its tick is wasted
            partner = int(adjacency[int(pick * adjacency.size)])
            if not self._exchange_survives(counter):
                continue
            if multifield:
                row = values[node]
                row += values[partner]
                row *= 0.5
                values[partner] = row
            else:
                average = 0.5 * (values[node] + values[partner])
                values[node] = average
                values[partner] = average
            exchanges += 1
            if pairs is not None:
                pairs.append([node, partner])
        if exchanges:
            counter.charge(2 * exchanges, "near")
            if pairs is not None:
                recorder.emit(
                    {"e": "pairs", "op": "avg", "cat": "near", "pairs": pairs}
                )

    def tick_budget(self, epsilon: float) -> int:
        # T_ave = Θ(n²/log n · log(1/ε)) ticks on an RGG; allow 20x headroom.
        n = self.n
        log_term = 1 + abs(np.log(max(epsilon, 1e-12)))
        return int(20 * n * n / max(np.log(n), 1.0) * log_term) + 10_000
