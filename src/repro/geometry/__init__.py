"""Planar geometry primitives for the unit-square sensor field.

Everything spatial in the reproduction — geometric random graphs, greedy
geographic routing, the recursive square hierarchy — is built on the small
set of primitives defined here:

* distance helpers over ``(n, 2)`` coordinate arrays (:mod:`repro.geometry.points`),
* axis-aligned :class:`~repro.geometry.squares.Square` regions with
  containment/subdivision, and
* :class:`~repro.geometry.squares.GridPartition`, a ``k × k`` equal split of a
  square used both by the paper's hierarchy and by the spatial hash grid.
"""

from repro.geometry.points import (
    distance_matrix,
    euclidean_distance,
    pairwise_within,
    random_points,
    squared_distances_to,
    torus_distance,
)
from repro.geometry.squares import GridPartition, Square, UNIT_SQUARE

__all__ = [
    "GridPartition",
    "Square",
    "UNIT_SQUARE",
    "distance_matrix",
    "euclidean_distance",
    "pairwise_within",
    "random_points",
    "squared_distances_to",
    "torus_distance",
]
