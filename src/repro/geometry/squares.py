"""Axis-aligned squares and their regular grid partitions.

The paper's hierarchy partitions the unit square into ``k × k`` equal
subsquares recursively (Section 4.1).  :class:`Square` models one region;
:class:`GridPartition` models one level of that split and answers "which
subsquare contains this point?" in O(1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Square", "GridPartition", "UNIT_SQUARE"]


@dataclass(frozen=True)
class Square:
    """An axis-aligned square region ``[x0, x0+side] × [y0, y0+side]``.

    Containment uses half-open semantics on the lower/left edges except at
    the global upper boundary, so every point of the unit square belongs to
    exactly one subsquare of a partition.
    """

    x0: float
    y0: float
    side: float

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ValueError(f"square side must be positive, got {self.side}")

    @property
    def center(self) -> np.ndarray:
        """Centre point of the square (used to elect supernodes ``s(□)``)."""
        half = self.side / 2.0
        return np.array([self.x0 + half, self.y0 + half])

    @property
    def x1(self) -> float:
        return self.x0 + self.side

    @property
    def y1(self) -> float:
        return self.y0 + self.side

    @property
    def area(self) -> float:
        return self.side * self.side

    @property
    def diameter(self) -> float:
        """Length of the square's diagonal."""
        return self.side * math.sqrt(2.0)

    def contains(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies in this square (closed on all edges).

        A relative tolerance of ``1e-9·side`` absorbs the floating-point
        drift of grid-cell coordinates (``x0 + k·side`` need not hit the
        parent's far edge exactly).
        """
        x, y = float(point[0]), float(point[1])
        tol = 1e-9 * self.side
        return (
            self.x0 - tol <= x <= self.x1 + tol
            and self.y0 - tol <= y <= self.y1 + tol
        )

    def contains_mask(self, points: np.ndarray) -> np.ndarray:
        """Vectorised closed-containment test for an ``(n, 2)`` array."""
        x, y = points[:, 0], points[:, 1]
        tol = 1e-9 * self.side
        return (
            (x >= self.x0 - tol)
            & (x <= self.x1 + tol)
            & (y >= self.y0 - tol)
            & (y <= self.y1 + tol)
        )

    def subdivide(self, k: int) -> list["Square"]:
        """Split into ``k × k`` equal subsquares, row-major from bottom-left."""
        if k <= 0:
            raise ValueError(f"subdivision factor must be positive, got {k}")
        child_side = self.side / k
        return [
            Square(self.x0 + col * child_side, self.y0 + row * child_side, child_side)
            for row in range(k)
            for col in range(k)
        ]

    def sample_point(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform random point inside the square."""
        return np.array(
            [
                self.x0 + rng.random() * self.side,
                self.y0 + rng.random() * self.side,
            ]
        )


#: The sensor field ``[0, 1]²`` in which the paper places all nodes.
UNIT_SQUARE = Square(0.0, 0.0, 1.0)


class GridPartition:
    """A ``k × k`` equal partition of a parent :class:`Square`.

    Provides O(1) point-to-cell lookup: the workhorse for both the spatial
    hash grid and the paper's hierarchy of subsquares.

    Cells are indexed row-major from the bottom-left, matching
    :meth:`Square.subdivide`.
    """

    def __init__(self, parent: Square, k: int):
        if k <= 0:
            raise ValueError(f"grid resolution must be positive, got {k}")
        self.parent = parent
        self.k = k
        self.cell_side = parent.side / k

    def __len__(self) -> int:
        return self.k * self.k

    @property
    def cells(self) -> list[Square]:
        """All ``k²`` cells, row-major from the bottom-left."""
        return [self.cell(i) for i in range(len(self))]

    def cell(self, index: int) -> Square:
        """The cell with flat index ``index`` (cells are built on demand)."""
        if not 0 <= index < len(self):
            raise IndexError(f"cell index {index} out of range for k={self.k}")
        row, col = divmod(index, self.k)
        return Square(
            self.parent.x0 + col * self.cell_side,
            self.parent.y0 + row * self.cell_side,
            self.cell_side,
        )

    def cell_index(self, point: np.ndarray) -> int:
        """Index of the cell containing ``point``.

        Points on interior cell boundaries resolve to the upper cell; points
        at the parent's top/right boundary clamp into the last cell so the
        partition is exhaustive over the closed parent square.
        """
        col = self._axis_index(float(point[0]) - self.parent.x0)
        row = self._axis_index(float(point[1]) - self.parent.y0)
        return row * self.k + col

    def cell_indices(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cell_index` for an ``(n, 2)`` array."""
        cols = self._axis_indices(points[:, 0] - self.parent.x0)
        rows = self._axis_indices(points[:, 1] - self.parent.y0)
        return rows * self.k + cols

    def row_col(self, index: int) -> tuple[int, int]:
        """``(row, col)`` pair for a flat cell index."""
        return divmod(index, self.k)

    def neighbors_of_cell(self, index: int) -> list[int]:
        """Indices of the ≤ 8 cells adjacent (incl. diagonals) to ``index``."""
        row, col = self.row_col(index)
        found = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                r, c = row + dr, col + dc
                if 0 <= r < self.k and 0 <= c < self.k:
                    found.append(r * self.k + c)
        return found

    def _axis_index(self, offset: float) -> int:
        index = int(offset / self.cell_side)
        return min(max(index, 0), self.k - 1)

    def _axis_indices(self, offsets: np.ndarray) -> np.ndarray:
        indices = (offsets / self.cell_side).astype(np.int64)
        return np.clip(indices, 0, self.k - 1)
