"""Coordinate-array helpers.

All positions in the library are ``float64`` arrays of shape ``(n, 2)`` with
coordinates in the unit square ``[0, 1]²`` (the paper's sensor field).  The
helpers here are deliberately thin wrappers over NumPy so that geometric code
elsewhere reads as prose.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_points",
    "euclidean_distance",
    "torus_distance",
    "squared_distances_to",
    "distance_matrix",
    "pairwise_within",
]


def random_points(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` i.i.d. uniform points from the unit square.

    This is the paper's placement model: "Let v1, ..., vn be n points
    independently chosen uniformly at random from a unit square in R^2".

    Parameters
    ----------
    n:
        Number of points; must be positive.
    rng:
        NumPy random generator (the library never uses global RNG state).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, 2)``.
    """
    if n <= 0:
        raise ValueError(f"need a positive number of points, got {n}")
    return rng.random((n, 2))


def euclidean_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Euclidean distance between two points ``p`` and ``q``."""
    return float(np.hypot(p[0] - q[0], p[1] - q[1]))


def torus_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Distance between ``p`` and ``q`` on the unit torus.

    The torus metric removes boundary effects; it is offered as a variant
    placement model for sensitivity studies (the paper uses the square).
    """
    delta = np.abs(np.asarray(p) - np.asarray(q))
    delta = np.minimum(delta, 1.0 - delta)
    return float(np.hypot(delta[0], delta[1]))


def squared_distances_to(points: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from each row of ``points`` to ``target``.

    Squared distances avoid the square root in hot loops (greedy routing
    compares distances, and comparison is monotone in the square).
    """
    diff = points - target
    return diff[:, 0] ** 2 + diff[:, 1] ** 2


def distance_matrix(points: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` Euclidean distance matrix.

    Only suitable for small ``n`` (tests and spectral analysis); the graph
    construction proper uses the cell grid in :mod:`repro.graphs.cellgrid`.
    """
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def pairwise_within(points: np.ndarray, radius: float) -> np.ndarray:
    """Boolean ``(n, n)`` adjacency mask: ``True`` where distance ≤ radius.

    The diagonal is ``False`` (no self loops).  Quadratic; test-sized inputs
    only.
    """
    mask = distance_matrix(points) <= radius
    np.fill_diagonal(mask, False)
    return mask
