"""The built hierarchy: squares, members, supernodes, Levels.

:class:`HierarchyTree` materialises the paper's recursive partition for a
concrete sensor placement: every square at every depth with its member
sensors, expected occupancy ``E#``, and elected supernode ``s(□)`` (the
member nearest the square's centre).  Supernode Levels follow Section 4.1:
``s(□_{i₁…i_r})`` has Level ``ℓ − r``; ordinary sensors have Level 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.squares import GridPartition, Square, UNIT_SQUARE
from repro.hierarchy.addresses import SquareAddress
from repro.hierarchy.subdivision import practical_leaf_threshold, subdivision_factors

__all__ = ["SquareNode", "HierarchyTree"]


@dataclass
class SquareNode:
    """One square of the hierarchy.

    Attributes
    ----------
    address:
        Path of child indices from the root.
    square:
        The geometric region.
    members:
        Indices of sensors inside the square.
    expected_count:
        ``E#(□)`` — the expected number of sensors, ``n / ∏ factors`` along
        the path (the quantity the paper's affine coefficients use).
    supernode:
        Sensor elected as ``s(□)`` (member nearest the centre), or ``-1``
        for an empty square (cannot occur w.h.p. at paper parameters; can
        at aggressive simulation scales and is handled by the executors).
    children:
        Child squares, row-major; empty for leaves.
    """

    address: SquareAddress
    square: Square
    members: np.ndarray
    expected_count: float
    supernode: int = -1
    children: list["SquareNode"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return self.address.depth

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def occupancy(self) -> int:
        """Actual sensor count ``#(□)``."""
        return len(self.members)

    @property
    def occupancy_ratio(self) -> float:
        """``#(□) / E#(□)`` — concentrates near 1 by Chernoff (paper §3)."""
        return self.occupancy / self.expected_count

    def __repr__(self) -> str:  # keep reprs short for debugging sessions
        return (
            f"SquareNode({self.address}, members={self.occupancy}, "
            f"E#={self.expected_count:.1f}, s={self.supernode})"
        )


class HierarchyTree:
    """The full recursive partition for one sensor placement.

    Parameters
    ----------
    positions:
        ``(n, 2)`` sensor coordinates.
    factors:
        Per-depth subdivision factors (from
        :func:`~repro.hierarchy.subdivision.subdivision_factors`); each must
        be a perfect square (``k = sqrt(factor)`` cells per axis).
    """

    def __init__(self, positions: np.ndarray, factors: list[int]):
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
        for factor in factors:
            k = int(round(np.sqrt(factor)))
            if k * k != factor:
                raise ValueError(f"subdivision factor {factor} is not a square")
        self.positions = positions
        self.factors = list(factors)
        self.n = len(positions)
        self._claimed: set[int] = set()
        self.root = self._build(
            SquareAddress(), UNIT_SQUARE, np.arange(self.n), float(self.n), 0
        )
        self.levels = len(self.factors) + 1  # paper's ℓ = 1 + sup r
        self._node_level = self._assign_levels()
        self._by_address = {node.address: node for node in self.all_squares()}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        positions: np.ndarray,
        leaf_threshold: float | None = None,
    ) -> "HierarchyTree":
        """Build with factors derived from the subdivision rule.

        ``leaf_threshold`` defaults to the practical threshold; pass
        ``paper_leaf_threshold(n)`` for the literal rule (which yields a
        single-level hierarchy at simulable ``n``).
        """
        n = len(positions)
        if leaf_threshold is None:
            leaf_threshold = practical_leaf_threshold(n)
        return cls(positions, subdivision_factors(n, leaf_threshold))

    def _build(
        self,
        address: SquareAddress,
        square: Square,
        members: np.ndarray,
        expected: float,
        depth: int,
    ) -> SquareNode:
        node = SquareNode(
            address=address,
            square=square,
            members=members,
            expected_count=expected,
            supernode=self._elect_supernode(square, members),
        )
        if depth < len(self.factors):
            factor = self.factors[depth]
            k = int(round(np.sqrt(factor)))
            partition = GridPartition(square, k)
            assignment = (
                partition.cell_indices(self.positions[members])
                if members.size
                else np.empty(0, dtype=np.int64)
            )
            child_expected = expected / factor
            for cell in range(factor):
                child_members = members[assignment == cell]
                node.children.append(
                    self._build(
                        address.child(cell),
                        partition.cell(cell),
                        child_members,
                        child_expected,
                        depth + 1,
                    )
                )
        return node

    def _elect_supernode(self, square: Square, members: np.ndarray) -> int:
        """Member nearest the centre not already claimed by another square.

        The paper argues centres are well separated so claims never collide
        w.h.p.; the deterministic fallback (next-nearest member) keeps small
        simulations safe (each sensor represents at most one square).
        """
        if members.size == 0:
            return -1
        center = square.center
        diff = self.positions[members] - center
        order = np.argsort(diff[:, 0] ** 2 + diff[:, 1] ** 2, kind="stable")
        for position_in_order in order:
            candidate = int(members[position_in_order])
            if candidate not in self._claimed:
                self._claimed.add(candidate)
                return candidate
        return -1  # every member already claimed (tiny squares only)

    def _assign_levels(self) -> np.ndarray:
        level = np.zeros(self.n, dtype=np.int64)
        for node in self.all_squares():
            if node.supernode >= 0:
                level[node.supernode] = self.levels - node.depth
        return level

    # -- queries -----------------------------------------------------------

    def all_squares(self) -> list[SquareNode]:
        """Every square, BFS order (root first)."""
        out, frontier = [], [self.root]
        while frontier:
            out.extend(frontier)
            frontier = [c for node in frontier for c in node.children]
        return out

    def squares_at_depth(self, depth: int) -> list[SquareNode]:
        if not 0 <= depth <= len(self.factors):
            raise ValueError(
                f"depth {depth} out of range 0..{len(self.factors)}"
            )
        return [node for node in self.all_squares() if node.depth == depth]

    def leaves(self) -> list[SquareNode]:
        return [node for node in self.all_squares() if node.is_leaf]

    def node(self, address: SquareAddress) -> SquareNode:
        return self._by_address[address]

    def node_level(self, sensor: int) -> int:
        """The paper's Level of ``sensor`` (0 for ordinary sensors)."""
        return int(self._node_level[sensor])

    def supernodes(self) -> list[int]:
        """All sensors with Level ≥ 1."""
        return [int(i) for i in np.nonzero(self._node_level > 0)[0]]

    def local_adjacency(
        self,
        neighbors: list[np.ndarray],
        fallback: bool = True,
    ) -> list[np.ndarray]:
        """Per-sensor adjacency restricted to the sensor's leaf square.

        This realises the paper's `Near` rule ("an adjacent node v
        contained in □_{i₁…i_{ℓ−1}}").  In the paper's regime leaf squares
        are ``(log n)^{3.5}`` radii wide and internally connected w.h.p.;
        at simulation scale a leaf can be barely wider than ``r`` and a
        boundary sensor may have *no* same-leaf neighbour — a stranded
        sensor would never average and pins the global error.  With
        ``fallback=True`` (decision D10) such sensors escalate to
        neighbours within the nearest ancestor square that provides some,
        preserving the hierarchy's locality.
        """
        if len(neighbors) != self.n:
            raise ValueError(
                f"adjacency for {len(neighbors)} sensors, tree has {self.n}"
            )
        # Ancestor chain per sensor, deepest (leaf) first.
        chains: dict[int, list[SquareNode]] = {i: [] for i in range(self.n)}
        for node in self.all_squares():
            for member in node.members:
                chains[int(member)].append(node)
        restricted: list[np.ndarray] = []
        for sensor in range(self.n):
            adjacency = neighbors[sensor]
            chosen = adjacency[:0]
            for node in reversed(chains[sensor]):  # leaf, parent, ..., root
                member_set = set(int(m) for m in node.members)
                local = np.array(
                    [int(v) for v in adjacency if int(v) in member_set],
                    dtype=np.int64,
                )
                if local.size or not fallback:
                    chosen = local
                    break
            restricted.append(chosen)
        return restricted

    def occupancy_report(self) -> list[dict[str, float]]:
        """Per-depth occupancy statistics (drives experiments E6/E11)."""
        report = []
        for depth in range(len(self.factors) + 1):
            nodes = self.squares_at_depth(depth)
            counts = np.array([node.occupancy for node in nodes])
            expected = nodes[0].expected_count
            report.append(
                {
                    "depth": depth,
                    "squares": len(nodes),
                    "expected": expected,
                    "min": int(counts.min()),
                    "mean": float(counts.mean()),
                    "max": int(counts.max()),
                    "max_ratio_deviation": float(
                        np.abs(counts / expected - 1.0).max()
                    ),
                    "empty": int((counts == 0).sum()),
                }
            )
        return report
