"""Square addresses ``□_{i₁ i₂ … i_r}``.

The paper names squares by the chain of child indices from the root: the
unit square is ``□``, its subsquares are ``□_{i₁}``, their subsquares
``□_{i₁ i₂}``, and so on.  :class:`SquareAddress` is that chain as an
immutable tuple, ordered root-first, with each index the row-major cell
index within the parent's grid partition.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SquareAddress"]


@dataclass(frozen=True)
class SquareAddress:
    """Immutable path of child indices identifying a square."""

    indices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if any(i < 0 for i in self.indices):
            raise ValueError(f"address indices must be non-negative: {self.indices}")

    @property
    def depth(self) -> int:
        """Recursion depth ``r``; the root has depth 0."""
        return len(self.indices)

    @property
    def is_root(self) -> bool:
        return not self.indices

    @property
    def parent(self) -> "SquareAddress":
        """Address of the enclosing square; the root is its own parent."""
        if self.is_root:
            return self
        return SquareAddress(self.indices[:-1])

    def child(self, index: int) -> "SquareAddress":
        """Address of child ``index`` within this square's partition."""
        if index < 0:
            raise ValueError(f"child index must be non-negative, got {index}")
        return SquareAddress(self.indices + (index,))

    def is_ancestor_of(self, other: "SquareAddress") -> bool:
        """Strict ancestry: ``self`` strictly contains ``other``."""
        return (
            self.depth < other.depth
            and other.indices[: self.depth] == self.indices
        )

    def is_sibling_of(self, other: "SquareAddress") -> bool:
        """Same parent, different square."""
        return (
            self.depth == other.depth
            and self.depth > 0
            and self.parent == other.parent
            and self != other
        )

    def __str__(self) -> str:
        if self.is_root:
            return "□"
        return "□[" + ".".join(str(i) for i in self.indices) + "]"
