"""The paper's subdivision rule (Section 4.1).

"The square □ is partitioned into n₁ subsquares □_i, where n₁ is the
nearest integer to √n that is the square of an even number.  ...  while
E#□_{i₁…i_r} > (log n)^8, the square □_{i₁…i_r} is partitioned into
n_{r+1} subsquares □_{i₁…i_{r+1}}, where n_{r+1} is the nearest integer to
√(E#□_{i₁…i_r}) that is the square of an even number."

Squares of *even* numbers matter: with an even number of cells per axis no
child's centre coincides with its parent's centre, so the nearest-to-centre
supernodes of nested squares are distinct sensors w.h.p. ("these centers
are well separated").

The paper's ``(log n)^8`` leaf threshold exceeds every reachable ``n`` (it
passes 10⁶ already at n ≈ 32); simulations therefore use
:func:`practical_leaf_threshold` — same rule, smaller constant — as recorded
in DESIGN.md (decision D6).
"""

from __future__ import annotations

import math

__all__ = [
    "nearest_even_square",
    "subdivision_factors",
    "paper_leaf_threshold",
    "practical_leaf_threshold",
]


def nearest_even_square(target: float) -> int:
    """The integer ``(2j)²`` (``j ≥ 1``) nearest to ``target``.

    Ties break towards the smaller square (fewer, larger subsquares).
    """
    if target <= 0 or not math.isfinite(target):
        raise ValueError(f"target must be positive and finite, got {target}")
    # (2j)^2 nearest to target  <=>  j near sqrt(target)/2.
    j = max(1, round(math.sqrt(target) / 2.0))
    best = None
    for candidate_j in (j - 1, j, j + 1):
        if candidate_j < 1:
            continue
        value = (2 * candidate_j) ** 2
        key = (abs(value - target), value)
        if best is None or key < best[0]:
            best = (key, value)
    return best[1]


def subdivision_factors(n: int, leaf_threshold: float) -> list[int]:
    """Per-depth child counts ``[n₁, n₂, …]`` for a field of ``n`` sensors.

    ``factors[r]`` is the number of subsquares a depth-``r`` square splits
    into.  Splitting stops once the expected occupancy drops to
    ``leaf_threshold`` or below, or when a split would no longer reduce the
    expected occupancy below one sensor per subsquare.
    """
    if n < 1:
        raise ValueError(f"need at least one sensor, got {n}")
    if leaf_threshold < 1:
        raise ValueError(f"leaf threshold must be >= 1, got {leaf_threshold}")
    factors: list[int] = []
    expected = float(n)
    while expected > leaf_threshold:
        factor = nearest_even_square(math.sqrt(expected))
        if expected / factor < 1.0:
            # Sub-sensor occupancy: further splitting is meaningless.
            break
        factors.append(factor)
        expected /= factor
    return factors


def paper_leaf_threshold(n: int) -> float:
    """The paper's literal threshold ``(log n)^8`` (natural log)."""
    if n < 2:
        raise ValueError(f"need at least two sensors, got {n}")
    return math.log(n) ** 8


def practical_leaf_threshold(n: int, constant: float = 3.0) -> float:
    """A simulable threshold ``max(8, constant · log n)``.

    Keeps leaves at ``Θ(log n)`` sensors — large enough for occupancy
    concentration to be meaningful, small enough that quadratic `Near`
    averaging inside leaves stays cheap (DESIGN.md, D6).
    """
    if n < 2:
        raise ValueError(f"need at least two sensors, got {n}")
    if constant <= 0:
        raise ValueError(f"threshold constant must be positive, got {constant}")
    return max(8.0, constant * math.log(n))
