"""The paper's recursive square hierarchy (Section 4.1).

The unit square is split into ``n₁`` subsquares (``n₁`` = the nearest
square-of-an-even-number to ``sqrt(n)``); every square whose *expected*
occupancy still exceeds a leaf threshold is split again by the same rule.
Each square elects the sensor nearest its centre as its supernode ``s(□)``,
and supernodes carry hierarchy Levels ``ℓ − r`` (root = Level ℓ, deepest
supernodes = Level 1, ordinary sensors = Level 0).

* :mod:`repro.hierarchy.addresses` — square addresses ``□_{i₁…i_r}``.
* :mod:`repro.hierarchy.subdivision` — the even-square subdivision rule and
  leaf thresholds (paper's ``(log n)^8`` and a practical variant).
* :mod:`repro.hierarchy.tree` — the built hierarchy: squares, members,
  supernodes, Levels, occupancy statistics.
"""

from repro.hierarchy.addresses import SquareAddress
from repro.hierarchy.subdivision import (
    nearest_even_square,
    paper_leaf_threshold,
    practical_leaf_threshold,
    subdivision_factors,
)
from repro.hierarchy.tree import HierarchyTree, SquareNode

__all__ = [
    "HierarchyTree",
    "SquareAddress",
    "SquareNode",
    "nearest_even_square",
    "paper_leaf_threshold",
    "practical_leaf_threshold",
    "subdivision_factors",
]
