"""Trial-tensorized execution: every trial of one sweep slice in one pass.

Sweep cells sharing ``(protocol, topology, n)`` differ only in trial
seed, so their per-cell Python overhead — instance dispatch, tick-loop
bookkeeping, route walking — repeats ``trials`` times for no reason.
:func:`run_trials_batched` stacks all ``trials`` states into one
``(trials, n[, k])`` tensor, splits each trial's RNG into the same
(owner, protocol) child streams :func:`repro.engine.batching.run_batched`
uses, and advances every trial through batched NumPy calls: a dedicated
*trial kernel* for the protocols whose ``tick_block`` draws are
precomputable (randomized, geographic ``uniform``, spatial, affine,
path-averaging ``uniform``), or a generic lockstep driver over the
protocol's own ``tick_block`` otherwise.

The contract is per-trial bit-identity: trial ``t`` of a tensorized run
equals the legacy per-cell :func:`run_batched` run of the same seed —
values, ticks, transmissions, and trace, at every ``check_stride``
(asserted in the golden suite).  ``check_stride=1`` delegates to the
per-trial scalar loop outright: the legacy path interleaves
data-dependent owner and protocol draws on one stream, which no
cross-trial schedule can reproduce.

Arrays go through the :mod:`repro.engine.backend` seam (``xp``), so an
accelerator backend can slot in without re-touching the kernels.

>>> import numpy as np
>>> from repro.engine.batching import run_batched
>>> from repro.gossip.affine import AffineGossipKn
>>> alphas = np.linspace(0.35, 0.45, 12)
>>> field = np.sin(np.arange(12.0))
>>> field -= field.mean()
>>> batch = run_trials_batched(
...     [AffineGossipKn(12, alphas=alphas) for _ in range(3)],
...     [field] * 3,
...     0.25,
...     [np.random.default_rng(100 + t) for t in range(3)],
...     check_stride=4,
... )
>>> solo = run_batched(
...     AffineGossipKn(12, alphas=alphas),
...     field,
...     0.25,
...     np.random.default_rng(101),
...     check_stride=4,
... )
>>> bool(np.array_equal(batch[1].values, solo.values))
True
>>> batch[1].ticks == solo.ticks
True
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.engine.backend import get_backend
from repro.engine.batching import (
    DEFAULT_BLOCK_SIZE,
    ScalarFallbackWarning,
    _warn_if_uncentered,
    batching_capability,
    multifield_capability,
    run_batched,
    split_streams,
)
from repro.gossip.affine import AffineGossipKn, PerturbedAffineGossipKn
from repro.gossip.base import (
    AsynchronousGossip,
    GossipRunResult,
    check_state_shape,
)
from repro.gossip.geographic import GeographicGossip
from repro.gossip.path_averaging import PathAveragingGossip
from repro.gossip.randomized import RandomizedGossip
from repro.gossip.spatial import SpatialGossip
from repro.metrics.error import normalized_error, result_column_errors
from repro.metrics.trace import ConvergenceTrace
from repro.observability import events as _events
from repro.observability import metrics as _metrics
from repro.observability import profile as _profile
from repro.routing.cost import TransmissionCounter

__all__ = [
    "TrialBatchFallbackWarning",
    "run_trials_batched",
    "trial_batch_capability",
]


class TrialBatchFallbackWarning(UserWarning):
    """A trial-batched slice fell back to per-cell execution.

    The tensor path only covers fault-free, tick-driven, natively
    multi-field configurations: round-based protocols have no tick loop
    to run in lockstep, faulted cells carry per-trial substrate state the
    shared window schedule cannot interleave, per-column multi-field
    fallbacks already execute ``k`` nested runs per cell, and traced
    cells need the per-cell event stream the kernels do not emit.  The
    affected cells run the legacy per-cell path — identical numbers, at
    the per-cell cost — mirroring the
    :class:`~repro.engine.batching.MultiFieldFallbackWarning` contract.
    """


def trial_batch_capability(algorithm) -> str:
    """How ``algorithm`` executes under :func:`run_trials_batched`.

    Returns one of:

    * ``"kernel"`` — a dedicated trial kernel advances every trial
      through cross-trial vectorized NumPy calls (the fast path).
    * ``"lockstep"`` — the generic driver shares the window schedule and
      error checks but calls the protocol's own ``tick_block`` per trial.
    * ``"per-cell"`` — round-based protocols; the executor falls back to
      per-cell execution with a :class:`TrialBatchFallbackWarning`.

    >>> import numpy as np
    >>> from repro.gossip.affine import AffineGossipKn
    >>> trial_batch_capability(AffineGossipKn(8, alphas=np.full(8, 0.4)))
    'kernel'
    >>> trial_batch_capability(object())
    'per-cell'
    """
    if not isinstance(algorithm, AsynchronousGossip):
        return "per-cell"
    if _kernel_factory(algorithm) is not None:
        return "kernel"
    return "lockstep"


def run_trials_batched(
    algorithms,
    initial_states,
    epsilon: float,
    rngs,
    *,
    check_stride: int = 1,
    max_ticks: "int | None" = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    trace_thinning: float = 0.02,
    backend: str = "numpy",
) -> list[GossipRunResult]:
    """Run one sweep slice — all trials of one protocol — in one pass.

    Parameters
    ----------
    algorithms:
        One protocol instance per trial, all of the same type and size
        ``n`` (each trial owns its instance: graphs, route caches and
        alphas are per-trial state).
    initial_states:
        One ``(n,)`` or ``(n, k)`` state per trial, all the same shape.
    epsilon:
        Target normalized error, shared by every trial.
    rngs:
        One generator per trial — the exact generator the per-cell path
        would hand :func:`~repro.engine.batching.run_batched`.
    check_stride / max_ticks / block_size / trace_thinning:
        As in :func:`~repro.engine.batching.run_batched`.  ``block_size``
        only matters on the delegating paths; the tensor driver draws
        whole windows at once, which the engine's chunk-invariance
        contract makes equivalent.
    backend:
        Array backend name (:func:`repro.engine.backend.get_backend`).

    Returns one :class:`~repro.gossip.base.GossipRunResult` per trial,
    each bit-identical to the per-cell run of the same seed.

    Delegation rules: ``check_stride=1`` always runs the per-trial legacy
    scalar loop (its single-stream draw order cannot be tensorized);
    round-based protocols and per-column multi-field fallbacks delegate
    per trial behind a :class:`TrialBatchFallbackWarning`; mixed types,
    sizes or state shapes are caller errors and raise ``ValueError``.
    """
    algorithms = list(algorithms)
    states = [np.asarray(state, dtype=np.float64) for state in initial_states]
    rngs = list(rngs)
    if not (len(algorithms) == len(states) == len(rngs)):
        raise ValueError(
            f"need one state and one rng per trial: got {len(algorithms)} "
            f"algorithms, {len(states)} states, {len(rngs)} rngs"
        )
    if not algorithms:
        raise ValueError("need at least one trial")
    xp = get_backend(backend).xp

    def _delegate() -> list[GossipRunResult]:
        return [
            run_batched(
                algorithm,
                state,
                epsilon,
                rng,
                check_stride=check_stride,
                max_ticks=max_ticks,
                block_size=block_size,
                trace_thinning=trace_thinning,
            )
            for algorithm, state, rng in zip(algorithms, states, rngs)
        ]

    if any(
        not isinstance(algorithm, AsynchronousGossip)
        for algorithm in algorithms
    ):
        warnings.warn(
            "round-based protocols have no tick loop to run in lockstep; "
            "the slice executes per trial through the legacy path",
            TrialBatchFallbackWarning,
            stacklevel=2,
        )
        return _delegate()
    if any(
        state.ndim == 2 and multifield_capability(algorithm) != "native"
        for algorithm, state in zip(algorithms, states)
    ):
        warnings.warn(
            "per-column multi-field fallback cells execute k nested runs "
            "each; the slice executes per trial through the legacy path",
            TrialBatchFallbackWarning,
            stacklevel=2,
        )
        return _delegate()
    if check_stride == 1:
        # Not a fallback but the documented contract: the legacy scalar
        # loop interleaves data-dependent owner and protocol draws on one
        # stream, which no cross-trial schedule can reproduce bit for bit.
        return _delegate()

    first = algorithms[0]
    if any(type(algorithm) is not type(first) for algorithm in algorithms):
        raise ValueError(
            "a trial-batched slice runs one protocol type: got "
            f"{sorted({type(a).__name__ for a in algorithms})}"
        )
    n = first.n
    if any(algorithm.n != n for algorithm in algorithms):
        raise ValueError(
            "a trial-batched slice runs one size: got "
            f"n={sorted({a.n for a in algorithms})}"
        )
    shapes = {state.shape for state in states}
    if len(shapes) > 1:
        raise ValueError(
            f"trial states must share one shape, got {sorted(shapes)}"
        )
    states = [check_state_shape(state, n) for state in states]
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    budgets = (
        {algorithm.tick_budget(epsilon) for algorithm in algorithms}
        if max_ticks is None
        else {max_ticks}
    )
    if len(budgets) > 1:
        warnings.warn(
            "trials disagree on their tick budget; the slice executes per "
            "trial through the legacy path",
            TrialBatchFallbackWarning,
            stacklevel=2,
        )
        return _delegate()
    budget = budgets.pop()
    for algorithm, state in zip(algorithms, states):
        _warn_if_uncentered(algorithm, state, epsilon)
    if batching_capability(first) == "scalar":
        for algorithm in algorithms:
            warnings.warn(
                f"{algorithm.name!r} does not override tick_block: the "
                "trial-batched driver shares the window schedule but the "
                "protocol's per-tick randomness still runs scalar — "
                "implement tick_block for the full fast path (see "
                "docs/batching.md)",
                ScalarFallbackWarning,
                stacklevel=2,
            )
    factories = {_kernel_factory(algorithm) for algorithm in algorithms}
    kernel_cls = factories.pop() if len(factories) == 1 else None
    kernel = None if kernel_cls is None else kernel_cls(algorithms, xp)
    # The kernels emit no per-exchange events, so a tensor run under an
    # active recorder would trace nothing the per-cell run traces;
    # suspending makes the lockstep path equal the *untraced* per-cell
    # run, which is the bit-identity contract being kept.
    with _events.suspend():
        return _run_lockstep(
            algorithms,
            states,
            epsilon,
            rngs,
            check_stride,
            budget,
            trace_thinning,
            kernel,
            xp,
        )


def _run_lockstep(
    algorithms,
    states,
    epsilon,
    rngs,
    check_stride,
    budget,
    trace_thinning,
    kernel,
    xp,
):
    """The shared window loop: every active trial advances in lockstep.

    Mirrors :func:`~repro.engine.batching.run_batched`'s strided loop per
    trial exactly — same period, same per-window owner draws (one call
    per window instead of per ``block_size`` chunk, equivalent under the
    chunk-invariance contract), same error-check, trace and stopping
    bookkeeping.  A trial that converges (or exhausts the shared budget)
    deactivates: its tensor row, counter and RNG streams are never
    touched again, so the remaining windows are byte-for-byte what its
    per-cell run would never have executed.
    """
    n = algorithms[0].n
    trials = len(algorithms)
    period = check_stride * max(1, n // 4)
    tensor = xp.stack(states)
    owner_rngs = []
    protocol_rngs = []
    for rng in rngs:
        owner_rng, protocol_rng = split_streams(rng)
        owner_rngs.append(owner_rng)
        protocol_rngs.append(protocol_rng)
    counters = [TransmissionCounter() for _ in range(trials)]
    traces = [ConvergenceTrace(thinning=trace_thinning) for _ in range(trials)]
    final_ticks = [0] * trials
    active = []
    for t in range(trials):
        error = normalized_error(tensor[t], states[t])
        traces[t].force_record(0, 0, error)
        if error > epsilon:
            active.append(t)
    # Metrics and spans are window-granular here too (one update per
    # shared window across all active trials), matching run_batched's
    # E22 overhead contract.  Instruments resolve once, out here.
    registry = _metrics.active()
    name = algorithms[0].name
    if registry is not None:
        ticks_counter = registry.counter(
            "repro_engine_ticks_total", "Ticks executed by the engine."
        )
        windows_counter = registry.counter(
            "repro_tensor_windows_total",
            "Shared windows advanced by the trial-tensor driver.",
        )
        active_gauge = registry.gauge(
            "repro_tensor_active_trials",
            "Trials still converging in the current tensor slice.",
        )
    ticks = 0
    while active and ticks < budget:
        window = min(period, budget - ticks)
        with _profile.span("window"):
            rows = xp.asarray(active, dtype=xp.int64)
            owners = xp.stack(
                [owner_rngs[t].integers(n, size=window) for t in active]
            )
            if kernel is not None:
                kernel.advance(rows, owners, tensor, counters, protocol_rngs)
            else:
                for j, t in enumerate(active):
                    algorithms[t].tick_block(
                        owners[j], tensor[t], counters[t], protocol_rngs[t]
                    )
        ticks += window
        with _profile.span("check"):
            still = []
            for t in active:
                error = normalized_error(tensor[t], states[t])
                traces[t].record(counters[t].total, ticks, error)
                final_ticks[t] = ticks
                if error > epsilon:
                    still.append(t)
        if registry is not None:
            ticks_counter.inc(window * len(active), algorithm=name)
            windows_counter.inc(algorithm=name)
            active_gauge.set(len(still), algorithm=name)
        active = still
    results = []
    for t in range(trials):
        values = tensor[t].copy()
        error = normalized_error(values, states[t])
        traces[t].force_record(counters[t].total, final_ticks[t], error)
        results.append(
            GossipRunResult(
                algorithm=algorithms[t].name,
                values=values,
                initial_values=states[t],
                transmissions=counters[t].snapshot(),
                ticks=final_ticks[t],
                converged=error <= epsilon,
                epsilon=epsilon,
                error=error,
                trace=traces[t],
                column_errors=result_column_errors(values, states[t]),
            )
        )
    return results


# -- trial kernels ----------------------------------------------------------


def _kernel_factory(algorithm):
    """The dedicated trial-kernel class for ``algorithm``, or ``None``.

    Exact-type checks on purpose: a third-party subclass overriding
    ``tick`` or ``tick_block`` must run its own code through the generic
    lockstep path, never a kernel modelling the parent's draws.  Modes
    whose draw counts are data-dependent (``rejection``) or whose
    targets need per-point scalar geometry (``position``) stay on the
    generic path too — their ``tick_block`` is already the reference.
    """
    cls = type(algorithm)
    if cls is RandomizedGossip and algorithm.loss_channel is None:
        return _RandomizedTrialKernel
    if cls is GeographicGossip and algorithm.target_mode == "uniform":
        return _GeographicTrialKernel
    if cls is SpatialGossip:
        return _SpatialTrialKernel
    if (
        cls is PathAveragingGossip
        and algorithm.target_mode == "uniform"
        and algorithm.flash_channel is None
    ):
        return _PathAveragingTrialKernel
    if cls is AffineGossipKn or cls is PerturbedAffineGossipKn:
        return _AffineTrialKernel
    return None


def _flat_state(xp, tensor):
    """A ``(trials * n, ...)`` alias of the state tensor for 1-D indexing.

    Flattening the two leading axes turns each step's ``(trial, node)``
    pair gathers into single-index operations — substantially cheaper
    than broadcasting two fancy-index arrays per access.  Trial ``t``'s
    node ``u`` lives at ``t * n + u``.  Returns ``(flat, copied)``:
    lockstep-built stacks are contiguous so ``flat`` is normally a view
    and ``copied`` is False; a strided tensor yields a copy the caller
    must write back.
    """
    shape = (tensor.shape[0] * tensor.shape[1],) + tensor.shape[2:]
    flat = tensor.reshape(shape)
    return flat, not xp.shares_memory(flat, tensor)


def _apply_pair_averages(xp, rows, owners, partners, tensor):
    """Sequential pairwise averaging, vectorized across trials.

    Step ``i`` averages each active trial's ``(owner, partner)`` pair
    simultaneously — trials are independent, only steps within one trial
    are ordered.  ``0.5 * (x + y)`` is the scalar rule's exact IEEE
    expression, and a masked lane encoded as ``partner == owner``
    rewrites ``0.5 * (x + x) == x``, a value-exact no-op.
    """
    flat, copied = _flat_state(xp, tensor)
    offsets = rows * tensor.shape[1]
    flat_owners = owners.T + offsets
    flat_partners = partners.T + offsets
    for i in range(owners.shape[1]):
        io = flat_owners[i]
        ip = flat_partners[i]
        avg = 0.5 * (flat[io] + flat[ip])
        flat[io] = avg
        flat[ip] = avg
    if copied:
        tensor[...] = flat.reshape(tensor.shape)


class _RandomizedTrialKernel:
    """All trials of a :class:`RandomizedGossip` slice, batched.

    Per-trial adjacency is snapshotted into flat/degree/offset arrays so
    a whole window of partner picks resolves as one gather per trial
    (``⌊pick · degree⌋`` into the owner's segment — the scalar rule's
    exact arithmetic); the averaging then runs the shared sequential
    step loop across trials.
    """

    def __init__(self, algorithms, xp):
        self.xp = xp
        self._flat = []
        self._deg = []
        self._off = []
        # Trials sharing one substrate share the neighbors list object;
        # snapshot each distinct adjacency once (ids are stable here —
        # the algorithms keep their lists alive).
        snapshots = {}
        for algorithm in algorithms:
            neighbors = algorithm.neighbors
            entry = snapshots.get(id(neighbors))
            if entry is None:
                deg = xp.array(
                    [adj.size for adj in neighbors], dtype=xp.int64
                )
                flat = (
                    xp.concatenate(neighbors)
                    if int(deg.sum())
                    else xp.empty(0, dtype=xp.int64)
                )
                off = xp.zeros(len(neighbors), dtype=xp.int64)
                off[1:] = xp.cumsum(deg[:-1])
                entry = (flat, deg, off)
                snapshots[id(neighbors)] = entry
            self._flat.append(entry[0])
            self._deg.append(entry[1])
            self._off.append(entry[2])

    def advance(self, rows, owners, tensor, counters, rngs):
        """One window for every active trial (``rows`` indexes trials)."""
        xp = self.xp
        window = owners.shape[1]
        trials = rows.tolist()
        first = trials[0] if trials else None
        if trials and self._flat[first].size and all(
            self._flat[trial] is self._flat[first] for trial in trials
        ):
            # One adjacency snapshot across trials: resolve the whole
            # window's partner picks as a single (trials, window) gather.
            # Row-wise this is the per-trial arithmetic verbatim — only
            # the dispatch count changes.
            flat = self._flat[first]
            picks = xp.stack([rngs[trial].random(window) for trial in trials])
            deg = self._deg[first][owners]
            idx = self._off[first][owners] + (picks * deg).astype(xp.int64)
            chosen = flat[xp.minimum(idx, flat.size - 1)]
            partners = xp.where(deg > 0, chosen, owners)
            exchange_counts = [int(c) for c in (deg > 0).sum(axis=1)]
        else:
            partners = xp.empty_like(owners)
            exchange_counts = []
            for j, trial in enumerate(trials):
                picks = rngs[trial].random(window)
                own = owners[j]
                deg = self._deg[trial][own]
                flat = self._flat[trial]
                if flat.size:
                    idx = self._off[trial][own] + (picks * deg).astype(
                        xp.int64
                    )
                    chosen = flat[xp.minimum(idx, flat.size - 1)]
                    partners[j] = xp.where(deg > 0, chosen, own)
                else:
                    partners[j] = own
                exchange_counts.append(int((deg > 0).sum()))
        _apply_pair_averages(xp, rows, owners, partners, tensor)
        for trial, count in zip(trials, exchange_counts):
            if count:
                counters[trial].charge(2 * count, "near")


class _SharedRouteTable:
    """Persistent ``(n, n)`` route-stats tables for one shared substrate.

    When every trial of a slice routes on the *same* graph object (one
    placement reused across trials, as benchmark harnesses do), the
    greedy next-hop columns are identical across trials — so hops and
    destinations are derived once, on a designated router via
    ``route_stats(..., account=False)``, and memoised as dense rows
    indexed by target.  Each trial still mirrors its own per-cell
    hit/miss ledger exactly: a per-trial seen-set records which targets
    that trial has routed towards before, the first encounter charging a
    miss (:meth:`~repro.routing.cache.CachedGreedyRouter.charge_misses`)
    and every other resolution a hit
    (:meth:`~repro.routing.cache.CachedGreedyRouter.charge_lookups`).

    Memory is ``2 n^2`` int64 plus the boolean row mask — the price of
    replacing per-trial column rebuilds with one table.
    """

    def __init__(self, xp, cache, n, trials):
        self.xp = xp
        self._cache = cache
        self.hops = xp.empty((n, n), dtype=xp.int64)
        self.dest = xp.empty((n, n), dtype=xp.int64)
        self._have = xp.zeros(n, dtype=bool)
        self._seen = [set() for _ in range(trials)]

    def fill(self, lookups):
        """Ensure table rows exist for every target in ``lookups``."""
        need = lookups[~self._have[lookups]]
        for target in need.tolist():
            hops, dest = self._cache.route_stats(target, account=False)
            self.hops[target] = hops
            self.dest[target] = dest
        if need.size:
            self._have[need] = True

    def account(self, trial, cache, lookups, calls):
        """Mirror one trial's per-cell ledger for ``calls`` route lookups.

        Per cell, each of the window's ``calls`` resolutions is one hit
        or one miss, and the misses are exactly the targets the trial
        routes towards for the first time in its run.
        """
        seen = self._seen[trial]
        fresh = [target for target in lookups.tolist() if target not in seen]
        if fresh:
            cache.charge_misses(len(fresh))
            seen.update(fresh)
        cache.charge_lookups(calls - len(fresh))

    def column(self, target):
        """The designated router's next-hop column for ``target``."""
        return self._cache.cached_column(target)


def _shared_route_table(xp, algorithms):
    """A :class:`_SharedRouteTable` when all trials route one graph.

    Sweep cells draw per-trial placements (trial-dependent seed tags),
    so their graphs are distinct objects and this returns ``None`` —
    each trial then resolves stats through its own router, window by
    window.
    """
    caches = [algorithm.route_cache for algorithm in algorithms]
    graph = caches[0].graph
    if any(cache.graph is not graph for cache in caches):
        return None
    return _SharedRouteTable(xp, caches[0], algorithms[0].n, len(algorithms))


class _RoutedPairTrialKernelBase:
    """Shared machinery of the routed endpoint-averaging kernels.

    Subclasses supply the target draw; this base resolves whole windows
    of round trips against the route cache's ``(hops, destination)``
    stats vectors (:meth:`repro.routing.cache.CachedGreedyRouter.route_stats`)
    instead of walking each greedy path hop by hop, with the exact
    hit/miss, charge, abort and ``failed_exchanges`` accounting of the
    per-cell ``tick_block``.  Trials sharing one graph object resolve
    against a :class:`_SharedRouteTable` instead of per-trial stats.
    """

    def __init__(self, algorithms, xp):
        self.xp = xp
        self.algorithms = algorithms
        self._table = _shared_route_table(xp, algorithms)

    def _targets(self, algorithm, own, rng, window):
        raise NotImplementedError

    def advance(self, rows, owners, tensor, counters, rngs):
        """One window for every active trial (``rows`` indexes trials)."""
        xp = self.xp
        window = owners.shape[1]
        partners = xp.empty_like(owners)
        for j, trial in enumerate(rows.tolist()):
            algorithm = self.algorithms[trial]
            own = owners[j]
            targets = self._targets(algorithm, own, rngs[trial], window)
            partners[j] = self._resolve(
                trial, algorithm, own, targets, counters[trial]
            )
        _apply_pair_averages(xp, rows, owners, partners, tensor)

    def _resolve(self, trial, algorithm, own, targets, counter):
        """Round-trip one trial's window; returns the applied partners.

        A lane whose exchange aborts (self-target, or either leg of the
        round trip undelivered) keeps ``partner == owner`` so the shared
        averaging loop leaves its values untouched, exactly like the
        per-cell ``continue``.
        """
        xp = self.xp
        cache = algorithm.route_cache
        valid = targets != own
        count = int(valid.sum())
        partners = own.copy()
        if count == 0:
            return partners
        v_own = own[valid]
        v_tgt = targets[valid]
        lookups = xp.unique(xp.concatenate([v_tgt, v_own]))
        table = self._table
        if table is not None:
            table.fill(lookups)
            table.account(trial, cache, lookups, 2 * count)
            hf = table.hops[v_tgt, v_own]
            df = table.dest[v_tgt, v_own]
            hb = table.hops[v_own, df]
            db = table.dest[v_own, df]
        else:
            hops_mat, dest_mat, index_of = _stats_table(
                xp, cache, lookups, algorithm.n
            )
            cache.charge_lookups(2 * count - int(lookups.size))
            hf = hops_mat[index_of[v_tgt], v_own]
            df = dest_mat[index_of[v_tgt], v_own]
            hb = hops_mat[index_of[v_own], df]
            db = dest_mat[index_of[v_own], df]
        delivered = (df == v_tgt) & (db == v_own)
        charged = int(hf.sum() + hb.sum())
        if charged:
            counter.charge(charged, "route")
        algorithm.failed_exchanges += count - int(delivered.sum())
        lanes = xp.where(valid)[0]
        partners[lanes[delivered]] = v_tgt[delivered]
        return partners


def _stats_table(xp, cache, lookups, n):
    """Stack the cache's stats vectors for ``lookups`` into dense tables.

    Returns ``(hops, dest, index_of)`` where row ``index_of[t]`` of each
    table is target ``t``'s per-source vector — one
    :meth:`~repro.routing.cache.CachedGreedyRouter.route_stats` call (and
    one hit-or-miss) per distinct target, as the accounting contract
    requires.
    """
    stats = [cache.route_stats(int(target)) for target in lookups.tolist()]
    hops_mat = xp.stack([hops for hops, _ in stats])
    dest_mat = xp.stack([dest for _, dest in stats])
    index_of = xp.full(n, -1, dtype=xp.int64)
    index_of[lookups] = xp.arange(lookups.size, dtype=xp.int64)
    return hops_mat, dest_mat, index_of


class _GeographicTrialKernel(_RoutedPairTrialKernelBase):
    """Geographic gossip, ``uniform`` target mode."""

    def _targets(self, algorithm, own, rng, window):
        """Oracle-uniform targets: ``⌊pick · (n−1)⌋`` shifted past self."""
        xp = self.xp
        picks = rng.random(window)
        base = (picks * (algorithm.n - 1)).astype(xp.int64)
        return base + (base >= own)


class _SpatialTrialKernel(_RoutedPairTrialKernelBase):
    """Spatial gossip: per-owner CDF inversion, routes from the stats table."""

    def _targets(self, algorithm, own, rng, window):
        """Invert each owner's cumulative target distribution.

        One scalar ``searchsorted`` per tick — the scalar rule verbatim
        (per-owner CDF rows defeat a single vectorized call); the win is
        on the routing side.
        """
        xp = self.xp
        picks = rng.random(window)
        cdfs = algorithm._cumulative
        last = algorithm.n - 1
        return xp.fromiter(
            (
                min(int(xp.searchsorted(cdfs[node], pick)), last)
                for node, pick in zip(own.tolist(), picks.tolist())
            ),
            dtype=xp.int64,
            count=window,
        )


class _PathAveragingTrialKernel:
    """Path averaging, ``uniform`` mode: stats-resolved delivery, exact means.

    Delivery flags and forward charges resolve against the stats table;
    each delivered operation then walks its cached next-hop column to
    recover the exact node sequence and applies the per-cell mean kernel
    verbatim — path averaging's update depends on every visited node, so
    the walk (already paid for in the accounting) cannot be skipped.
    """

    def __init__(self, algorithms, xp):
        self.xp = xp
        self.algorithms = algorithms
        self._table = _shared_route_table(xp, algorithms)

    def advance(self, rows, owners, tensor, counters, rngs):
        """One window for every active trial (``rows`` indexes trials)."""
        xp = self.xp
        window = owners.shape[1]
        table = self._table
        for j, trial in enumerate(rows.tolist()):
            algorithm = self.algorithms[trial]
            cache = algorithm.route_cache
            counter = counters[trial]
            own = owners[j]
            picks = rngs[trial].random(window)
            base = (picks * (algorithm.n - 1)).astype(xp.int64)
            targets = base + (base >= own)
            lookups = xp.unique(targets)
            if table is not None:
                table.fill(lookups)
                table.account(trial, cache, lookups, window)
                hf = table.hops[targets, own]
                df = table.dest[targets, own]
                column_of = table.column
            else:
                hops_mat, dest_mat, index_of = _stats_table(
                    xp, cache, lookups, algorithm.n
                )
                cache.charge_lookups(window - int(lookups.size))
                hf = hops_mat[index_of[targets], own]
                df = dest_mat[index_of[targets], own]
                column_of = cache.cached_column
            delivered = df == targets
            forward = int(hf.sum())
            if forward:
                counter.charge(forward, "route")
            algorithm.failed_exchanges += window - int(delivered.sum())
            values = tensor[trial]
            flash = 0
            for i in xp.where(delivered)[0].tolist():
                column = column_of(int(targets[i]))
                path = [int(own[i])]
                current = path[0]
                while True:
                    nxt = column[current]
                    if nxt == current:
                        break
                    path.append(nxt)
                    current = nxt
                flash += len(path) - 1
                nodes = xp.asarray(path, dtype=xp.int64)
                block = values[nodes]
                if block.ndim == 1:
                    values[nodes] = block.mean()
                else:
                    # The per-cell reduction-order rule: contiguous per-
                    # column means, never a strided axis-0 reduction.
                    values[nodes] = xp.ascontiguousarray(block.T).mean(axis=1)
            if flash:
                counter.charge(flash, "route")


class _AffineTrialKernel:
    """Affine ``K_n`` dynamics (plain and perturbed), batched across trials.

    Partner picks (and the perturbed variant's noise draws) precompute
    per trial; the cross-weighted pair updates run the shared sequential
    step loop with both sides computed from pre-exchange values before
    either write — the :func:`repro.gossip.affine.affine_pair_update`
    rule, vectorized across trials.
    """

    def __init__(self, algorithms, xp):
        self.xp = xp
        self._alphas = xp.stack([algorithm.alphas for algorithm in algorithms])
        self._perturbed = type(algorithms[0]) is PerturbedAffineGossipKn
        self._bounds = [
            float(getattr(algorithm, "noise_bound", 0.0))
            for algorithm in algorithms
        ]

    def advance(self, rows, owners, tensor, counters, rngs):
        """One window for every active trial (``rows`` indexes trials)."""
        xp = self.xp
        window = owners.shape[1]
        last = self._alphas.shape[1] - 1
        partners = xp.empty_like(owners)
        nus = xp.zeros((len(rows), window)) if self._perturbed else None
        for j, trial in enumerate(rows.tolist()):
            if self._perturbed:
                draws = rngs[trial].random((window, 2))
                base = (draws[:, 0] * last).astype(xp.int64)
                nus[j] = (2.0 * draws[:, 1] - 1.0) * self._bounds[trial]
            else:
                picks = rngs[trial].random(window)
                base = (picks * last).astype(xp.int64)
            partners[j] = base + (base >= owners[j])
        alphas = self._alphas
        multifield = tensor.ndim == 3
        flat, copied = _flat_state(xp, tensor)
        offsets = rows * tensor.shape[1]
        flat_owners = owners.T + offsets
        flat_partners = partners.T + offsets
        alpha_own = alphas[rows[:, None], owners]
        alpha_par = alphas[rows[:, None], partners]
        for i in range(window):
            a_o = alpha_own[:, i]
            a_p = alpha_par[:, i]
            if multifield:
                a_o = a_o[:, None]
                a_p = a_p[:, None]
            io = flat_owners[i]
            ip = flat_partners[i]
            vo = flat[io]
            vp = flat[ip]
            new_o = (1.0 - a_o) * vo + a_p * vp
            new_p = (1.0 - a_p) * vp + a_o * vo
            if nus is not None:
                nu = nus[:, i][:, None] if multifield else nus[:, i]
                new_o = new_o + nu
                new_p = new_p - nu
            flat[io] = new_o
            flat[ip] = new_p
        if copied:
            tensor[...] = flat.reshape(tensor.shape)
        if window:
            for trial in rows.tolist():
                counters[trial].charge(2 * window, "exchange")
