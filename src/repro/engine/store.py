"""Persistent result store: JSON-lines cells under a content-keyed directory.

Layout::

    <root>/
      <content-key>/            # 16 hex chars of sha256(canonical config)
        config.json             # the sweep definition, human-readable
        cells.jsonl             # one CellRecord per line, append-only

The content key hashes every knob that changes the *numbers* — the full
:class:`~repro.experiments.config.ExperimentConfig` plus the engine's
``check_stride`` — so results from different sweep definitions can never
collide in one directory.  ``workers`` is deliberately excluded: the
executor guarantees worker-count invariance, so a sweep may be resumed
with a different degree of parallelism.

Appends are line-atomic in practice (single short ``write`` + flush); a
run killed mid-write leaves at most one truncated trailing line, which
:meth:`ResultStore.load_records` tolerates by skipping lines that fail to
parse.  A skipped line simply means that cell gets recomputed.

``config.json`` additionally records each protocol's engine batching
capability (``"block"`` / ``"scalar"`` / ``"rounds"``) and multi-field
capability (``"native"`` / ``"per-column"``) at the time the
store was created.  The capability is *not* part of the content key —
the key identifies the sweep definition, not the engine version — but a
``check_stride > 1`` store refuses to reopen if a protocol's capability
has since changed: the scalar fallback and the vectorized block path
consume protocol randomness differently, so mixing their cells in one
``cells.jsonl`` would blend non-identical numbers (mirrors the
stride-mismatch guard in the executor).  At stride 1 every protocol runs
the same legacy loop, so the guard does not apply.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.engine.executor import CellKey, CellRecord

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a layer cycle
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "ResultStore",
    "ShardDivergenceError",
    "atomic_write_text",
    "canonical_record_bytes",
    "content_key",
]

#: Bump when the record schema changes; part of the content key so old
#: stores are never misread as new ones.
STORE_FORMAT = 1


def atomic_write_text(path: "str | os.PathLike", text: str) -> None:
    """Replace ``path``'s contents with ``text`` atomically.

    Writes to a pid-suffixed sibling temp file and ``os.replace``s it
    over the target, so a reader never observes a torn file and a
    crashed writer leaves the previous version intact.  This is the one
    write discipline every service-published artifact uses
    (``partial_report.md``, ``telemetry.json``, lease heartbeats);
    multi-process safety comes from the pid in the temp name — two
    concurrent publishers race only on which complete version lands
    last.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, target)


class ShardDivergenceError(ValueError):
    """Two records claim the same cell but disagree on the numbers.

    Raised by :meth:`ResultStore.merge_records` when a record arriving
    from a shard matches an already-held cell key but its canonical
    payload bytes (:func:`canonical_record_bytes`) differ.  Cells are
    deterministic functions of their seeds, so duplicate completions —
    a reclaimed-but-alive worker finishing a cell someone else redid —
    must be byte-identical; a mismatch means corruption (a tampered or
    bit-rotted ``cells.jsonl``) or engine nondeterminism, and silently
    picking either copy would poison the sweep.  Nothing is appended
    for the offending record; the store is left as it was.
    """


def canonical_record_bytes(record: CellRecord) -> bytes:
    """The bytes that define a record's identity for merge/diff purposes.

    Canonical JSON (sorted keys, no whitespace) of the record's
    *comparable* payload: ``wall_clock`` and ``telemetry`` are stripped,
    exactly mirroring their exclusion from :class:`CellRecord` equality —
    two executions of one deterministic cell are the same result no
    matter how long the machine took.
    """
    payload = record.to_dict()
    payload.pop("wall_clock", None)
    payload.pop("telemetry", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _config_payload(config: ExperimentConfig, check_stride: int) -> dict:
    payload = {
        "format": STORE_FORMAT,
        "sizes": list(config.sizes),
        "epsilon": config.epsilon,
        "trials": config.trials,
        "radius_constant": config.radius_constant,
        "field": config.field,
        "root_seed": config.root_seed,
        "algorithms": list(config.algorithms),
        "check_stride": check_stride,
    }
    # The default topology is omitted (one shared rule with the seed
    # tags: graphs.generators.topology_seed_tags) so that stores written
    # before the topology zoo existed keep their content keys and stay
    # resumable; any other family keys a fresh directory.
    from repro.graphs.generators import DEFAULT_TOPOLOGY

    if config.topology != DEFAULT_TOPOLOGY:
        payload["topology"] = config.topology
    # Same back-compat rule for faults: disabled specs (however spelled)
    # keep the pre-dynamics content key, so historical stores resume; an
    # enabled spec is hashed in canonical form, so equivalent spellings
    # ("loss=0.05" vs "loss_prob=0.05") share one directory and resumes
    # can never mix fault regimes.
    spec = config.fault_spec()
    if spec.enabled:
        payload["faults"] = spec.canonical()
    # Same back-compat rule for multi-field sweeps: fields=1 (the scalar
    # engine, however the workload knob is spelled — it is only consulted
    # at k > 1) keeps the pre-multi-field content key, so historical
    # stores resume unchanged; a k > 1 sweep keys on (fields, workload)
    # and can never mix its (n, k) cells into a scalar store.
    if config.fields > 1:
        payload["fields"] = config.fields
        payload["workload"] = config.workload
    return payload


def content_key(config: ExperimentConfig, check_stride: int = 1) -> str:
    """A short stable key for everything that determines a sweep's numbers."""
    if check_stride < 1:
        raise ValueError(f"check_stride must be >= 1, got {check_stride}")
    canonical = json.dumps(
        _config_payload(config, check_stride), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class ResultStore:
    """Append-only persistence for one sweep definition.

    Parameters
    ----------
    root:
        Directory that holds one subdirectory per sweep definition.
    config:
        The sweep the store belongs to.
    check_stride:
        The engine stride the records were produced with (part of the key).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        config: ExperimentConfig,
        check_stride: int = 1,
    ):
        # Imported at call time: repro.experiments sits above the engine.
        from repro.experiments.config import multifield_support, protocol_batching

        self.root = Path(root)
        self.config = config
        self.check_stride = check_stride
        self.batching = protocol_batching(config.algorithms)
        self.multifield = multifield_support(config.algorithms)
        self.key = content_key(config, check_stride)
        self.directory = self.root / self.key
        self.records_path = self.directory / "cells.jsonl"
        self.config_path = self.directory / "config.json"

    @classmethod
    def from_grid_payload(
        cls, root: str | os.PathLike, payload: "dict"
    ) -> "ResultStore":
        """Rebuild a store from a service grid descriptor, verifying it.

        ``payload`` is a :func:`repro.engine.service.service_manifest`
        (a full config payload plus its pinned content ``key``).  The
        store derives its own key from the reconstructed config, and the
        two must agree — the round-trip guard every queue consumer
        (worker shards, daemon per-grid stores, ``repro enqueue``) runs
        before mixing records, so a perturbed descriptor can never land
        cells under a foreign key.
        """
        from repro.engine.service import config_from_payload

        config = config_from_payload(payload["config"])
        store = cls(root, config, int(payload.get("check_stride", 1)))
        expected = payload.get("key")
        if expected is not None and store.key != expected:
            raise ValueError(
                f"derived content key {store.key} but the grid "
                f"descriptor pins {expected}; the config payload did "
                "not round-trip — refusing to mix stores"
            )
        return store

    def open(self) -> "ResultStore":
        """Create the directory and config descriptor if absent.

        Raises :class:`ValueError` when reopening a ``check_stride > 1``
        store whose recorded protocol batching capabilities no longer
        match the current engine — the stored cells ran a different
        execution path than fresh cells would, and the two must not mix.
        The same guard covers multi-field capability at ``fields > 1``:
        a protocol demoted from native to per-column (or vice versa)
        computes its secondary columns on different RNG streams, so old
        and new ``(n, k)`` cells carry non-identical ``field_errors``.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.config_path.exists():
            recorded = self.recorded_batching()
            if (
                self.check_stride > 1
                and recorded is not None
                and recorded != self.batching
            ):
                drifted = sorted(
                    name
                    for name in self.batching
                    if recorded.get(name) != self.batching[name]
                )
                raise ValueError(
                    f"store {self.directory} recorded batching "
                    f"capabilities {recorded} but the current engine has "
                    f"{self.batching} (drifted: {drifted}); at "
                    f"check_stride={self.check_stride} the scalar and "
                    "block paths produce non-identical numbers, so this "
                    "store cannot be resumed — use a fresh store "
                    "directory or reset this one"
                )
            recorded_multifield = self.recorded_multifield()
            if (
                self.config.fields > 1
                and recorded_multifield is not None
                and recorded_multifield != self.multifield
            ):
                drifted = sorted(
                    name
                    for name in self.multifield
                    if recorded_multifield.get(name) != self.multifield[name]
                )
                raise ValueError(
                    f"store {self.directory} recorded multi-field "
                    f"capabilities {recorded_multifield} but the current "
                    f"engine has {self.multifield} (drifted: {drifted}); "
                    f"at fields={self.config.fields} the native and "
                    "per-column paths compute secondary columns on "
                    "different RNG streams, so this store cannot be "
                    "resumed — use a fresh store directory or reset "
                    "this one"
                )
        else:
            payload = _config_payload(self.config, self.check_stride)
            payload["batching"] = dict(self.batching)
            payload["multifield"] = dict(self.multifield)
            self.config_path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        return self

    def recorded_batching(self) -> dict[str, str] | None:
        """The capability map persisted in ``config.json``.

        ``None`` when the store does not exist yet or predates capability
        recording (a legacy store, tolerated for backward compatibility).
        """
        if not self.config_path.exists():
            return None
        try:
            payload = json.loads(self.config_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return None
        batching = payload.get("batching")
        if not isinstance(batching, dict):
            return None
        return {str(k): str(v) for k, v in batching.items()}

    def recorded_multifield(self) -> dict[str, str] | None:
        """The multi-field capability map persisted in ``config.json``.

        ``None`` when the store does not exist yet or predates the
        multi-field engine (a legacy store, tolerated — such stores can
        only hold scalar cells, which both paths compute identically).
        """
        if not self.config_path.exists():
            return None
        try:
            payload = json.loads(self.config_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return None
        multifield = payload.get("multifield")
        if not isinstance(multifield, dict):
            return None
        return {str(k): str(v) for k, v in multifield.items()}

    def reset(self) -> "ResultStore":
        """Drop any persisted cells and descriptor (a fresh run).

        The escape hatch for a capability-drift refusal: the stale
        ``config.json`` is rewritten, so :meth:`open` succeeds again.
        """
        if self.records_path.exists():
            self.records_path.unlink()
        if self.config_path.exists():
            self.config_path.unlink()
        return self.open()

    def append(self, record: CellRecord) -> None:
        """Persist one finished cell (one JSON line, flushed immediately)."""
        self.open()
        with open(self.records_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            handle.flush()

    def merge_records(
        self,
        records: "Iterable[CellRecord]",
        source: str = "merge",
    ) -> dict[str, int]:
        """Fold ``records`` into this store, first-by-cell-key wins.

        The distributed merge primitive: records whose cell key is new
        are appended (in the order given — deterministic when callers
        iterate shards in sorted order); records whose key is already
        held are *verified*, not blindly skipped — their canonical
        payload bytes (:func:`canonical_record_bytes`) must equal the
        held record's, or :class:`ShardDivergenceError` is raised naming
        the cell and ``source``.  Timing/telemetry differences never
        trigger it (they are excluded from the canonical bytes).

        Returns ``{"appended": ..., "duplicates": ...}``.
        """
        held = self.load_records()
        appended = duplicates = 0
        for record in records:
            existing = held.get(record.key)
            if existing is None:
                self.append(record)
                held[record.key] = record
                appended += 1
                continue
            if canonical_record_bytes(existing) != canonical_record_bytes(
                record
            ):
                raise ShardDivergenceError(
                    f"cell {record.key} from {source} diverges from the "
                    f"record already held by {self.directory}: the cell "
                    "is a deterministic function of its seeds, so this "
                    "is corruption or nondeterminism, not a benign "
                    f"duplicate\n  held:     "
                    f"{canonical_record_bytes(existing).decode('utf-8')}\n"
                    f"  incoming: "
                    f"{canonical_record_bytes(record).decode('utf-8')}"
                )
            duplicates += 1
        return {"appended": appended, "duplicates": duplicates}

    def load_records(self) -> dict[CellKey, CellRecord]:
        """All parseable cells; later duplicates win, corrupt lines skipped."""
        records: dict[CellKey, CellRecord] = {}
        if not self.records_path.exists():
            return records
        for line in self.records_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = CellRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # truncated tail of an interrupted run
            records[record.key] = record
        return records

    def __len__(self) -> int:
        return len(self.load_records())
