"""Batched tick execution: vectorized owner sampling, strided error checks.

The legacy driver (:meth:`repro.gossip.base.AsynchronousGossip.run`) draws
one tick owner at a time from the run's RNG and re-measures the oracular
error every ``n // 4`` ticks.  At large ``n`` the scalar RNG calls and the
bookkeeping around them dominate the runtime of the cheap protocols.

:func:`run_batched` removes that overhead in two ways:

* **Owner batching** — tick owners are pre-sampled in vectorized NumPy
  blocks (one ``Generator.integers`` call per block instead of one per
  tick) and handed to the protocol's
  :meth:`~repro.gossip.base.AsynchronousGossip.tick_block` hook, which
  protocols may override to amortize their own per-tick randomness too.
* **Check striding** — the error check (and trace sample) runs every
  ``check_stride * max(1, n // 4)`` ticks instead of every ``n // 4``.

Seed-handling contract: the batched path splits the caller's generator
into an *owner* stream and a *protocol* stream via deterministic
``Generator.spawn``.  Owner draws and protocol draws each consume their
stream in tick order with a fixed number of draws per tick, so the result
is a pure function of ``(rng state, check_stride)`` — independent of the
internal ``block_size`` used to chunk the sampling (verified in the test
suite).

``check_stride=1`` is the degenerate case: it delegates to the legacy
scalar loop so existing numerical results stay bit-identical.  Strides
``>= 2`` use the batched path, whose trajectories are statistically
equivalent but not bit-identical (the RNG stream is split, and the coarser
stopping rule can only run *past* the crossing, never stop short of it).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.gossip.base import AsynchronousGossip, GossipRunResult
from repro.metrics.error import normalized_error
from repro.metrics.trace import ConvergenceTrace
from repro.routing.cost import TransmissionCounter

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "ScalarFallbackWarning",
    "UncenteredFieldWarning",
    "batching_capability",
    "run_batched",
    "split_streams",
]

#: Upper bound on one vectorized owner-sampling block.  Large enough to
#: amortize the RNG call, small enough to keep peak memory trivial.
DEFAULT_BLOCK_SIZE = 8192


class ScalarFallbackWarning(UserWarning):
    """A ``check_stride > 1`` run hit the scalar per-tick fallback.

    The protocol never overrode
    :meth:`~repro.gossip.base.AsynchronousGossip.tick_block`, so the
    batched engine is only amortizing owner sampling and error checks —
    the protocol's own per-tick randomness still runs one scalar RNG call
    at a time.  The run is correct; it is just not getting the fast path
    the stride suggests it should.

    The warning message points at ``docs/batching.md`` (the batching
    contract and how to write a ``tick_block`` override) and at
    :func:`repro.experiments.config.protocol_batching`, which reports the
    capability (``"block"`` / ``"scalar"`` / ``"rounds"``) of every
    registered protocol without running anything.
    """


class UncenteredFieldWarning(UserWarning):
    """A mean-sensitive protocol was handed an uncentred initial field.

    Protocols that declare ``requires_centered_field = True`` (the
    Lemma-1 affine dynamics) only converge on the mean-zero subspace —
    the paper's WLOG ``x̄(0) = 0``.  On an uncentred field the run stalls
    at a deviation floor and burns its whole tick budget.  Centre the
    field first (``values - values.mean()``), as
    ``benchmarks/bench_e09_path_averaging.py`` does.
    """


def _warn_if_uncentered(
    algorithm, initial_values: np.ndarray, epsilon: float
) -> None:
    """Emit :class:`UncenteredFieldWarning` when the run looks futile.

    The deviation floor the offset leakage sustains scales with the
    ratio ``‖offset·1‖ / ‖deviation‖`` (a protocol-dependent constant
    factor away), so only an offset within an order of magnitude of the
    ε target predicts a stall — tiny incidental means (every float field
    has one) converge fine and must not warn.
    """
    if not getattr(algorithm, "requires_centered_field", False):
        return
    deviation = float(np.linalg.norm(initial_values - initial_values.mean()))
    offset = abs(float(initial_values.mean())) * np.sqrt(len(initial_values))
    if offset > 0.1 * epsilon * max(deviation, 1e-300):
        warnings.warn(
            f"{algorithm.name!r} assumes a mean-zero field (the paper's "
            f"WLOG x̄(0) = 0) but the initial values have mean "
            f"{float(initial_values.mean()):.3g}, large relative to the "
            f"eps={epsilon} target; the run is likely to stall at a "
            "deviation floor instead of converging — centre the field "
            "first (values - values.mean())",
            UncenteredFieldWarning,
            stacklevel=3,
        )


def batching_capability(algorithm: AsynchronousGossip | type) -> str:
    """How ``algorithm`` executes under the batched engine.

    Returns one of:

    * ``"block"``  — overrides ``tick_block``; the vectorized fast path.
    * ``"scalar"`` — tick-driven but falls back to per-tick execution
      inside each block (the base-class hook).
    * ``"rounds"`` — not tick-driven at all (e.g. the hierarchical
      executor); the engine passes it through to its native ``run``.

    >>> from repro.gossip.randomized import RandomizedGossip
    >>> batching_capability(RandomizedGossip)
    'block'
    >>> from repro.gossip.hierarchical.rounds import HierarchicalGossip
    >>> batching_capability(HierarchicalGossip)
    'rounds'
    """
    cls = algorithm if isinstance(algorithm, type) else type(algorithm)
    if not issubclass(cls, AsynchronousGossip):
        return "rounds"
    if cls.tick_block is AsynchronousGossip.tick_block:
        return "scalar"
    return "block"


def split_streams(
    rng: np.random.Generator,
) -> tuple[np.random.Generator, np.random.Generator]:
    """Split ``rng`` into deterministic (owner, protocol) child streams.

    Spawning (rather than sharing one stream) is what lets the owner draws
    be vectorized without perturbing the protocol's randomness.
    """
    owner_rng, protocol_rng = rng.spawn(2)
    return owner_rng, protocol_rng


def run_batched(
    algorithm: AsynchronousGossip,
    initial_values: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    *,
    check_stride: int = 1,
    max_ticks: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    trace_thinning: float = 0.02,
) -> GossipRunResult:
    """Run ``algorithm`` to ε through the batched engine.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.gossip.base.AsynchronousGossip` (tick-driven,
        batchable), or a round-based protocol exposing the same
        ``run(initial_values, epsilon, rng, trace_thinning=...)`` surface —
        the latter runs its native executor at every stride.
    initial_values:
        One value per node; the run works on a copy.
    epsilon:
        Target normalized error (the paper's ε).
    rng:
        Source of all run randomness.  With ``check_stride=1`` it is
        consumed exactly as the legacy loop consumes it; otherwise it is
        split into owner/protocol child streams.
    check_stride:
        Multiplier on the legacy error-check period ``max(1, n // 4)``.
        ``1`` reproduces :meth:`AsynchronousGossip.run` bit for bit.
    max_ticks:
        Overrides the algorithm's :meth:`tick_budget`.
    block_size:
        Cap on one vectorized owner block; results do not depend on it.
    trace_thinning:
        Passed through to :class:`ConvergenceTrace`.
    """
    if check_stride < 1:
        raise ValueError(f"check_stride must be >= 1, got {check_stride}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if epsilon > 0:
        _warn_if_uncentered(
            algorithm, np.asarray(initial_values, dtype=np.float64), epsilon
        )
    if not isinstance(algorithm, AsynchronousGossip):
        # Round-based protocols (e.g. the hierarchical executor) have no
        # global tick loop to batch or stride; they run their native
        # recursion unchanged at every stride.
        return algorithm.run(
            initial_values, epsilon, rng, trace_thinning=trace_thinning
        )
    if check_stride == 1:
        # Degenerate case: the legacy scalar loop, bit-identical.
        return algorithm.run(
            initial_values,
            epsilon,
            rng,
            max_ticks=max_ticks,
            trace_thinning=trace_thinning,
        )

    if batching_capability(algorithm) == "scalar":
        warnings.warn(
            f"{algorithm.name!r} does not override tick_block: "
            f"check_stride={check_stride} amortizes owner sampling and "
            "error checks, but the protocol's per-tick randomness still "
            "runs scalar — implement tick_block for the full fast path. "
            "See docs/batching.md for the tick_block contract and the "
            "protocol batching matrix; "
            "repro.experiments.config.protocol_batching reports every "
            "registered protocol's capability",
            ScalarFallbackWarning,
            stacklevel=2,
        )

    n = algorithm.n
    initial_values = np.asarray(initial_values, dtype=np.float64)
    if initial_values.shape != (n,):
        raise ValueError(
            f"need one value per node: expected shape ({n},), "
            f"got {initial_values.shape}"
        )
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")

    period = check_stride * max(1, n // 4)
    budget = algorithm.tick_budget(epsilon) if max_ticks is None else max_ticks
    owner_rng, protocol_rng = split_streams(rng)

    values = initial_values.copy()
    counter = TransmissionCounter()
    trace = ConvergenceTrace(thinning=trace_thinning)
    error = normalized_error(values, initial_values)
    trace.force_record(0, 0, error)
    ticks = 0
    converged = error <= epsilon
    while not converged and ticks < budget:
        window = min(period, budget - ticks)
        done = 0
        while done < window:
            block = min(block_size, window - done)
            owners = owner_rng.integers(n, size=block)
            algorithm.tick_block(owners, values, counter, protocol_rng)
            done += block
        ticks += window
        error = normalized_error(values, initial_values)
        trace.record(counter.total, ticks, error)
        converged = error <= epsilon
    error = normalized_error(values, initial_values)
    converged = error <= epsilon
    trace.force_record(counter.total, ticks, error)
    return GossipRunResult(
        algorithm=algorithm.name,
        values=values,
        initial_values=initial_values,
        transmissions=counter.snapshot(),
        ticks=ticks,
        converged=converged,
        epsilon=epsilon,
        error=error,
        trace=trace,
    )
