"""Batched tick execution: vectorized owner sampling, strided error checks.

The legacy driver (:meth:`repro.gossip.base.AsynchronousGossip.run`) draws
one tick owner at a time from the run's RNG and re-measures the oracular
error every ``n // 4`` ticks.  At large ``n`` the scalar RNG calls and the
bookkeeping around them dominate the runtime of the cheap protocols.

:func:`run_batched` removes that overhead in two ways:

* **Owner batching** — tick owners are pre-sampled in vectorized NumPy
  blocks (one ``Generator.integers`` call per block instead of one per
  tick) and handed to the protocol's
  :meth:`~repro.gossip.base.AsynchronousGossip.tick_block` hook, which
  protocols may override to amortize their own per-tick randomness too.
* **Check striding** — the error check (and trace sample) runs every
  ``check_stride * max(1, n // 4)`` ticks instead of every ``n // 4``.

Seed-handling contract: the batched path splits the caller's generator
into an *owner* stream and a *protocol* stream via deterministic
``Generator.spawn``.  Owner draws and protocol draws each consume their
stream in tick order with a fixed number of draws per tick, so the result
is a pure function of ``(rng state, check_stride)`` — independent of the
internal ``block_size`` used to chunk the sampling (verified in the test
suite).

``check_stride=1`` is the degenerate case: it delegates to the legacy
scalar loop so existing numerical results stay bit-identical.  Strides
``>= 2`` use the batched path, whose trajectories are statistically
equivalent but not bit-identical (the RNG stream is split, and the coarser
stopping rule can only run *past* the crossing, never stop short of it).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.gossip.base import (
    AsynchronousGossip,
    GossipRunResult,
    check_state_shape,
)
from repro.metrics.error import normalized_error, result_column_errors
from repro.metrics.trace import ConvergenceTrace
from repro.observability import events as _events
from repro.observability import metrics as _metrics
from repro.observability import profile as _profile
from repro.routing.cost import TransmissionCounter

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "MultiFieldFallbackWarning",
    "ScalarFallbackWarning",
    "UncenteredFieldWarning",
    "batching_capability",
    "multifield_capability",
    "run_batched",
    "split_streams",
]

#: Upper bound on one vectorized owner-sampling block.  Large enough to
#: amortize the RNG call, small enough to keep peak memory trivial.
DEFAULT_BLOCK_SIZE = 8192


class ScalarFallbackWarning(UserWarning):
    """A ``check_stride > 1`` run hit the scalar per-tick fallback.

    The protocol never overrode
    :meth:`~repro.gossip.base.AsynchronousGossip.tick_block`, so the
    batched engine is only amortizing owner sampling and error checks —
    the protocol's own per-tick randomness still runs one scalar RNG call
    at a time.  The run is correct; it is just not getting the fast path
    the stride suggests it should.

    The warning message points at ``docs/batching.md`` (the batching
    contract and how to write a ``tick_block`` override) and at
    :func:`repro.experiments.config.protocol_batching`, which reports the
    capability (``"block"`` / ``"scalar"`` / ``"rounds"``) of every
    registered protocol without running anything.
    """


class MultiFieldFallbackWarning(UserWarning):
    """An ``(n, k)`` run hit the per-column scalar fallback.

    The protocol does not declare
    :attr:`~repro.gossip.base.AsynchronousGossip.supports_multifield`,
    so the engine cannot hand it a field matrix: an unaudited ``tick``
    may hold scalar assumptions (flattening reductions, row-view
    aliasing) that broadcast silently instead of failing.  The run is
    still correct — the engine executes ``k`` independent scalar passes,
    column 0 on the caller's RNG (bit-identical to a plain scalar run)
    and each secondary column on its own spawned child stream — but all
    routing/sampling amortization is lost: the work is exactly the
    ``k`` serial runs the multi-field engine exists to replace.

    The warning message points at ``docs/workloads.md`` (the audit
    checklist a ``tick`` must pass before declaring support) and at
    :func:`repro.experiments.config.multifield_support`, which reports
    every registered protocol's capability without running anything.
    """


class UncenteredFieldWarning(UserWarning):
    """A mean-sensitive protocol was handed an uncentred initial field.

    Protocols that declare ``requires_centered_field = True`` (the
    Lemma-1 affine dynamics) only converge on the mean-zero subspace —
    the paper's WLOG ``x̄(0) = 0``.  On an uncentred field the run stalls
    at a deviation floor and burns its whole tick budget.  Centre the
    field first (``values - values.mean()``), as
    ``benchmarks/bench_e09_path_averaging.py`` does.
    """


def _warn_if_uncentered(
    algorithm,
    initial_values: np.ndarray,
    epsilon: float,
    stacklevel: int = 3,
) -> None:
    """Emit :class:`UncenteredFieldWarning` when the run looks futile.

    The deviation floor the offset leakage sustains scales with the
    ratio ``‖offset·1‖ / ‖deviation‖`` (a protocol-dependent constant
    factor away), so only an offset within an order of magnitude of the
    ε target predicts a stall — tiny incidental means (every float field
    has one) converge fine and must not warn.

    Multi-field matrices are audited column by column (each column is an
    independent consensus problem); the first offending column is named.
    """
    if not getattr(algorithm, "requires_centered_field", False):
        return
    matrix = initial_values if initial_values.ndim == 2 else initial_values[:, None]
    for column_index in range(matrix.shape[1]):
        column = matrix[:, column_index]
        deviation = float(np.linalg.norm(column - column.mean()))
        offset = abs(float(column.mean())) * np.sqrt(len(column))
        if offset > 0.1 * epsilon * max(deviation, 1e-300):
            where = (
                ""
                if initial_values.ndim == 1
                else f" (field column {column_index})"
            )
            warnings.warn(
                f"{algorithm.name!r} assumes a mean-zero field (the paper's "
                f"WLOG x̄(0) = 0) but the initial values{where} have mean "
                f"{float(column.mean()):.3g}, large relative to the "
                f"eps={epsilon} target; the run is likely to stall at a "
                "deviation floor instead of converging — centre the field "
                "first (values - values.mean())",
                UncenteredFieldWarning,
                stacklevel=stacklevel,
            )
            return


def batching_capability(algorithm: AsynchronousGossip | type) -> str:
    """How ``algorithm`` executes under the batched engine.

    Returns one of:

    * ``"block"``  — overrides ``tick_block``; the vectorized fast path.
    * ``"scalar"`` — tick-driven but falls back to per-tick execution
      inside each block (the base-class hook).
    * ``"rounds"`` — not tick-driven at all (e.g. the hierarchical
      executor); the engine passes it through to its native ``run``.

    >>> from repro.gossip.randomized import RandomizedGossip
    >>> batching_capability(RandomizedGossip)
    'block'
    >>> from repro.gossip.hierarchical.rounds import HierarchicalGossip
    >>> batching_capability(HierarchicalGossip)
    'rounds'
    """
    cls = algorithm if isinstance(algorithm, type) else type(algorithm)
    if not issubclass(cls, AsynchronousGossip):
        return "rounds"
    if cls.tick_block is AsynchronousGossip.tick_block:
        return "scalar"
    return "block"


def multifield_capability(algorithm) -> str:
    """How ``algorithm`` executes an ``(n, k)`` field matrix.

    Returns ``"native"`` when the protocol declares
    :attr:`~repro.gossip.base.AsynchronousGossip.supports_multifield`
    (one pass mixes all ``k`` columns on shared routing/sampling), or
    ``"per-column"`` when the engine would fall back to ``k`` serial
    scalar passes with a :class:`MultiFieldFallbackWarning`.

    >>> from repro.gossip.randomized import RandomizedGossip
    >>> multifield_capability(RandomizedGossip)
    'native'
    """
    # getattr on the instance, not its type: DynamicGossip propagates the
    # wrapped protocol's capability as an instance attribute.
    return (
        "native"
        if getattr(algorithm, "supports_multifield", False)
        else "per-column"
    )


def split_streams(
    rng: np.random.Generator,
) -> tuple[np.random.Generator, np.random.Generator]:
    """Split ``rng`` into deterministic (owner, protocol) child streams.

    Spawning (rather than sharing one stream) is what lets the owner draws
    be vectorized without perturbing the protocol's randomness.
    """
    owner_rng, protocol_rng = rng.spawn(2)
    return owner_rng, protocol_rng


def run_batched(
    algorithm: AsynchronousGossip,
    initial_values: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    *,
    check_stride: int = 1,
    max_ticks: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    trace_thinning: float = 0.02,
    stacklevel: int = 2,
) -> GossipRunResult:
    """Run ``algorithm`` to ε through the batched engine.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.gossip.base.AsynchronousGossip` (tick-driven,
        batchable), or a round-based protocol exposing the same
        ``run(initial_values, epsilon, rng, trace_thinning=...)`` surface —
        the latter runs its native executor at every stride.
    initial_values:
        One value per node (shape ``(n,)``), or an ``(n, k)`` matrix of
        ``k`` stacked fields.  Multi-field state shares every owner
        draw, target pick, and route across all columns; the stopping
        rule tracks the primary field (column 0), which stays
        bit-identical to the scalar run on the same seed.  Protocols
        without :attr:`~repro.gossip.base.AsynchronousGossip.supports_multifield`
        fall back to per-column scalar passes with a
        :class:`MultiFieldFallbackWarning`.
    epsilon:
        Target normalized error (the paper's ε).
    rng:
        Source of all run randomness.  With ``check_stride=1`` it is
        consumed exactly as the legacy loop consumes it; otherwise it is
        split into owner/protocol child streams.
    check_stride:
        Multiplier on the legacy error-check period ``max(1, n // 4)``.
        ``1`` reproduces :meth:`AsynchronousGossip.run` bit for bit.
    max_ticks:
        Overrides the algorithm's :meth:`tick_budget`.
    block_size:
        Cap on one vectorized owner block; results do not depend on it.
    trace_thinning:
        Passed through to :class:`ConvergenceTrace`.
    stacklevel:
        How many frames above this function the *user's* call site sits,
        for warning attribution (``2``, the default, points at the
        direct caller).  Wrappers that re-enter the engine — the sweep
        executor, the CLI — thread their own depth through so fallback
        warnings name the entry point, not engine internals.
    """
    if check_stride < 1:
        raise ValueError(f"check_stride must be >= 1, got {check_stride}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    initial_values = np.asarray(initial_values, dtype=np.float64)
    if initial_values.ndim == 2 and initial_values.shape[1] == 0:
        # A degenerate zero-field matrix used to slip through to the
        # per-column fallback's column-0 slice (an opaque IndexError) or
        # run native protocols on an empty state; fail loudly at the door.
        raise ValueError(
            "multi-field state needs at least one field column: got shape "
            f"{initial_values.shape}"
        )
    if (
        initial_values.ndim == 2
        and multifield_capability(algorithm) != "native"
    ):
        if not getattr(algorithm, "multifield_fallback_safe", True):
            # A protocol carrying state across runs (a DynamicGossip
            # wrapper: its epoch clock and loss streams advance) cannot
            # be rerun per column — columns 1..k-1 would replay on a
            # spent fault timeline with no error raised.
            raise TypeError(
                f"{getattr(algorithm, 'name', type(algorithm).__name__)!r} "
                "declares multifield_fallback_safe=False (its state "
                "advances across runs), so the per-column multi-field "
                "fallback cannot rerun it for each field column; wrap a "
                "protocol that declares supports_multifield (every "
                "tick-driven registered protocol does) or pass scalar "
                "(n,) state"
            )
        name = getattr(algorithm, "name", type(algorithm).__name__)
        columns = initial_values.shape[1]
        reason = getattr(algorithm, "multifield_fallback_reason", None)
        if reason is not None:
            # Declared per-column by design (e.g. hierarchical): advising
            # the user to flip supports_multifield would be harmful.
            message = (
                f"{name!r} runs multi-field state per column by design "
                f"({reason}): its {columns} field columns execute as "
                "independent scalar passes — correct results at the "
                "serial cost, with no cross-field amortization (see "
                "docs/workloads.md)"
            )
        else:
            message = (
                f"{name!r} does not declare supports_multifield: the "
                f"engine is running its {columns} field columns as "
                "independent scalar passes (column 0 on the caller's "
                "RNG, secondaries on spawned child streams), so routing "
                "and owner sampling are not amortized across fields — "
                "audit tick/tick_block against the multi-field checklist "
                "in docs/workloads.md and declare supports_multifield = "
                "True for the single-pass fast path; "
                "repro.experiments.config.multifield_support reports "
                "every registered protocol's capability"
            )
        warnings.warn(message, MultiFieldFallbackWarning, stacklevel=stacklevel)
        # The fallback executes k whole runs inside this one; tracing
        # them would interleave k start/end streams into one file, so
        # the recorder is suspended (docs/observability.md lists the
        # traceable configurations).
        with _events.suspend():
            return _run_per_column(
                algorithm,
                initial_values,
                epsilon,
                rng,
                check_stride=check_stride,
                max_ticks=max_ticks,
                block_size=block_size,
                trace_thinning=trace_thinning,
                # Inner runs sit two frames deeper (this frame plus
                # _run_per_column's) from the user's call site.
                stacklevel=stacklevel + 2,
            )
    if epsilon > 0:
        _warn_if_uncentered(
            algorithm, initial_values, epsilon, stacklevel=stacklevel + 1
        )
    if not isinstance(algorithm, AsynchronousGossip):
        # Round-based protocols (e.g. the hierarchical executor) have no
        # global tick loop to batch or stride; they run their native
        # recursion unchanged at every stride.  They also predate the
        # tick-shaped event vocabulary, so tracing stays suspended.
        with _events.suspend():
            return algorithm.run(
                initial_values, epsilon, rng, trace_thinning=trace_thinning
            )
    if check_stride == 1:
        # Degenerate case: the legacy scalar loop, bit-identical.
        return algorithm.run(
            initial_values,
            epsilon,
            rng,
            max_ticks=max_ticks,
            trace_thinning=trace_thinning,
        )

    if batching_capability(algorithm) == "scalar":
        warnings.warn(
            f"{algorithm.name!r} does not override tick_block: "
            f"check_stride={check_stride} amortizes owner sampling and "
            "error checks, but the protocol's per-tick randomness still "
            "runs scalar — implement tick_block for the full fast path. "
            "See docs/batching.md for the tick_block contract and the "
            "protocol batching matrix; "
            "repro.experiments.config.protocol_batching reports every "
            "registered protocol's capability",
            ScalarFallbackWarning,
            stacklevel=stacklevel,
        )

    n = algorithm.n
    initial_values = check_state_shape(initial_values, n)
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")

    period = check_stride * max(1, n // 4)
    budget = algorithm.tick_budget(epsilon) if max_ticks is None else max_ticks
    owner_rng, protocol_rng = split_streams(rng)

    values = initial_values.copy()
    counter = TransmissionCounter()
    trace = ConvergenceTrace(thinning=trace_thinning)
    error = normalized_error(values, initial_values)
    trace.force_record(0, 0, error)
    recorder = _events.active()
    if recorder is not None:
        recorder.emit(
            _events.start_event(algorithm, initial_values, epsilon, check_stride)
        )
    # Metrics and spans are window-granular: one registry update and one
    # span pair per ``period`` ticks (thousands), never per tick — the
    # E22 benchmark holds the enabled overhead to ≤1.05× on this basis.
    # Instruments are resolved once, out here; the loop only increments.
    registry = _metrics.active()
    if registry is not None:
        registry.counter(
            "repro_engine_runs_total", "Batched engine runs started."
        ).inc(algorithm=algorithm.name)
        ticks_counter = registry.counter(
            "repro_engine_ticks_total", "Ticks executed by the engine."
        )
        checks_counter = registry.counter(
            "repro_engine_checks_total", "Strided error checks run."
        )
        error_gauge = registry.gauge(
            "repro_engine_error", "Normalized error at the last check."
        )
    ticks = 0
    converged = error <= epsilon
    while not converged and ticks < budget:
        window = min(period, budget - ticks)
        with _profile.span("window"):
            done = 0
            while done < window:
                block = min(block_size, window - done)
                owners = owner_rng.integers(n, size=block)
                algorithm.tick_block(owners, values, counter, protocol_rng)
                done += block
                if recorder is not None:
                    recorder.emit({"e": "batch", "ticks": block})
        ticks += window
        with _profile.span("check"):
            error = normalized_error(values, initial_values)
        trace.record(counter.total, ticks, error)
        converged = error <= epsilon
        if recorder is not None:
            recorder.emit(
                {"e": "check", "ticks": ticks, "tx": counter.total, "error": error}
            )
        if registry is not None:
            ticks_counter.inc(window, algorithm=algorithm.name)
            checks_counter.inc(algorithm=algorithm.name)
            error_gauge.set(error, algorithm=algorithm.name)
    error = normalized_error(values, initial_values)
    converged = error <= epsilon
    trace.force_record(counter.total, ticks, error)
    if recorder is not None:
        recorder.emit(
            {
                "e": "end",
                "ticks": ticks,
                "tx": counter.snapshot(),
                "error": error,
                "converged": converged,
                "values": values.tolist(),
            }
        )
    return GossipRunResult(
        algorithm=algorithm.name,
        values=values,
        initial_values=initial_values,
        transmissions=counter.snapshot(),
        ticks=ticks,
        converged=converged,
        epsilon=epsilon,
        error=error,
        trace=trace,
        column_errors=result_column_errors(values, initial_values),
    )


def _run_per_column(
    algorithm,
    initial_values: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
    **kwargs,
) -> GossipRunResult:
    """The multi-field fallback: ``k`` independent scalar passes.

    Column 0 consumes the caller's generator exactly as a plain scalar
    run would (``Generator.spawn`` derives children from the seed
    sequence without advancing the stream), preserving the column-0
    bit-identity contract; each secondary column runs on its own spawned
    child, so its routing realization is independent — the semantics of
    the serial-sweep baseline the native multi-field path amortizes
    away.  Reuses the protocol instance across columns, which requires
    the protocol to be rerunnable from fresh initial values (every
    tick-driven protocol in this library is).  Protocols declaring
    ``multifield_fallback_safe = False`` — a
    :class:`~repro.dynamics.overlay.DynamicGossip` wrapping an inner
    protocol without multi-field support — are rejected with a
    :class:`TypeError` before this path, because rerunning them would
    replay columns 1..k-1 on a spent fault timeline.

    Ticks and transmissions accumulate across columns (the true serial
    cost); the trace and the scalar ``error`` are column 0's, and the
    per-column final errors land in ``column_errors``.
    """
    fields = initial_values.shape[1]
    runs = [
        run_batched(
            algorithm,
            np.ascontiguousarray(initial_values[:, 0]),
            epsilon,
            rng,
            **kwargs,
        )
    ]
    # Children are spawned only *after* column 0's run: a strided run
    # spawns its own (owner, protocol) children from ``rng``, and those
    # must get the same spawn indices a plain scalar run would hand them
    # for column 0 to stay bit-identical at every stride.
    children = rng.spawn(fields - 1) if fields > 1 else []
    for column_index, child in enumerate(children, start=1):
        runs.append(
            run_batched(
                algorithm,
                np.ascontiguousarray(initial_values[:, column_index]),
                epsilon,
                child,
                **kwargs,
            )
        )
    counter = TransmissionCounter()
    for run in runs:
        for category, amount in run.transmissions.items():
            if category != "total":
                counter.charge(amount, category)
    return GossipRunResult(
        algorithm=runs[0].algorithm,
        values=np.column_stack([run.values for run in runs]),
        initial_values=initial_values,
        transmissions=counter.snapshot(),
        ticks=sum(run.ticks for run in runs),
        converged=all(run.converged for run in runs),
        epsilon=epsilon,
        error=runs[0].error,
        trace=runs[0].trace,
        column_errors=np.array([run.error for run in runs]),
    )
