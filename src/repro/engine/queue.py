"""File-backed lease queue: the work-distribution substrate of the sweep
service.

A distributed sweep needs exactly one piece of shared mutable state: *who
is working on which cell right now*.  Everything else — what a cell is,
how it executes, where its record lands — is already deterministic and
append-only.  This module keeps that one piece of state on the
filesystem, using only atomic primitives every POSIX filesystem provides
(``O_CREAT | O_EXCL`` exclusive creation, ``os.rename`` within a
directory), so N worker *processes* (or N hosts over a shared
filesystem) can coordinate without a broker.

Layout (queue format 2)::

    <queue root>/
      manifest.json            # format, lease ttl, daemon flag, admission
                               # bound, opaque service payload
      grids/<key>.json         # immutable grid descriptor per enqueued
                               # sweep (config payload + priority)
      pending/p0/              # priority-classed registration buckets:
      pending/p1/              #   <seq>__<stem>.json, claimed strictly
      pending/p2/              #   high-before-low (p0 first), FIFO within
      leases/<stem>.json       # live lease: owner, heartbeat, attempt
      done/<stem>.json         # completion marker: owner, attempt, timing
      reclaimed/<stem>.a<k>.json  # audit log of every reclaimed lease
      drain                    # drain marker: stop accepting, finish work

A cell's *stem* is its :func:`cell_id`, prefixed by its grid's content
key when the cell was enqueued through a grid descriptor — so a daemon
session can carry cells of several sweeps without identity collisions.

Lease lifecycle (see ``docs/sweep_service.md`` for the full rules):

* **claim** — a worker acquires a pending cell by *exclusively creating*
  its lease file; exactly one creator wins.  Pending entries are walked
  bucket by bucket (``p0`` → ``p1`` → ``p2``), in enqueue-sequence order
  within each bucket: priority drains strictly high-before-low.  A cell
  is pending when it has no ``done`` marker and no live lease.
* **heartbeat** — the owner periodically rewrites the lease with a fresh
  timestamp (atomic temp-file + ``os.replace``).  A heartbeat against a
  lease that was stolen or superseded raises :class:`LeaseLost`.
* **reclaim** — a lease whose heartbeat is older than the queue's
  ``ttl`` is presumed dead.  A claimant steals it by *renaming* the stale
  lease into the ``reclaimed/`` graveyard — rename is the atomic arbiter,
  so exactly one stealer wins — then claims the cell fresh with the
  attempt counter bumped.
* **complete** — the owner writes the ``done`` marker (atomic replace,
  idempotent), removes its lease, and retires the pending entry.

Daemon sessions additionally grow **admission control**: a queue created
with ``max_pending`` refuses (:class:`QueueFull`) any
:meth:`~LeaseQueue.register_grid` that would push the number of
unfinished registered cells past the bound — the backpressure signal
``repro enqueue`` turns into exit code 3.  :meth:`~LeaseQueue.request_drain`
drops a marker file that tells daemon workers and the coordinator to
finish the backlog and exit instead of idling for more work.

The queue never executes anything and never talks to the result store;
it only arbitrates ownership.  Duplicate execution is *possible by
design* (a worker that stalls past the ttl is presumed dead, gets
reclaimed, then wakes up and finishes anyway) and harmless: cells are
deterministic, so duplicates are byte-identical and the shard merger
(:func:`repro.engine.service.merge_shards`) deduplicates them — and
*asserts* the byte-identity, which turns the failure mode into a
nondeterminism detector.

The clock is injectable (``clock=time.time`` by default) so tests can
drive reclamation deterministically with a fake clock; real deployments
share wall-clock time across workers, and the ttl should be chosen
orders of magnitude above plausible clock skew.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.engine.executor import SweepCell
from repro.observability import metrics as _metrics

__all__ = [
    "DEFAULT_PRIORITY",
    "Lease",
    "LeaseLost",
    "LeaseQueue",
    "PRIORITIES",
    "QueueFull",
    "QueueStats",
    "cell_id",
]

#: Bump when the on-disk queue layout changes; refuses foreign manifests.
QUEUE_FORMAT = 2

#: The priority classes, highest first; claims drain p0 before p1 before p2.
PRIORITIES = (0, 1, 2)

#: Where a grid lands when the enqueuer does not say otherwise.
DEFAULT_PRIORITY = 1


def cell_id(cell: SweepCell) -> str:
    """The filesystem-safe identity of one sweep cell.

    Matches the trace-file naming convention
    (:func:`repro.engine.executor.cell_trace_path`) so a cell's lease,
    done marker, and trace all carry the same stem.
    """
    return f"{cell.algorithm}__n{cell.n}__t{cell.trial}"


class LeaseLost(RuntimeError):
    """Raised when a worker heartbeats a lease it no longer owns.

    This happens when the worker stalled past the queue ttl and another
    worker reclaimed the cell.  The correct response is to finish (or
    abandon) the current cell and move on: the record is deterministic,
    so a duplicate completion merges cleanly.
    """


class QueueFull(RuntimeError):
    """Raised when admitting a grid would exceed the queue's
    ``max_pending`` bound — the daemon's backpressure signal.

    Nothing is partially enqueued: the admission check runs before any
    pending entry is written, so a refused grid leaves the queue
    untouched and the enqueue can simply be retried after the backlog
    drains.
    """


@dataclass(frozen=True)
class Lease:
    """A worker's claim on one cell: the handle for heartbeat/complete.

    ``grid`` names the content key of the grid descriptor the cell was
    enqueued under (``None`` for gridless sessions, e.g. property
    tests), so a daemon worker can resolve the right config and shard
    store per cell.
    """

    cell: SweepCell
    owner: str
    attempt: int
    path: Path
    claimed_at: float
    grid: "str | None" = None

    @property
    def id(self) -> str:
        """The leased cell's :func:`cell_id`."""
        return cell_id(self.cell)

    @property
    def stem(self) -> str:
        """The cell's queue-wide identity (grid-prefixed when gridded)."""
        return self.id if self.grid is None else f"{self.grid}__{self.id}"


@dataclass(frozen=True)
class QueueStats:
    """One snapshot of queue health (the service telemetry payload).

    ``pending`` counts cells that are claimable right now — no done
    marker and no *live* lease; a stale-leased cell is pending, because
    the next claimant will reclaim it.  ``pending_by_priority`` splits
    that count per priority class (index 0 = ``p0``).
    """

    total: int
    pending: int
    leased: int
    done: int
    reclamations: int
    pending_by_priority: "tuple[int, ...]" = (0,) * len(PRIORITIES)


class LeaseQueue:
    """Lease-based work queue over a directory of sweep cells.

    Create one per sweep session with :meth:`create` (the coordinator),
    attach from worker processes (or ``repro enqueue`` / ``repro
    drain``) with :meth:`open`.

    Parameters
    ----------
    root:
        The queue directory.
    clock:
        Seconds-returning callable used for heartbeats and staleness;
        injectable so tests can simulate time deterministically.
    """

    def __init__(
        self, root: "str | os.PathLike", clock: Callable[[], float] = time.time
    ):
        self.root = Path(root)
        self.manifest_path = self.root / "manifest.json"
        self.grids_dir = self.root / "grids"
        self.pending_dir = self.root / "pending"
        self.lease_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.reclaimed_dir = self.root / "reclaimed"
        self.drain_path = self.root / "drain"
        self._clock = clock
        self._manifest: dict | None = None
        self._grid_cache: dict[str, dict] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        root: "str | os.PathLike",
        cells: Iterable[SweepCell],
        *,
        ttl: float,
        payload: "Mapping | None" = None,
        clock: Callable[[], float] = time.time,
        priority: int = DEFAULT_PRIORITY,
        daemon: bool = False,
        max_pending: "int | None" = None,
    ) -> "LeaseQueue":
        """Initialise a fresh queue session holding ``cells``.

        Any prior session state under ``root`` (leases, done markers,
        pending entries, grid descriptors, reclamation log, manifest,
        drain marker) is wiped — a new session decides pending-ness from
        the *result store*, not from old markers.  Sibling directories
        (notably ``shards/``) are left untouched so a crashed session's
        completed work survives into the next one.

        ``payload`` is an opaque service descriptor that workers read
        back via :meth:`manifest`.  When it carries a sweep grid (a
        ``config`` and its pinned content ``key``, i.e. a
        :func:`repro.engine.service.service_manifest`), the grid is
        registered as this session's first grid descriptor and ``cells``
        are enqueued under it at ``priority``; otherwise the cells are
        enqueued gridless.

        ``daemon=True`` marks a long-lived session: workers idle for
        more work when the queue is momentarily empty, until
        :meth:`request_drain` (or SIGTERM on the coordinator) flips the
        drain marker.  ``max_pending`` bounds admission
        (:meth:`register_grid` raises :class:`QueueFull` past it).
        """
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        queue = cls(root, clock=clock)
        buckets = [queue.pending_dir / f"p{p}" for p in PRIORITIES]
        wipe = [
            queue.lease_dir,
            queue.done_dir,
            queue.reclaimed_dir,
            queue.grids_dir,
            *buckets,
        ]
        for directory in wipe:
            directory.mkdir(parents=True, exist_ok=True)
            for stale in directory.glob("*.json"):
                stale.unlink()
        try:
            queue.drain_path.unlink()
        except FileNotFoundError:
            pass
        manifest = {
            "format": QUEUE_FORMAT,
            "ttl": float(ttl),
            "daemon": bool(daemon),
            "max_pending": max_pending,
            "payload": dict(payload) if payload is not None else {},
        }
        _atomic_write_json(queue.manifest_path, manifest)
        queue._manifest = manifest
        cell_list = list(cells)
        grid_payload = manifest["payload"]
        if "config" in grid_payload and "key" in grid_payload:
            queue.register_grid(grid_payload, cell_list, priority=priority)
        elif cell_list:
            queue._enqueue_cells(None, cell_list, priority)
        return queue

    @classmethod
    def open(
        cls, root: "str | os.PathLike", clock: Callable[[], float] = time.time
    ) -> "LeaseQueue":
        """Attach to an existing queue session (the worker entry)."""
        queue = cls(root, clock=clock)
        queue.manifest()  # raises early on a missing/foreign queue
        return queue

    def manifest(self) -> dict:
        """The session descriptor written by :meth:`create` (cached)."""
        if self._manifest is None:
            try:
                manifest = json.loads(
                    self.manifest_path.read_text(encoding="utf-8")
                )
            except FileNotFoundError:
                raise FileNotFoundError(
                    f"{self.root} holds no queue manifest — create the "
                    "session first (repro serve-sweep, or LeaseQueue.create)"
                ) from None
            if manifest.get("format") != QUEUE_FORMAT:
                raise ValueError(
                    f"queue {self.root} has format "
                    f"{manifest.get('format')!r}, this engine speaks "
                    f"{QUEUE_FORMAT}"
                )
            self._manifest = manifest
        return self._manifest

    @property
    def ttl(self) -> float:
        """Seconds after the last heartbeat at which a lease is stale."""
        return float(self.manifest()["ttl"])

    @property
    def daemon(self) -> bool:
        """True for a long-lived session (workers idle instead of exiting
        when the queue is momentarily empty)."""
        return bool(self.manifest().get("daemon", False))

    @property
    def max_pending(self) -> "int | None":
        """The admission bound (``None`` = unbounded)."""
        bound = self.manifest().get("max_pending")
        return None if bound is None else int(bound)

    # -- grid registry -------------------------------------------------

    def grids(self) -> dict[str, dict]:
        """Every registered grid descriptor, keyed by content key.

        Descriptors are immutable once written, so reads are cached;
        only keys not seen yet touch the filesystem — which is how a
        running daemon discovers grids enqueued after it started.
        """
        if self.grids_dir.is_dir():
            for path in sorted(self.grids_dir.glob("*.json")):
                key = path.stem
                if key in self._grid_cache:
                    continue
                entry = _read_json(path)
                if entry is not None:
                    self._grid_cache[key] = entry
        return dict(self._grid_cache)

    def grid(self, key: str) -> dict:
        """One grid descriptor; raises ``KeyError`` when unregistered."""
        if key not in self._grid_cache:
            entry = _read_json(self.grids_dir / f"{key}.json")
            if entry is None:
                raise KeyError(f"queue {self.root} has no grid {key!r}")
            self._grid_cache[key] = entry
        return self._grid_cache[key]

    def register_grid(
        self,
        payload: Mapping,
        cells: Iterable[SweepCell],
        *,
        priority: int = DEFAULT_PRIORITY,
    ) -> dict:
        """Admit one sweep grid into the session at ``priority``.

        ``payload`` must pin the grid's content ``key`` (a
        :func:`repro.engine.service.service_manifest`); it is written
        once as an immutable descriptor under ``grids/``.  Re-registering
        the same key is idempotent *only* with a byte-equal payload —
        two configs mapping to one key would mix stores, so a mismatch
        raises ``ValueError``.  Cells already done or already pending
        are skipped; the rest are enqueued under the grid's stem prefix.

        Admission is all-or-nothing: when the queue was created with
        ``max_pending`` and admitting the missing cells would push the
        unfinished backlog past it, :class:`QueueFull` is raised before
        anything is written.

        Returns ``{"grid", "priority", "enqueued", "skipped",
        "pending_depth"}``.
        """
        priority = int(priority)
        if priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {priority}"
            )
        payload = dict(payload)
        key = str(payload.get("key") or "")
        if not key:
            raise ValueError("grid payload pins no content key")
        existing = _read_json(self.grids_dir / f"{key}.json")
        if existing is not None and existing.get("payload") != payload:
            raise ValueError(
                f"grid {key} is already registered with a different "
                "payload; two configs mapping to one content key would "
                "mix stores — refusing"
            )
        done = self.done_cells()
        pending_stems = {
            stem for _, _, stem, _ in self._pending_entries()
        }
        fresh: list[SweepCell] = []
        skipped = 0
        for cell in cells:
            stem = f"{key}__{cell_id(cell)}"
            if stem in done or stem in pending_stems:
                skipped += 1
            else:
                fresh.append(cell)
        depth = len(pending_stems - done)
        bound = self.max_pending
        if bound is not None and fresh and depth + len(fresh) > bound:
            raise QueueFull(
                f"admitting {len(fresh)} cells of grid {key} would put "
                f"the queue at {depth + len(fresh)} pending, past "
                f"max_pending={bound} — drain the backlog and retry"
            )
        if existing is None:
            descriptor = {
                "payload": payload,
                "priority": priority,
                "registered_at": self._clock(),
            }
            self.grids_dir.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(
                    self.grids_dir / f"{key}.json",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
            except FileExistsError:
                # Lost a registration race; the winner's payload must
                # agree (immutability is what makes the cache safe).
                other = _read_json(self.grids_dir / f"{key}.json")
                if other is not None and other.get("payload") != payload:
                    raise ValueError(
                        f"grid {key} was concurrently registered with a "
                        "different payload — refusing"
                    )
            else:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(descriptor, handle, sort_keys=True)
                    handle.flush()
                self._grid_cache[key] = descriptor
        self._enqueue_cells(key, fresh, priority)
        return {
            "grid": key,
            "priority": priority,
            "enqueued": len(fresh),
            "skipped": skipped,
            "pending_depth": depth + len(fresh),
        }

    def _enqueue_cells(
        self, grid: "str | None", cells: "list[SweepCell]", priority: int
    ) -> None:
        """Drop one registration file per cell into the priority bucket."""
        if not cells:
            return
        bucket = self.pending_dir / f"p{priority}"
        bucket.mkdir(parents=True, exist_ok=True)
        seq = self._next_seq()
        for cell in cells:
            stem = (
                cell_id(cell)
                if grid is None
                else f"{grid}__{cell_id(cell)}"
            )
            entry = {
                "cell": list(cell.key),
                "grid": grid,
                "priority": priority,
                "seq": seq,
                "enqueued_at": self._clock(),
            }
            _atomic_write_json(bucket / f"{seq:08d}__{stem}.json", entry)
            seq += 1

    def _next_seq(self) -> int:
        """One past the highest live enqueue sequence number.

        Sequence numbers only order claims *within* a priority bucket,
        so restarting after the backlog fully drains is harmless.
        """
        highest = 0
        for _, seq_text, _, _ in self._pending_entries():
            try:
                highest = max(highest, int(seq_text))
            except ValueError:
                continue
        return highest + 1

    def _pending_entries(self) -> "list[tuple[int, str, str, Path]]":
        """Every registration file as ``(priority, seq, stem, path)``,
        in claim order: bucket by bucket, enqueue sequence within."""
        entries: list[tuple[int, str, str, Path]] = []
        for priority in PRIORITIES:
            bucket = self.pending_dir / f"p{priority}"
            if not bucket.is_dir():
                continue
            for path in bucket.glob("*.json"):
                seq_text, sep, stem = path.name[: -len(".json")].partition(
                    "__"
                )
                if sep:
                    entries.append((priority, seq_text, stem, path))
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        return entries

    # -- drain protocol ------------------------------------------------

    def request_drain(self) -> None:
        """Flip the drain marker: finish the backlog, then shut down.

        Idempotent; observed by daemon workers (exit once drained
        instead of idling) and the daemon coordinator (stop after the
        final merge).  One-shot sessions drain by construction and
        ignore the marker.
        """
        _atomic_write_json(
            self.drain_path, {"requested_at": self._clock()}
        )

    def drain_requested(self) -> bool:
        """True once :meth:`request_drain` (or ``repro drain``) fired."""
        return self.drain_path.exists()

    # -- lease protocol ------------------------------------------------

    def claim(self, owner: str) -> "Lease | None":
        """Acquire the highest-priority claimable cell for ``owner``.

        Walks pending entries strictly ``p0`` → ``p1`` → ``p2``, in
        enqueue order within each bucket, skipping completed cells and
        live leases; a stale lease is reclaimed (renamed into the
        graveyard — the atomic arbiter, one winner per steal) and the
        cell claimed fresh with its attempt counter bumped.  Returns
        ``None`` when nothing is claimable right now — which means
        either the queue is drained (:meth:`drained`), idle awaiting
        more grids (daemon sessions), or every remaining cell is under
        a live lease (poll again after a beat).
        """
        seen: set[str] = set()
        for priority, _, stem, pending_path in self._pending_entries():
            if stem in seen:
                continue
            seen.add(stem)
            if (self.done_dir / f"{stem}.json").exists():
                # Crash leftovers: completed, but the registration file
                # survived.  Retire it so drains stay O(backlog).
                try:
                    pending_path.unlink()
                except FileNotFoundError:
                    pass
                continue
            entry = _read_json(pending_path)
            if entry is None:
                continue  # racing complete() just retired this entry
            cell = SweepCell(
                algorithm=str(entry["cell"][0]),
                n=int(entry["cell"][1]),
                trial=int(entry["cell"][2]),
            )
            grid = entry.get("grid")
            grid = None if grid is None else str(grid)
            lease_path = self.lease_dir / f"{stem}.json"
            attempt = 1
            if lease_path.exists():
                lease_entry = _read_json(lease_path)
                # An unreadable lease is a torn write from a claimant
                # that died mid-claim: heartbeat unknown => stale.
                heartbeat = (
                    float(lease_entry["heartbeat"])
                    if lease_entry is not None
                    and "heartbeat" in lease_entry
                    else float("-inf")
                )
                now = self._clock()
                if now - heartbeat < self.ttl:
                    continue  # live lease; not ours to touch
                attempt = (
                    int(lease_entry.get("attempt", 0)) + 1
                    if lease_entry is not None
                    else 1
                )
                grave = self.reclaimed_dir / f"{stem}.a{attempt - 1}.json"
                try:
                    os.rename(lease_path, grave)
                except FileNotFoundError:
                    continue  # lost the reclaim race
                registry = _metrics.active()
                if registry is not None:
                    registry.counter(
                        "repro_queue_reclaims_total",
                        "Stale leases reclaimed by this process.",
                    ).inc(owner=owner)
                # The winner owns the graveyard file exclusively now;
                # annotate it so the audit log carries the full story.
                audit = _read_json(grave) or {}
                audit.update(
                    {
                        "cell": list(cell.key),
                        "grid": grid,
                        "reclaimed_by": owner,
                        "reclaimed_at": now,
                        "stale_heartbeat": (
                            None if heartbeat == float("-inf") else heartbeat
                        ),
                    }
                )
                _atomic_write_json(grave, audit)
            try:
                fd = os.open(
                    lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                continue  # another claimant got here first
            now = self._clock()
            lease_entry = {
                "cell": list(cell.key),
                "grid": grid,
                "owner": owner,
                "attempt": attempt,
                "claimed_at": now,
                "heartbeat": now,
            }
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(lease_entry, handle, sort_keys=True)
                handle.flush()
            registry = _metrics.active()
            if registry is not None:
                registry.counter(
                    "repro_queue_claims_total", "Leases claimed."
                ).inc(owner=owner)
            return Lease(
                cell=cell,
                owner=owner,
                attempt=attempt,
                path=lease_path,
                claimed_at=now,
                grid=grid,
            )
        return None

    def heartbeat(self, lease: Lease) -> None:
        """Refresh ``lease``'s timestamp; raises :class:`LeaseLost` if the
        lease was reclaimed (or superseded) since the last beat."""
        entry = _read_json(lease.path)
        if (
            entry is None
            or entry.get("owner") != lease.owner
            or int(entry.get("attempt", -1)) != lease.attempt
        ):
            raise LeaseLost(
                f"{lease.owner} no longer owns {lease.id} "
                f"(attempt {lease.attempt}): the lease went stale and was "
                "reclaimed"
            )
        entry["heartbeat"] = self._clock()
        _atomic_write_json(lease.path, entry)
        registry = _metrics.active()
        if registry is not None:
            registry.counter(
                "repro_queue_heartbeats_total", "Lease heartbeats written."
            ).inc(owner=lease.owner)

    def complete(self, lease: Lease) -> None:
        """Mark the leased cell done and release the lease.

        Idempotent by construction: the done marker is an atomic
        replace, so a duplicate completion (a reclaimed-but-alive worker
        finishing anyway) simply rewrites it.  The lease file is removed
        only if this worker still owns it; the pending registration is
        retired last, so a crash at any point leaves the cell either
        claimable or provably done — never lost.
        """
        marker = {
            "cell": list(lease.cell.key),
            "grid": lease.grid,
            "owner": lease.owner,
            "attempt": lease.attempt,
            "claimed_at": lease.claimed_at,
            "completed_at": self._clock(),
        }
        _atomic_write_json(self.done_dir / f"{lease.stem}.json", marker)
        self.release(lease)
        self._retire_pending(lease.stem)
        registry = _metrics.active()
        if registry is not None:
            registry.counter(
                "repro_queue_completions_total", "Cells completed."
            ).inc(owner=lease.owner)
            registry.histogram(
                "repro_queue_cell_seconds",
                "Claim-to-completion wall clock per cell.",
            ).observe(marker["completed_at"] - lease.claimed_at)

    def _retire_pending(self, stem: str) -> None:
        """Remove every registration file for ``stem`` (all buckets)."""
        for priority in PRIORITIES:
            bucket = self.pending_dir / f"p{priority}"
            if not bucket.is_dir():
                continue
            for path in bucket.glob(f"*__{stem}.json"):
                # The glob is a prefix wildcard; confirm the exact stem
                # (stems themselves contain ``__``).
                if path.name[: -len(".json")].partition("__")[2] != stem:
                    continue
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass

    def release(self, lease: Lease) -> None:
        """Drop ``lease`` without completing (graceful mid-cell shutdown);
        the cell becomes immediately claimable again."""
        entry = _read_json(lease.path)
        if (
            entry is not None
            and entry.get("owner") == lease.owner
            and int(entry.get("attempt", -1)) == lease.attempt
        ):
            try:
                lease.path.unlink()
            except FileNotFoundError:
                pass

    # -- observation ---------------------------------------------------

    def done_cells(self) -> set[str]:
        """Stems carrying a completion marker."""
        return {path.stem for path in self.done_dir.glob("*.json")}

    def lease_owners(self) -> set[str]:
        """Owners currently holding a *live* lease (stale ones excluded).

        The coordinator's chaos-kill knob uses this to pick a victim
        that is provably mid-cell, so an injected kill always exercises
        the reclamation path rather than racing worker startup.
        """
        now = self._clock()
        owners: set[str] = set()
        for path in self.lease_dir.glob("*.json"):
            entry = _read_json(path)
            if entry is None or "owner" not in entry:
                continue
            if now - float(entry.get("heartbeat", float("-inf"))) < self.ttl:
                owners.add(str(entry["owner"]))
        return owners

    def pending_depth(self) -> int:
        """Unfinished registered cells (leased or not): the admission
        metric ``max_pending`` bounds."""
        done = self.done_cells()
        stems = {stem for _, _, stem, _ in self._pending_entries()}
        return len(stems - done)

    def drained(self) -> bool:
        """True when every registered cell has a completion marker.

        An empty daemon queue is *drained but not done*: workers keep
        polling for new grids until :meth:`drain_requested` flips too.
        """
        done = self.done_cells()
        return all(
            stem in done for _, _, stem, _ in self._pending_entries()
        )

    def stats(self) -> QueueStats:
        """Queue-health snapshot: depth (split per priority class), live
        leases, completions, cumulative reclamations (the service
        telemetry payload)."""
        done_markers = self.done_cells()
        now = self._clock()
        seen: set[str] = set()
        leased = 0
        pending = 0
        by_priority = [0] * len(PRIORITIES)
        for priority, _, stem, _ in self._pending_entries():
            if stem in seen:
                continue
            seen.add(stem)
            if stem in done_markers:
                continue
            entry = _read_json(self.lease_dir / f"{stem}.json")
            if entry is not None and now - float(
                entry.get("heartbeat", float("-inf"))
            ) < self.ttl:
                leased += 1
            else:
                pending += 1
                by_priority[priority] += 1
        done = len(done_markers)
        return QueueStats(
            total=done + leased + pending,
            pending=pending,
            leased=leased,
            done=done,
            reclamations=sum(1 for _ in self.reclaimed_dir.glob("*.json")),
            pending_by_priority=tuple(by_priority),
        )

    def reclamation_log(self) -> list[dict]:
        """Every reclamation's audit entry (sorted by graveyard name)."""
        entries = []
        for path in sorted(self.reclaimed_dir.glob("*.json")):
            entry = _read_json(path)
            if entry is not None:
                entries.append(entry)
        return entries

    def done_log(self) -> list[dict]:
        """Every completion marker (owner, attempt, timing), sorted."""
        entries = []
        for path in sorted(self.done_dir.glob("*.json")):
            entry = _read_json(path)
            if entry is not None:
                entries.append(entry)
        return entries


def _read_json(path: Path) -> "dict | None":
    """Parse one JSON file; ``None`` on missing or torn content."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def _atomic_write_json(path: Path, payload: Mapping) -> None:
    """Write ``payload`` via the store's shared atomic-replace discipline.

    The temp name embeds the pid so two processes atomically writing the
    same target never collide on the intermediate file.
    """
    from repro.engine.store import atomic_write_text

    atomic_write_text(path, json.dumps(payload, sort_keys=True))
