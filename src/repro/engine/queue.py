"""File-backed lease queue: the work-distribution substrate of the sweep
service.

A distributed sweep needs exactly one piece of shared mutable state: *who
is working on which cell right now*.  Everything else — what a cell is,
how it executes, where its record lands — is already deterministic and
append-only.  This module keeps that one piece of state on the
filesystem, using only atomic primitives every POSIX filesystem provides
(``O_CREAT | O_EXCL`` exclusive creation, ``os.rename`` within a
directory), so N worker *processes* (or N hosts over a shared
filesystem) can coordinate without a broker.

Layout::

    <queue root>/
      manifest.json            # cells, lease ttl, opaque service payload
      leases/<cell>.json       # live lease: owner, heartbeat, attempt
      done/<cell>.json         # completion marker: owner, attempt, timing
      reclaimed/<cell>.a<k>.json  # audit log of every reclaimed lease

Lease lifecycle (see ``docs/sweep_service.md`` for the full rules):

* **claim** — a worker acquires a pending cell by *exclusively creating*
  its lease file; exactly one creator wins.  A cell is pending when it
  has no ``done`` marker and no live lease.
* **heartbeat** — the owner periodically rewrites the lease with a fresh
  timestamp (atomic temp-file + ``os.replace``).  A heartbeat against a
  lease that was stolen or superseded raises :class:`LeaseLost`.
* **reclaim** — a lease whose heartbeat is older than the queue's
  ``ttl`` is presumed dead.  A claimant steals it by *renaming* the stale
  lease into the ``reclaimed/`` graveyard — rename is the atomic arbiter,
  so exactly one stealer wins — then claims the cell fresh with the
  attempt counter bumped.
* **complete** — the owner writes the ``done`` marker (atomic replace,
  idempotent) and removes its lease.

The queue never executes anything and never talks to the result store;
it only arbitrates ownership.  Duplicate execution is *possible by
design* (a worker that stalls past the ttl is presumed dead, gets
reclaimed, then wakes up and finishes anyway) and harmless: cells are
deterministic, so duplicates are byte-identical and the shard merger
(:func:`repro.engine.service.merge_shards`) deduplicates them — and
*asserts* the byte-identity, which turns the failure mode into a
nondeterminism detector.

The clock is injectable (``clock=time.time`` by default) so tests can
drive reclamation deterministically with a fake clock; real deployments
share wall-clock time across workers, and the ttl should be chosen
orders of magnitude above plausible clock skew.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.engine.executor import SweepCell
from repro.observability import metrics as _metrics

__all__ = [
    "Lease",
    "LeaseLost",
    "LeaseQueue",
    "QueueStats",
    "cell_id",
]

#: Bump when the on-disk queue layout changes; refuses foreign manifests.
QUEUE_FORMAT = 1


def cell_id(cell: SweepCell) -> str:
    """The filesystem-safe identity of one sweep cell.

    Matches the trace-file naming convention
    (:func:`repro.engine.executor.cell_trace_path`) so a cell's lease,
    done marker, and trace all carry the same stem.
    """
    return f"{cell.algorithm}__n{cell.n}__t{cell.trial}"


class LeaseLost(RuntimeError):
    """Raised when a worker heartbeats a lease it no longer owns.

    This happens when the worker stalled past the queue ttl and another
    worker reclaimed the cell.  The correct response is to finish (or
    abandon) the current cell and move on: the record is deterministic,
    so a duplicate completion merges cleanly.
    """


@dataclass(frozen=True)
class Lease:
    """A worker's claim on one cell: the handle for heartbeat/complete."""

    cell: SweepCell
    owner: str
    attempt: int
    path: Path
    claimed_at: float

    @property
    def id(self) -> str:
        """The leased cell's :func:`cell_id`."""
        return cell_id(self.cell)


@dataclass(frozen=True)
class QueueStats:
    """One snapshot of queue health (the service telemetry payload).

    ``pending`` counts cells that are claimable right now — no done
    marker and no *live* lease; a stale-leased cell is pending, because
    the next claimant will reclaim it.
    """

    total: int
    pending: int
    leased: int
    done: int
    reclamations: int


class LeaseQueue:
    """Lease-based work queue over a directory of sweep cells.

    Create one per distributed sweep session with :meth:`create` (the
    coordinator), attach from worker processes with :meth:`open`.

    Parameters
    ----------
    root:
        The queue directory.
    clock:
        Seconds-returning callable used for heartbeats and staleness;
        injectable so tests can simulate time deterministically.
    """

    def __init__(
        self, root: "str | os.PathLike", clock: Callable[[], float] = time.time
    ):
        self.root = Path(root)
        self.manifest_path = self.root / "manifest.json"
        self.lease_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.reclaimed_dir = self.root / "reclaimed"
        self._clock = clock
        self._manifest: dict | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        root: "str | os.PathLike",
        cells: Iterable[SweepCell],
        *,
        ttl: float,
        payload: "Mapping | None" = None,
        clock: Callable[[], float] = time.time,
    ) -> "LeaseQueue":
        """Initialise a fresh queue session holding ``cells``.

        Any prior session state under ``root`` (leases, done markers,
        reclamation log, manifest) is wiped — a new session decides
        pending-ness from the *result store*, not from old markers.
        Sibling directories (notably ``shards/``) are left untouched so
        a crashed session's completed work survives into the next one.

        ``payload`` is an opaque service descriptor (the sweep config,
        stride, trace flag…) that workers read back via
        :meth:`manifest`.
        """
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        queue = cls(root, clock=clock)
        cell_list = [list(cell.key) for cell in cells]
        for directory in (queue.lease_dir, queue.done_dir, queue.reclaimed_dir):
            directory.mkdir(parents=True, exist_ok=True)
            for stale in directory.glob("*.json"):
                stale.unlink()
        manifest = {
            "format": QUEUE_FORMAT,
            "ttl": float(ttl),
            "cells": cell_list,
            "payload": dict(payload) if payload is not None else {},
        }
        _atomic_write_json(queue.manifest_path, manifest)
        queue._manifest = manifest
        return queue

    @classmethod
    def open(
        cls, root: "str | os.PathLike", clock: Callable[[], float] = time.time
    ) -> "LeaseQueue":
        """Attach to an existing queue session (the worker entry)."""
        queue = cls(root, clock=clock)
        queue.manifest()  # raises early on a missing/foreign queue
        return queue

    def manifest(self) -> dict:
        """The session descriptor written by :meth:`create` (cached)."""
        if self._manifest is None:
            try:
                manifest = json.loads(
                    self.manifest_path.read_text(encoding="utf-8")
                )
            except FileNotFoundError:
                raise FileNotFoundError(
                    f"{self.root} holds no queue manifest — create the "
                    "session first (repro serve-sweep, or LeaseQueue.create)"
                ) from None
            if manifest.get("format") != QUEUE_FORMAT:
                raise ValueError(
                    f"queue {self.root} has format "
                    f"{manifest.get('format')!r}, this engine speaks "
                    f"{QUEUE_FORMAT}"
                )
            self._manifest = manifest
        return self._manifest

    @property
    def ttl(self) -> float:
        """Seconds after the last heartbeat at which a lease is stale."""
        return float(self.manifest()["ttl"])

    def cells(self) -> list[SweepCell]:
        """The session's cells, in enqueue (= claim-priority) order."""
        return [
            SweepCell(algorithm=str(a), n=int(n), trial=int(t))
            for a, n, t in self.manifest()["cells"]
        ]

    # -- lease protocol ------------------------------------------------

    def claim(self, owner: str) -> "Lease | None":
        """Acquire the first claimable cell for ``owner``.

        Walks cells in enqueue order, skipping completed cells and live
        leases; a stale lease is reclaimed (renamed into the graveyard —
        the atomic arbiter, one winner per steal) and the cell claimed
        fresh with its attempt counter bumped.  Returns ``None`` when
        nothing is claimable right now — which means either the queue is
        drained (:meth:`drained`) or every remaining cell is under a
        live lease (poll again after a beat).
        """
        for cell in self.cells():
            cid = cell_id(cell)
            if (self.done_dir / f"{cid}.json").exists():
                continue
            lease_path = self.lease_dir / f"{cid}.json"
            attempt = 1
            if lease_path.exists():
                entry = _read_json(lease_path)
                # An unreadable lease is a torn write from a claimant
                # that died mid-claim: heartbeat unknown => stale.
                heartbeat = (
                    float(entry["heartbeat"])
                    if entry is not None and "heartbeat" in entry
                    else float("-inf")
                )
                now = self._clock()
                if now - heartbeat < self.ttl:
                    continue  # live lease; not ours to touch
                attempt = (
                    int(entry.get("attempt", 0)) + 1 if entry is not None else 1
                )
                grave = self.reclaimed_dir / f"{cid}.a{attempt - 1}.json"
                try:
                    os.rename(lease_path, grave)
                except FileNotFoundError:
                    continue  # lost the reclaim race
                registry = _metrics.active()
                if registry is not None:
                    registry.counter(
                        "repro_queue_reclaims_total",
                        "Stale leases reclaimed by this process.",
                    ).inc(owner=owner)
                # The winner owns the graveyard file exclusively now;
                # annotate it so the audit log carries the full story.
                audit = _read_json(grave) or {}
                audit.update(
                    {
                        "cell": list(cell.key),
                        "reclaimed_by": owner,
                        "reclaimed_at": now,
                        "stale_heartbeat": (
                            None if heartbeat == float("-inf") else heartbeat
                        ),
                    }
                )
                _atomic_write_json(grave, audit)
            try:
                fd = os.open(
                    lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                continue  # another claimant got here first
            now = self._clock()
            entry = {
                "cell": list(cell.key),
                "owner": owner,
                "attempt": attempt,
                "claimed_at": now,
                "heartbeat": now,
            }
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
                handle.flush()
            registry = _metrics.active()
            if registry is not None:
                registry.counter(
                    "repro_queue_claims_total", "Leases claimed."
                ).inc(owner=owner)
            return Lease(
                cell=cell,
                owner=owner,
                attempt=attempt,
                path=lease_path,
                claimed_at=now,
            )
        return None

    def heartbeat(self, lease: Lease) -> None:
        """Refresh ``lease``'s timestamp; raises :class:`LeaseLost` if the
        lease was reclaimed (or superseded) since the last beat."""
        entry = _read_json(lease.path)
        if (
            entry is None
            or entry.get("owner") != lease.owner
            or int(entry.get("attempt", -1)) != lease.attempt
        ):
            raise LeaseLost(
                f"{lease.owner} no longer owns {lease.id} "
                f"(attempt {lease.attempt}): the lease went stale and was "
                "reclaimed"
            )
        entry["heartbeat"] = self._clock()
        _atomic_write_json(lease.path, entry)
        registry = _metrics.active()
        if registry is not None:
            registry.counter(
                "repro_queue_heartbeats_total", "Lease heartbeats written."
            ).inc(owner=lease.owner)

    def complete(self, lease: Lease) -> None:
        """Mark the leased cell done and release the lease.

        Idempotent by construction: the done marker is an atomic
        replace, so a duplicate completion (a reclaimed-but-alive worker
        finishing anyway) simply rewrites it.  The lease file is removed
        only if this worker still owns it.
        """
        marker = {
            "cell": list(lease.cell.key),
            "owner": lease.owner,
            "attempt": lease.attempt,
            "claimed_at": lease.claimed_at,
            "completed_at": self._clock(),
        }
        _atomic_write_json(self.done_dir / f"{lease.id}.json", marker)
        self.release(lease)
        registry = _metrics.active()
        if registry is not None:
            registry.counter(
                "repro_queue_completions_total", "Cells completed."
            ).inc(owner=lease.owner)
            registry.histogram(
                "repro_queue_cell_seconds",
                "Claim-to-completion wall clock per cell.",
            ).observe(marker["completed_at"] - lease.claimed_at)

    def release(self, lease: Lease) -> None:
        """Drop ``lease`` without completing (graceful mid-cell shutdown);
        the cell becomes immediately claimable again."""
        entry = _read_json(lease.path)
        if (
            entry is not None
            and entry.get("owner") == lease.owner
            and int(entry.get("attempt", -1)) == lease.attempt
        ):
            try:
                lease.path.unlink()
            except FileNotFoundError:
                pass

    # -- observation ---------------------------------------------------

    def done_cells(self) -> set[str]:
        """Cell ids carrying a completion marker."""
        return {path.stem for path in self.done_dir.glob("*.json")}

    def lease_owners(self) -> set[str]:
        """Owners currently holding a *live* lease (stale ones excluded).

        The coordinator's chaos-kill knob uses this to pick a victim
        that is provably mid-cell, so an injected kill always exercises
        the reclamation path rather than racing worker startup.
        """
        now = self._clock()
        owners: set[str] = set()
        for path in self.lease_dir.glob("*.json"):
            entry = _read_json(path)
            if entry is None or "owner" not in entry:
                continue
            if now - float(entry.get("heartbeat", float("-inf"))) < self.ttl:
                owners.add(str(entry["owner"]))
        return owners

    def drained(self) -> bool:
        """True when every enqueued cell has a completion marker."""
        done = self.done_cells()
        return all(cell_id(cell) in done for cell in self.cells())

    def stats(self) -> QueueStats:
        """Queue-health snapshot: depth, live leases, completions,
        cumulative reclamations (the service telemetry payload)."""
        cells = self.cells()
        done = self.done_cells()
        now = self._clock()
        leased = 0
        finished = 0
        for cell in cells:
            cid = cell_id(cell)
            if cid in done:
                finished += 1
                continue
            entry = _read_json(self.lease_dir / f"{cid}.json")
            if entry is not None and now - float(
                entry.get("heartbeat", float("-inf"))
            ) < self.ttl:
                leased += 1
        return QueueStats(
            total=len(cells),
            pending=len(cells) - finished - leased,
            leased=leased,
            done=finished,
            reclamations=sum(1 for _ in self.reclaimed_dir.glob("*.json")),
        )

    def reclamation_log(self) -> list[dict]:
        """Every reclamation's audit entry (sorted by graveyard name)."""
        entries = []
        for path in sorted(self.reclaimed_dir.glob("*.json")):
            entry = _read_json(path)
            if entry is not None:
                entries.append(entry)
        return entries

    def done_log(self) -> list[dict]:
        """Every completion marker (owner, attempt, timing), sorted."""
        entries = []
        for path in sorted(self.done_dir.glob("*.json")):
            entry = _read_json(path)
            if entry is not None:
                entries.append(entry)
        return entries


def _read_json(path: Path) -> "dict | None":
    """Parse one JSON file; ``None`` on missing or torn content."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def _atomic_write_json(path: Path, payload: Mapping) -> None:
    """Write ``payload`` via the store's shared atomic-replace discipline.

    The temp name embeds the pid so two processes atomically writing the
    same target never collide on the intermediate file.
    """
    from repro.engine.store import atomic_write_text

    atomic_write_text(path, json.dumps(payload, sort_keys=True))
