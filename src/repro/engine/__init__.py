"""High-throughput simulation engine.

The rest of the library describes *what* a gossip protocol does per clock
tick; this package decides *how fast* the ticks get executed.  Three layers
stack to turn the paper's per-tick Python loop into something that can run
large scaling sweeps:

* :mod:`repro.engine.batching` — batched tick execution.  Poisson tick
  owners are pre-sampled in vectorized NumPy blocks and the oracular
  error check runs on a configurable stride, amortizing RNG and
  error-check overhead across thousands of ticks.  ``check_stride=1`` is
  the degenerate case and reproduces the legacy
  :meth:`~repro.gossip.base.AsynchronousGossip.run` loop bit for bit.
* :mod:`repro.engine.executor` — a parallel sweep executor.  A sweep is
  expanded into independent ``(algorithm, n, trial)`` grid cells whose RNG
  streams are spawned deterministically from the experiment's root seed,
  so fanning cells across ``concurrent.futures`` workers yields results
  identical to a serial run.
* :mod:`repro.engine.store` — a persistent result store.  Completed cells
  append to a JSON-lines file under a content-keyed directory; re-running
  an interrupted sweep skips every finished cell instead of restarting.

A fourth layer, :mod:`repro.engine.tensor`, tensorizes across *trials*:
all trials of one ``(protocol, topology, n)`` sweep slice advance inside
a single ``(trials, n[, k])`` state tensor, one batched NumPy call per
tick window instead of ``trials`` independent Python loops.  Cells that
cannot join a tensor slice (faulted, round-based, traced, per-column
multi-field) fall back to the per-cell path with a
:class:`~repro.engine.tensor.TrialBatchFallbackWarning`.  The array
namespace the kernels use comes from :mod:`repro.engine.backend`.

A fifth layer distributes the sweep across *processes that may die*:
:mod:`repro.engine.queue` is a file-backed lease queue (claim via
``O_CREAT | O_EXCL``, heartbeats, stale-lease reclamation) and
:mod:`repro.engine.service` runs worker fleets against it, merging
per-worker store shards back into one canonical store with byte-level
divergence checking.  Because every cell's randomness derives from the
root seed, a distributed sweep is bit-identical to a serial one.

``repro.experiments.runner`` and the CLI sit on top of this package; the
benchmarks route through them, so every experiment inherits the engine.
"""

from repro.engine.backend import ArrayBackend, available_backends, get_backend
from repro.engine.batching import (
    DEFAULT_BLOCK_SIZE,
    MultiFieldFallbackWarning,
    ScalarFallbackWarning,
    UncenteredFieldWarning,
    batching_capability,
    multifield_capability,
    run_batched,
    split_streams,
)
from repro.engine.executor import (
    CellRecord,
    SweepCell,
    build_cell_algorithm,
    build_faulted_algorithm,
    build_graph,
    build_instance,
    build_values,
    execute_cell,
    execute_trial_slice,
    expand_grid,
    run_sweep_records,
)
from repro.engine.queue import Lease, LeaseLost, LeaseQueue, QueueStats, cell_id
from repro.engine.service import (
    diff_stores,
    merge_shards,
    run_distributed_sweep,
    run_worker,
    worker_store,
)
from repro.engine.store import (
    ResultStore,
    ShardDivergenceError,
    canonical_record_bytes,
    content_key,
)
from repro.engine.tensor import (
    TrialBatchFallbackWarning,
    run_trials_batched,
    trial_batch_capability,
)

__all__ = [
    "ArrayBackend",
    "CellRecord",
    "DEFAULT_BLOCK_SIZE",
    "Lease",
    "LeaseLost",
    "LeaseQueue",
    "MultiFieldFallbackWarning",
    "QueueStats",
    "ResultStore",
    "ScalarFallbackWarning",
    "ShardDivergenceError",
    "SweepCell",
    "TrialBatchFallbackWarning",
    "UncenteredFieldWarning",
    "available_backends",
    "batching_capability",
    "build_cell_algorithm",
    "build_faulted_algorithm",
    "build_graph",
    "build_instance",
    "build_values",
    "canonical_record_bytes",
    "cell_id",
    "content_key",
    "diff_stores",
    "execute_cell",
    "execute_trial_slice",
    "expand_grid",
    "get_backend",
    "merge_shards",
    "multifield_capability",
    "run_batched",
    "run_distributed_sweep",
    "run_sweep_records",
    "run_trials_batched",
    "run_worker",
    "split_streams",
    "trial_batch_capability",
    "worker_store",
]
