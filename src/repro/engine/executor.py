"""Parallel sweep executor: deterministic grid cells over worker pools.

A scaling sweep is a grid of independent cells, one per
``(algorithm, n, trial)``.  Each cell derives every RNG stream it needs —
placement, field, run — from the experiment's root seed via the same
:func:`repro.experiments.seeds.spawn_rng` tag paths the serial runner has
always used.  Cells therefore share *nothing at run time*, which makes the
parallel schedule irrelevant to the numbers: a sweep fanned across
``concurrent.futures.ProcessPoolExecutor`` workers produces records
identical to a serial sweep on the same seeds (tested).

:func:`run_sweep_records` is the engine entry point.  It optionally pairs
with a :class:`repro.engine.store.ResultStore`: finished cells are
appended as they complete, and cells already present in the store are
skipped, so an interrupted sweep resumes instead of restarting.
Aggregation into :class:`~repro.experiments.runner.ScalingPoint` rows
stays in :mod:`repro.experiments.runner`, which sits above this module.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping

from repro.engine.batching import (
    batching_capability,
    multifield_capability,
    run_batched,
)
from repro.gossip.base import AsynchronousGossip
from repro.observability import events as _events
from repro.observability import metrics as _metrics
from repro.observability import profile as _profile
from repro.observability.telemetry import collect_telemetry, metric_deltas
from repro.workloads.fields import FIELD_GENERATORS, build_field_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids a layer cycle
    from repro.engine.store import ResultStore
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "CellKey",
    "CellRecord",
    "SweepCell",
    "build_cell_algorithm",
    "build_faulted_algorithm",
    "build_graph",
    "build_instance",
    "build_values",
    "cell_trace_path",
    "cell_traceable",
    "execute_cell",
    "execute_trial_slice",
    "expand_grid",
    "run_sweep_records",
]

#: How a cell is identified everywhere: (algorithm, n, trial).
CellKey = tuple[str, int, int]


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: run ``algorithm`` at size ``n``, trial ``trial``."""

    algorithm: str
    n: int
    trial: int

    @property
    def key(self) -> CellKey:
        return (self.algorithm, self.n, self.trial)


@dataclass(frozen=True)
class CellRecord:
    """The JSON-serialisable outcome of one executed cell.

    Carries everything aggregation and reporting need (transmission
    counts, convergence) without the arrays and traces of a full
    :class:`~repro.gossip.base.GossipRunResult`, so records are cheap to
    ship between worker processes and to persist.

    ``faults`` is the per-cell fault observability payload
    (:meth:`repro.dynamics.overlay.DynamicGossip.fault_metrics`: aborted
    routes, wasted ticks, lost transmissions, churn counts, live-node
    error); it is ``None`` for fault-free cells, and absent from their
    serialized form, so stores written before the dynamics subsystem
    existed load unchanged.

    ``field_errors`` is the per-column final normalized error of a
    multi-field cell (``field_errors[0] == error``, the primary field);
    it is ``None`` for scalar cells and absent from their serialized
    form, so stores written before the multi-field engine existed load
    unchanged — the same back-compat rule ``faults`` follows.

    ``wall_clock`` (seconds spent in the run itself) and ``telemetry``
    (:func:`repro.observability.telemetry.collect_telemetry`'s flat
    counters) follow the same omitted-when-absent rule, and are
    additionally excluded from equality: two cells with identical
    numbers *are* the same cell no matter how long the machine took, so
    the serial-vs-parallel determinism tests and store resume semantics
    stay byte-comparable.
    """

    algorithm: str
    n: int
    trial: int
    epsilon: float
    transmissions: Mapping[str, int]
    ticks: int
    converged: bool
    error: float
    faults: Mapping[str, float] | None = None
    field_errors: tuple[float, ...] | None = None
    wall_clock: float | None = field(default=None, compare=False)
    telemetry: Mapping[str, float] | None = field(default=None, compare=False)

    @property
    def key(self) -> CellKey:
        return (self.algorithm, self.n, self.trial)

    @property
    def total_transmissions(self) -> int:
        return self.transmissions["total"]

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["transmissions"] = dict(self.transmissions)
        if self.faults is None:
            del payload["faults"]
        else:
            payload["faults"] = dict(self.faults)
        if self.field_errors is None:
            del payload["field_errors"]
        else:
            payload["field_errors"] = list(self.field_errors)
        if self.wall_clock is None:
            del payload["wall_clock"]
        if self.telemetry is None:
            del payload["telemetry"]
        else:
            payload["telemetry"] = dict(self.telemetry)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CellRecord":
        faults = payload.get("faults")
        field_errors = payload.get("field_errors")
        wall_clock = payload.get("wall_clock")
        telemetry = payload.get("telemetry")
        return cls(
            algorithm=str(payload["algorithm"]),
            n=int(payload["n"]),
            trial=int(payload["trial"]),
            epsilon=float(payload["epsilon"]),
            transmissions={
                str(k): int(v) for k, v in payload["transmissions"].items()
            },
            ticks=int(payload["ticks"]),
            converged=bool(payload["converged"]),
            error=float(payload["error"]),
            faults=(
                None
                if faults is None
                else {str(k): float(v) for k, v in faults.items()}
            ),
            field_errors=(
                None
                if field_errors is None
                else tuple(float(v) for v in field_errors)
            ),
            wall_clock=None if wall_clock is None else float(wall_clock),
            telemetry=(
                None
                if telemetry is None
                else {str(k): float(v) for k, v in telemetry.items()}
            ),
        )


def build_graph(config: ExperimentConfig, n: int, trial: int):
    """The ``(n, trial)`` cell's placement graph, seeded by its tags.

    The graph comes from the config's topology family
    (:data:`repro.graphs.generators.TOPOLOGIES`).  For the default
    ``"rgg"`` the seed tags match the historical serial runner exactly,
    so flat-RGG instances are stable across engine versions and identical
    for every algorithm cell of the same ``(n, trial)``; other families
    include the topology name in their graph-seed tag so no two families
    ever share a placement stream.  Those same tags are the trial-batch
    grouping predicate: two cells may share one graph object only when
    their tag tuples coincide.
    """
    # Imported here, not at module top: repro.experiments sits above the
    # engine (its runner imports this package), so the engine only reaches
    # up at call time.
    from repro.experiments.seeds import spawn_rng
    from repro.graphs.generators import build_topology, topology_seed_tags

    # topology_seed_tags keeps the pre-zoo tag shape for the default
    # family so historical instances reproduce bit for bit;
    # build_topology's "rgg" builder consumes the stream exactly as
    # sample_connected did.
    graph_rng = spawn_rng(
        config.root_seed, "graph", *topology_seed_tags(config.topology, n, trial)
    )
    return build_topology(
        config.topology, n, graph_rng, radius_constant=config.radius_constant
    )


def build_values(config: ExperimentConfig, graph, n: int, trial: int):
    """The ``(n, trial)`` cell's initial field (scalar or ``(n, k)`` matrix)."""
    from repro.experiments.seeds import spawn_rng

    field_rng = spawn_rng(config.root_seed, "field", config.field, n, trial)
    if config.fields == 1:
        # The historical scalar path, stream for stream: fields=1 cells
        # are bit-identical to every pre-multi-field engine version.
        return FIELD_GENERATORS[config.field](graph.positions, field_rng)
    # Multi-field cells share the field stream's *prefix*: every
    # workload builder draws the base scalar field first into column
    # 0, so column 0 equals the fields=1 cell's values bit for bit.
    return build_field_matrix(
        config.workload,
        config.field,
        graph.positions,
        field_rng,
        config.fields,
    )


def build_instance(config: ExperimentConfig, n: int, trial: int):
    """Placement, graph and field shared by all algorithms of one trial."""
    graph = build_graph(config, n, trial)
    return graph, build_values(config, graph, n, trial)


def expand_grid(config: ExperimentConfig) -> list[SweepCell]:
    """All cells of a sweep, in the serial runner's historical order."""
    return [
        SweepCell(algorithm=name, n=n, trial=trial)
        for n in config.sizes
        for trial in range(config.trials)
        for name in config.algorithms
    ]


def build_faulted_algorithm(
    algorithm: str, graph, spec, root_seed: int, n: int, trial: int
):
    """Build ``algorithm`` over a dynamic substrate realising ``spec``.

    The one place the fault wiring lives: the protocol is constructed
    *over* the :class:`~repro.dynamics.overlay.DynamicSubstrate` (so its
    routers read the masked, time-varying adjacency) and wrapped in a
    :class:`~repro.dynamics.overlay.DynamicGossip`.  The schedule seed
    derives from ``(root_seed, "faults", n, trial)`` — *not* from the
    algorithm name — so every protocol of one trial faces the identical
    fault scenario, which is what makes robustness comparisons (and the
    serial-vs-parallel determinism guarantee) meaningful.  The CLI's
    ``run`` command routes through here too (as trial 0) and therefore
    faces the same fault *scenario* as sweep trial 0 — the scenario
    only: the CLI seeds its graph, field, and run streams with its own
    ``cli-*`` tags, so the rest of the randomness differs from the
    sweep cell's.
    """
    from repro.dynamics import DynamicGossip, DynamicSubstrate
    from repro.experiments.config import make_algorithm
    from repro.experiments.seeds import derive_seed

    substrate = DynamicSubstrate(
        graph, spec, seed=derive_seed(root_seed, "faults", n, trial)
    )
    return DynamicGossip(make_algorithm(algorithm, substrate), substrate)


def build_cell_algorithm(
    config: ExperimentConfig, graph, algorithm: str, n: int, trial: int
):
    """The cell's algorithm instance, fault-wrapped when the config asks.

    Fault-free configs build the registered algorithm on ``graph``
    directly — the historical path, bit for bit; enabled fault specs go
    through :func:`build_faulted_algorithm`.
    """
    from repro.experiments.config import make_algorithm

    spec = config.fault_spec()
    if not spec.enabled:
        return make_algorithm(algorithm, graph)
    return build_faulted_algorithm(
        algorithm, graph, spec, config.root_seed, n, trial
    )


def cell_traceable(algorithm, values) -> bool:
    """Whether a run of ``algorithm`` on ``values`` emits a coherent trace.

    Tick-driven protocols emit the full event vocabulary.  The two
    configurations whose runs execute *nested* runs — round-based
    protocols and the per-column multi-field fallback — suspend the
    recorder instead (see :func:`repro.engine.batching.run_batched`), so
    a capture around them yields an empty trace; this predicate is how
    callers distinguish "traced" from "trace suppressed".
    """
    if not isinstance(algorithm, AsynchronousGossip):
        return False
    values_ndim = getattr(values, "ndim", 1)
    return values_ndim == 1 or multifield_capability(algorithm) == "native"


def cell_trace_path(trace_dir: "str | Path", cell: SweepCell) -> Path:
    """Where a cell's JSONL trace lands under ``trace_dir``."""
    return Path(trace_dir) / (
        f"{cell.algorithm}__n{cell.n}__t{cell.trial}.jsonl"
    )


def execute_cell(
    config: ExperimentConfig,
    cell: SweepCell,
    check_stride: int = 1,
    trace_dir: "str | Path | None" = None,
    stacklevel: int = 2,
) -> CellRecord:
    """Run one grid cell to ε and summarise it as a :class:`CellRecord`.

    With ``trace_dir`` set, the run executes under an active
    :class:`~repro.observability.events.TraceRecorder` and its event
    stream is written to :func:`cell_trace_path` — annotated with the
    cell key so ``repro replay`` can match the trace to this record.
    Untraceable cells (round-based protocols, per-column fallback runs)
    run normally and write no file.  The capture happens here, inside
    the (possibly worker-pool) process that runs the cell, so tracing
    works identically under serial and parallel sweeps.

    ``stacklevel`` threads through to :func:`run_batched`'s fallback
    warnings so they attribute to this function's caller (``2``, the
    default) or further up — never to engine internals.
    """
    from repro.experiments.seeds import spawn_rng

    # Snapshot counter totals up front so every increment this cell's
    # build and run produce (engine windows, fault events, route-cache
    # collectors registered at build time) lands in its telemetry delta.
    registry = _metrics.active()
    counters_before = registry.counter_totals() if registry is not None else None
    with _profile.span("build"):
        graph, values = build_instance(config, cell.n, cell.trial)
        algorithm = build_cell_algorithm(
            config, graph, cell.algorithm, cell.n, cell.trial
        )
    run_rng = spawn_rng(config.root_seed, "run", cell.algorithm, cell.n, cell.trial)
    tracing = trace_dir is not None and cell_traceable(algorithm, values)
    trace_events = None
    if tracing:
        with _events.capture() as recorder:
            started = time.perf_counter()
            with _profile.span("run"):
                result = run_batched(
                    algorithm,
                    values,
                    config.epsilon,
                    run_rng,
                    check_stride=check_stride,
                    stacklevel=stacklevel + 1,
                )
            wall_clock = time.perf_counter() - started
        recorder.annotate(
            cell={"algorithm": cell.algorithm, "n": cell.n, "trial": cell.trial}
        )
        recorder.write(cell_trace_path(trace_dir, cell))
        trace_events = len(recorder)
    else:
        started = time.perf_counter()
        with _profile.span("run"):
            result = run_batched(
                algorithm,
                values,
                config.epsilon,
                run_rng,
                check_stride=check_stride,
                stacklevel=stacklevel + 1,
            )
        wall_clock = time.perf_counter() - started
    cell_metrics = None
    if registry is not None:
        registry.counter(
            "repro_cells_executed_total", "Cells executed in this process."
        ).inc(algorithm=cell.algorithm)
        registry.histogram(
            "repro_cell_seconds", "Per-cell run wall clock."
        ).observe(wall_clock, algorithm=cell.algorithm)
        cell_metrics = metric_deltas(registry.counter_totals(), counters_before)
    multifield_fallback = (
        getattr(values, "ndim", 1) == 2
        and multifield_capability(algorithm) != "native"
    )
    telemetry = collect_telemetry(
        algorithm,
        wall_clock=wall_clock,
        ticks=result.ticks,
        scalar_fallback=(
            check_stride > 1 and batching_capability(algorithm) == "scalar"
        ),
        multifield_fallback=multifield_fallback,
        # The per-column fallback reuses one instance across k nested
        # runs, so its cumulative counters (route-cache hits/misses)
        # cover k runs, not one; the run count annotates the inflation.
        multifield_runs=(values.shape[1] if multifield_fallback else None),
        trace_events=trace_events,
        metrics=cell_metrics,
    )
    fault_metrics = getattr(algorithm, "fault_metrics", None)
    return CellRecord(
        algorithm=cell.algorithm,
        n=cell.n,
        trial=cell.trial,
        epsilon=config.epsilon,
        transmissions=dict(result.transmissions),
        ticks=result.ticks,
        converged=result.converged,
        error=result.error,
        faults=(
            None
            if fault_metrics is None
            else fault_metrics(result.values, result.initial_values)
        ),
        field_errors=(
            None
            if result.column_errors is None
            else tuple(float(v) for v in result.column_errors)
        ),
        wall_clock=wall_clock,
        telemetry=telemetry,
    )


def execute_trial_slice(
    config: ExperimentConfig,
    cells: list[SweepCell],
    check_stride: int = 1,
) -> list[CellRecord]:
    """Run one slice — all pending trials of one ``(algorithm, n)`` — batched.

    Builds each trial's graph, field and algorithm from the exact
    per-cell seed tags, then hands the whole slice to
    :func:`repro.engine.tensor.run_trials_batched` and splits the
    per-trial results back into :class:`CellRecord`\\ s.  Graphs are
    memoized by their seed-tag tuples (the grouping predicate): under
    every registered topology family the tags include the trial, so each
    trial builds its own substrate — but a family whose placement
    streams coincided across trials would share one graph object here
    rather than silently duplicating it.

    ``wall_clock`` is the slice's elapsed time split evenly across its
    cells (per-trial attribution inside one kernel pass is meaningless);
    both timing fields are excluded from record equality, so
    trial-batched records compare equal to per-cell ones.
    """
    from repro.engine.tensor import run_trials_batched
    from repro.experiments.seeds import spawn_rng
    from repro.graphs.generators import topology_seed_tags

    graphs: dict[tuple, object] = {}
    algorithms = []
    states = []
    rngs = []
    for cell in cells:
        tags = ("graph",) + tuple(
            topology_seed_tags(config.topology, cell.n, cell.trial)
        )
        if tags not in graphs:
            graphs[tags] = build_graph(config, cell.n, cell.trial)
        graph = graphs[tags]
        states.append(build_values(config, graph, cell.n, cell.trial))
        algorithms.append(
            build_cell_algorithm(config, graph, cell.algorithm, cell.n, cell.trial)
        )
        rngs.append(
            spawn_rng(config.root_seed, "run", cell.algorithm, cell.n, cell.trial)
        )
    started = time.perf_counter()
    results = run_trials_batched(
        algorithms, states, config.epsilon, rngs, check_stride=check_stride
    )
    wall_clock = (time.perf_counter() - started) / len(cells)
    records = []
    for cell, algorithm, result in zip(cells, algorithms, results):
        telemetry = collect_telemetry(
            algorithm,
            wall_clock=wall_clock,
            ticks=result.ticks,
            scalar_fallback=(
                check_stride > 1 and batching_capability(algorithm) == "scalar"
            ),
            trial_batch=True,
        )
        records.append(
            CellRecord(
                algorithm=cell.algorithm,
                n=cell.n,
                trial=cell.trial,
                epsilon=config.epsilon,
                transmissions=dict(result.transmissions),
                ticks=result.ticks,
                converged=result.converged,
                error=result.error,
                faults=None,
                field_errors=(
                    None
                    if result.column_errors is None
                    else tuple(float(v) for v in result.column_errors)
                ),
                wall_clock=wall_clock,
                telemetry=telemetry,
            )
        )
    return records


def _plan_trial_batches(
    config: ExperimentConfig,
    pending: list[SweepCell],
    trace: bool,
    stacklevel: int,
) -> tuple[list[list[SweepCell]], list[SweepCell]]:
    """Split pending cells into tensorizable slices and per-cell fallbacks.

    A slice is every pending trial of one ``(algorithm, n)``.  Whole-sweep
    fallbacks (fault dynamics, tracing) and per-protocol fallbacks
    (round-based execution, per-column multi-field) route their cells to
    the legacy per-cell path behind one
    :class:`~repro.engine.tensor.TrialBatchFallbackWarning` each.
    """
    import warnings

    from repro.engine.tensor import TrialBatchFallbackWarning
    from repro.experiments.config import multifield_support, protocol_batching

    def _warn(message: str) -> None:
        warnings.warn(
            message, TrialBatchFallbackWarning, stacklevel=stacklevel + 2
        )

    if config.fault_spec().enabled:
        _warn(
            "trial_batch: fault dynamics carry per-trial substrate state "
            "the shared window schedule cannot interleave; every cell "
            "runs per-cell"
        )
        return [], list(pending)
    if trace:
        _warn(
            "trial_batch: tensor kernels emit no per-cell event stream; "
            "traced sweeps run per-cell"
        )
        return [], list(pending)
    names = list(dict.fromkeys(cell.algorithm for cell in pending))
    batching = protocol_batching(names)
    multifield = multifield_support(names)
    fallback_names = set()
    for name in names:
        if batching[name] == "rounds":
            _warn(
                f"trial_batch: {name!r} is round-based (no tick loop to "
                "run in lockstep); its cells run per-cell"
            )
            fallback_names.add(name)
        elif config.fields > 1 and multifield[name] != "native":
            _warn(
                f"trial_batch: {name!r} runs multi-field state per column "
                "(k nested runs per cell); its cells run per-cell"
            )
            fallback_names.add(name)
    slices: dict[tuple[str, int], list[SweepCell]] = {}
    fallback_cells = []
    for cell in pending:
        if cell.algorithm in fallback_names:
            fallback_cells.append(cell)
        else:
            slices.setdefault((cell.algorithm, cell.n), []).append(cell)
    return list(slices.values()), fallback_cells


def run_sweep_records(
    config: ExperimentConfig,
    *,
    workers: int = 1,
    check_stride: int = 1,
    store: "ResultStore | None" = None,
    on_record: Callable[[CellRecord, bool], None] | None = None,
    trace: bool = False,
    trial_batch: bool = False,
    stacklevel: int = 2,
) -> dict[CellKey, CellRecord]:
    """Execute (or resume) a sweep grid; returns records keyed by cell.

    Parameters
    ----------
    config:
        The sweep definition; its root seed fixes every cell's randomness.
    workers:
        ``1`` runs cells inline in grid order; ``> 1`` fans pending cells
        across a process pool.  The records are identical either way.
    check_stride:
        Error-check stride forwarded to :func:`run_batched` (``1`` = the
        bit-identical legacy path).
    store:
        Optional :class:`ResultStore`.  Cells it already holds are *not*
        recomputed; newly finished cells are appended as they complete.
        Opening the store enforces the capability guard: a
        ``check_stride > 1`` store refuses to resume if any protocol's
        batching capability (scalar fallback vs vectorized ``tick_block``)
        changed since the store was created.
    on_record:
        Optional callback ``(record, fresh)`` invoked once per grid cell —
        ``fresh`` is False for cells reused from the store.
    trace:
        Capture each freshly executed cell's structured event stream and
        write it as JSONL under ``<store.directory>/traces/`` (requires
        ``store`` — traces live alongside the cells they explain, under
        the same content key).  Cells resumed from the store are not
        re-run and get no trace.
    trial_batch:
        Group pending cells into per-``(algorithm, n)`` slices and run
        each slice through :func:`repro.engine.tensor.run_trials_batched`
        (one tensor pass over all trials) instead of per-cell tick
        loops.  Records, store layout, resume/skip semantics and content
        keys are unchanged — ``trial_batch`` is an execution mode, like
        ``workers``, not part of the sweep's identity.  Faulted, traced,
        round-based and per-column multi-field cells fall back to the
        per-cell path behind a
        :class:`~repro.engine.tensor.TrialBatchFallbackWarning`.
    stacklevel:
        Warning attribution depth: engine fallback warnings point at
        this function's caller by default; wrappers add their own frame.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if trace and store is None:
        raise ValueError(
            "trace=True stores each cell's JSONL alongside the ResultStore "
            "cells; pass a store (traces have no home without one)"
        )
    if store is not None and store.check_stride != check_stride:
        raise ValueError(
            f"store was keyed for check_stride={store.check_stride} but the "
            f"sweep is running with check_stride={check_stride}; mixing "
            "strides in one store would blend non-identical numbers"
        )
    grid = expand_grid(config)
    grid_keys = {cell.key for cell in grid}
    records: dict[CellKey, CellRecord] = {}
    if store is not None:
        store.open()
        for key, record in store.load_records().items():
            if key in grid_keys:
                records[key] = record
                if on_record is not None:
                    on_record(record, False)
    pending = [cell for cell in grid if cell.key not in records]
    trace_dir = store.directory / "traces" if trace else None

    def _finish(record: CellRecord) -> None:
        records[record.key] = record
        if store is not None:
            store.append(record)
        if on_record is not None:
            on_record(record, True)

    if trial_batch and pending:
        slices, fallback_cells = _plan_trial_batches(
            config, pending, trace, stacklevel
        )
        if workers == 1 or len(pending) <= 1:
            for cells in slices:
                for record in execute_trial_slice(config, cells, check_stride):
                    _finish(record)
            for cell in fallback_cells:
                _finish(
                    execute_cell(
                        config, cell, check_stride, trace_dir, stacklevel + 1
                    )
                )
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                slice_futures = [
                    pool.submit(execute_trial_slice, config, cells, check_stride)
                    for cells in slices
                ]
                cell_futures = [
                    pool.submit(execute_cell, config, cell, check_stride, trace_dir)
                    for cell in fallback_cells
                ]
                for future in as_completed(slice_futures + cell_futures):
                    outcome = future.result()
                    if isinstance(outcome, list):
                        for record in outcome:
                            _finish(record)
                    else:
                        _finish(outcome)
        return records

    if workers == 1 or len(pending) <= 1:
        for cell in pending:
            _finish(
                execute_cell(
                    config, cell, check_stride, trace_dir, stacklevel + 1
                )
            )
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(execute_cell, config, cell, check_stride, trace_dir)
                for cell in pending
            ]
            for future in as_completed(futures):
                _finish(future.result())
    return records
